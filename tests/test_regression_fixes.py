"""Regression tests for fixed modeling bugs."""

import pytest

from repro.core import ComputeNode, ComputeNodeParams, Worker, WorkerParams
from repro.fabric import ConfigScrubber, ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel, stencil_kernel
from repro.memory import AddressRange
from repro.sim import Simulator, spawn


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("v")


def test_no_cache_alias_between_local_dram_and_rehomed_remote_pages():
    """Regression: worker 1's local offsets used to alias worker 0's
    global window in worker 1's cache, so caching a rehomed remote page
    could produce phantom hits against unrelated local data."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    # re-home the first page of worker 0's window to worker 1
    remote = AddressRange(node.unimem.map.global_address(0, 0), 4096)
    node.unimem.rehome_range(remote, new_home=1)
    # worker 1 caches the remote page
    run(sim, node.remote_access(1, remote, False))
    misses_after_remote = node.worker(1).cache.stats.misses
    # worker 1 touches its OWN dram at local offset 0 (same numeric range)
    local = AddressRange(node.unimem.map.global_address(1, 0), 4096)
    run(sim, node.remote_access(1, local, False))
    # the local access must MISS (different lines), not alias-hit
    assert node.worker(1).cache.stats.misses > misses_after_remote


def test_scrubber_reset_on_module_reload():
    """Regression: after reloading a region with a different module of
    identical size, the scrubber's live copy must track the new golden
    bitstream instead of reporting phantom corruption."""
    lib = ModuleLibrary()
    tool = HlsTool()
    tool.compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    tool.compile(stencil_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    sim = Simulator()
    worker = Worker(sim, 0, WorkerParams(fabric_regions=1))
    capacity = worker.fabric.regions[0].capacity
    saxpy = lib.best_variant("saxpy", capacity=capacity)
    stencil = lib.best_variant("stencil5", capacity=capacity)
    scrub = ConfigScrubber(sim, worker.fabric)

    def flow():
        region = yield from worker.load_module(saxpy)
        found_a = yield from scrub.scrub_pass()
        assert found_a == 0
        # materialize the live copy, then reload a different module
        yield from worker.load_module(stencil, region)
        found_b = yield from scrub.scrub_pass()
        return found_b

    assert run(sim, flow()) == 0  # no phantom faults after the reload
