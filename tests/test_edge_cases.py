"""Edge-case coverage for less-travelled API paths."""

import pytest

from repro.core import ComputeNode, ComputeNodeParams, Machine, MachineParams
from repro.energy import EnergyLedger
from repro.interconnect import LinkParams, Network, build_tree
from repro.memory import (
    PAGE_SIZE,
    AddressRange,
    PageRegistry,
    PageTable,
    Smmu,
    TranslationRegime,
    UnimemSpace,
)
from repro.opencl import CommandQueue, Context, DeviceType, Platform
from repro.sim import Simulator


class TestNetworkEdges:
    def test_diameter_unreachable_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.add_node("b")  # no link
        with pytest.raises(ValueError):
            net.diameter_hops(["a", "b"])

    def test_single_node_diameter_zero(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        assert net.diameter_hops(["a"]) == 0

    def test_links_property(self):
        sim = Simulator()
        net, workers = build_tree(sim, [3])
        assert len(net.links) == 3


class TestSmmuEdges:
    def test_invalidate_all(self):
        s1 = PageTable()
        s1.map(0, 1)
        smmu = Smmu()
        smmu.attach_context(1, TranslationRegime.STAGE1_ONLY, stage1=s1)
        smmu.translate(1, 0)
        assert smmu.tlb_occupancy == 1
        smmu.invalidate_all()
        assert smmu.tlb_occupancy == 0

    def test_unmap(self):
        pt = PageTable()
        pt.map(3, 7)
        assert pt.unmap(3)
        assert not pt.unmap(3)
        assert pt.lookup(3) is None


class TestUnimemEdges:
    def test_pages_with_remote_traffic(self):
        reg = PageRegistry()
        reg.record_access(0, 0, node=1, is_write=False)
        reg.record_access(0, 0, node=2, is_write=False)
        reg.record_access(5, 0, node=0, is_write=False)
        assert reg.pages_with_remote_traffic() == {0: 2}

    def test_check_invariant_fresh_registry(self):
        reg = PageRegistry()
        reg.record_access(0, 0, node=1, is_write=False)
        assert reg.check_invariant()

    def test_touched_pages(self):
        u = UnimemSpace(2, 64 * PAGE_SIZE)
        u.plan_access(0, AddressRange(0, 3 * PAGE_SIZE), False)
        assert u.touched_pages() == 3


class TestEventEdges:
    def test_wait_on_impossible_event_raises(self):
        plat = Platform(ComputeNode(Simulator(), ComputeNodeParams(num_workers=1)))
        ctx = Context(plat)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        ev = q.enqueue_marker(wait_for=[q.enqueue_marker()])
        # drain the sim, then make a dependent event that can never fire
        q.finish()
        from repro.opencl.event import Event
        from repro.opencl.types import CommandType

        orphan = Event(plat.node.sim, CommandType.MARKER)
        with pytest.raises(RuntimeError):
            orphan.wait()


class TestLedgerEdges:
    def test_deep_breakdown(self):
        led = EnergyLedger()
        led.add("a.b.c", 1.0)
        led.add("a.b.d", 2.0)
        assert led.breakdown(depth=2) == {"a.b": 3.0}
        assert led.breakdown(depth=3) == {"a.b.c": 1.0, "a.b.d": 2.0}

    def test_categories_copy(self):
        led = EnergyLedger()
        led.add("x", 1.0)
        cats = led.categories()
        cats["x"] = 999.0
        assert led.total_pj() == 1.0


class TestMachineEdges:
    def test_energy_breakdown(self):
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=1)),
        )
        machine.ledger.add("node0.w0.cpu", 5.0)
        assert machine.energy_breakdown()["node0.w0"] == 5.0
        assert machine.total_energy_pj() == 5.0

    def test_single_node_machine_hops(self):
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=1, node=ComputeNodeParams(num_workers=4)),
        )
        assert machine.max_hop_distance() == 2

    def test_worker_accessor(self):
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=2)),
        )
        assert machine.worker(1, 0).name == "node1.w0"


class TestLinkEdges:
    def test_link_utilization_initially_zero(self):
        sim = Simulator()
        from repro.interconnect import Link

        link = Link(sim, LinkParams())
        assert link.utilization == 0.0
