"""Smoke tests: every example script runs clean and prints its verdict."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

EXPECTED_FRAGMENT = {
    "quickstart.py": "module already resident",
    "hierarchical_stencil.py": "less communication energy",
    "shared_accelerators.py": "one physical accelerator served all four Workers",
    "adaptive_runtime.py": "adaptive runtime used hardware",
    "exascale_machine.py": "hence ECOSCALE",
    "cart_dataflow.py": "more processing per unit of transferred data",
    "hybrid_sort.py": "the hybrid split the paper advocates",
    "opencl_c_kernels.py": "no hardware design in the loop",
}


def test_example_inventory():
    assert len(EXAMPLES) >= 3
    assert {p.name for p in EXAMPLES} == set(EXPECTED_FRAGMENT)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_FRAGMENT[script.name] in result.stdout
