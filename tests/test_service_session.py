"""Tests for the service session's control plane: scripted sessions are
byte-identical to the batch harnesses, live submit/reconfigure/chaos
apply at window boundaries deterministically, drain quiesces in-flight
work, and every refusal is a structured error reply."""

import json

import pytest

from repro.experiments import run_jobs_experiment
from repro.service import ServiceSession
from repro.serving import run_serving_experiment

WINDOW_NS = 100_000.0


def fresh_session(**kwargs):
    kwargs.setdefault("telemetry", False)
    kwargs.setdefault("warm", False)
    return ServiceSession(**kwargs)


def run_script(session, frames):
    """Drive one scripted session; every reply must be ok."""
    replies = []
    for frame in frames:
        reply = session.handle(dict(frame))
        assert reply.get("ok"), (frame, reply)
        replies.append(reply)
    return replies


def archived_report(session, key=None):
    frame = {"cmd": "report"}
    if key is not None:
        frame["key"] = key
    reply = session.handle(frame)
    assert reply["ok"], reply
    return reply["report"]


# ----------------------------------------------------------------------
# byte-identity against the batch harnesses
# ----------------------------------------------------------------------
class TestBatchIdentity:
    def test_serving_session_matches_batch_run(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "run"},
        ])
        batch = run_serving_experiment("steady", seed=0).json(indent=2)
        assert archived_report(session) == batch

    def test_jobs_session_matches_batch_run(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "run"},
        ])
        batch = run_jobs_experiment("mini", seed=0).json(indent=2)
        assert archived_report(session) == batch

    def test_stepping_matches_one_shot_run(self):
        # run(until=boundary) fires events in the order one uninterrupted
        # run() would, so window-by-window stepping changes nothing
        stepped = fresh_session()
        run_script(stepped, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        while stepped.workload is not None:
            assert stepped.handle({"cmd": "step", "windows": 1})["ok"]
        batch = run_serving_experiment("steady", seed=0).json(indent=2)
        assert archived_report(stepped) == batch

    def test_alerts_armed_epoch_matches_batch(self):
        from repro.serving import BurnRatePolicy

        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0,
             "alerts": {"slo_scale": 0.1}},
            {"cmd": "run"},
        ])
        batch = run_serving_experiment(
            "steady", seed=0, alerts=BurnRatePolicy(slo_scale=0.1)
        ).json(indent=2)
        assert archived_report(session) == batch
        assert json.loads(archived_report(session))["alerts"]["fired"] > 0

    def test_telemetry_on_session_still_matches_batch(self):
        # the PR 5 contract: instrumenting never changes the report
        session = fresh_session(telemetry=True)
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "run"},
        ])
        batch = run_serving_experiment("steady", seed=0).json(indent=2)
        assert archived_report(session) == batch


# ----------------------------------------------------------------------
# live submit (requests onto a running gateway, jobs onto a machine)
# ----------------------------------------------------------------------
class TestLiveSubmit:
    SCRIPT = [
        {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0,
         "hold_open": True},
        {"cmd": "step", "windows": 2},
        {"cmd": "submit", "kind": "requests", "tenant": "batch",
         "function": "saxpy", "items": 256, "count": 3},
        {"cmd": "step", "windows": 2},
        {"cmd": "drain"},
    ]

    def test_injected_requests_are_deterministic(self):
        reports = []
        for _ in range(2):
            session = fresh_session()
            run_script(session, self.SCRIPT)
            reports.append(archived_report(session))
        assert reports[0] == reports[1]
        # the injected requests actually flowed through the gateway
        payload = json.loads(reports[0])
        assert payload["offered"] > 0 and payload["completed"] > 0

    def test_injection_needs_a_serving_epoch(self):
        session = fresh_session()
        reply = session.handle({"cmd": "submit", "kind": "requests",
                                "tenant": "t", "function": "saxpy"})
        assert reply["error"] == "no-workload"

    def test_mid_run_job_submit_is_deterministic(self):
        script = [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "step", "windows": 3},
            {"cmd": "submit", "kind": "job", "layers": 3, "width": 4,
             "graph_seed": 7},
            {"cmd": "run"},
        ]
        reports = []
        for _ in range(2):
            session = fresh_session()
            run_script(session, script)
            reports.append(archived_report(session))
        assert reports[0] == reports[1]
        base = json.loads(run_jobs_experiment("mini", seed=0).json())
        got = json.loads(reports[0])
        assert len(got["jobs"]) == len(base["jobs"]) + 1

    def test_second_epoch_while_live_is_busy(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        reply = session.handle({"cmd": "submit", "kind": "serving"})
        assert reply["ok"] is False and reply["error"] == "busy"
        reply = session.handle({"cmd": "submit", "kind": "jobs"})
        assert reply["error"] == "busy"

    def test_unknown_submit_kind(self):
        session = fresh_session()
        reply = session.handle({"cmd": "submit", "kind": "quantum"})
        assert reply["error"] == "bad-args"


# ----------------------------------------------------------------------
# reconfigure applies at the next window boundary
# ----------------------------------------------------------------------
class TestReconfigure:
    def test_live_knobs_apply_between_windows(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "step", "windows": 1},
        ])
        gateway = session.workload.gateway
        before = gateway.batcher.max_batch
        reply = session.handle({"cmd": "reconfigure", "max_batch": before + 2,
                                "max_wait_ns": 5_000.0})
        assert reply["ok"] and reply["scope"] == "live"
        assert reply["at_ns"] == pytest.approx(WINDOW_NS)
        assert gateway.batcher.max_batch == before + 2
        assert gateway.batcher.max_wait_ns == 5_000.0
        # journaled, so a snapshot would replay it at the same boundary
        assert len(session._journal) == 2

    def test_preset_swap_reconfigures_tenants_in_place(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "step", "windows": 1},
        ])
        reply = session.handle({"cmd": "reconfigure", "preset": "diurnal"})
        assert reply["ok"] and reply["scope"] == "live"
        assert reply["applied"]["scenario"] == "diurnal"
        assert set(reply["applied"]["tenants"]) <= set(
            session.workload.gateway.slo._tenants
        )

    def test_scheduling_policy_swap_on_jobs_epoch(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "step", "windows": 1},
        ])
        reply = session.handle({"cmd": "reconfigure", "policy": "energy"})
        assert reply["ok"]
        assert session.workload.manager.engine.default_policy.name == "energy"
        run_script(session, [{"cmd": "run"}])

    def test_reconfigure_while_idle_retargets_defaults(self):
        session = fresh_session()
        reply = session.handle({"cmd": "reconfigure", "preset": "diurnal",
                                "seed": 9})
        assert reply["ok"] and reply["scope"] == "defaults"
        assert session.default_preset == "diurnal"
        assert session.default_seed == 9
        reply = session.handle({"cmd": "reconfigure"})
        assert reply["ok"] is False and reply["error"] == "no-workload"

    def test_no_applicable_knobs_is_bad_args(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        reply = session.handle({"cmd": "reconfigure", "bogus_knob": 3})
        assert reply["ok"] is False and reply["error"] == "bad-args"

    def test_brownout_toggle_requires_policy(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        reply = session.handle({"cmd": "reconfigure", "brownout": "enter"})
        assert reply["error"] == "no-brownout"
        armed = fresh_session()
        run_script(armed, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0,
             "brownout": True},
            {"cmd": "reconfigure", "brownout": "enter"},
            {"cmd": "reconfigure", "brownout": "exit"},
            {"cmd": "run"},
        ])


# ----------------------------------------------------------------------
# online chaos
# ----------------------------------------------------------------------
class TestOnlineChaos:
    def test_chaos_needs_fault_tolerance_unless_forced(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        fault = {"kind": "crash", "worker": 1, "at_ns": 250_000.0,
                 "downtime_ns": 200_000.0}
        reply = session.handle({"cmd": "chaos", "faults": [fault]})
        assert reply["ok"] is False and reply["error"] == "no-fault-tolerance"
        reply = session.handle({"cmd": "chaos", "faults": [fault],
                                "force": True})
        assert reply["ok"] and reply["planned"] == 1

    def test_mid_run_crash_is_deterministic_and_reported(self):
        script = [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0,
             "fault_tolerance": True},
            {"cmd": "step", "windows": 2},
            {"cmd": "chaos", "faults": [
                {"kind": "crash", "worker": 1, "at_ns": 400_000.0,
                 "downtime_ns": 300_000.0},
            ]},
            {"cmd": "run"},
        ]
        reports = []
        for _ in range(2):
            session = fresh_session()
            run_script(session, script)
            reports.append(archived_report(session))
        assert reports[0] == reports[1]
        chaos = json.loads(reports[0])["chaos"]
        assert chaos == {"worker": 1, "at_ns": 400_000.0,
                         "downtime_ns": 300_000.0}

    def test_chaos_without_workload(self):
        session = fresh_session()
        reply = session.handle({"cmd": "chaos", "faults": [
            {"kind": "crash", "worker": 0},
        ]})
        assert reply["error"] == "no-workload"

    def test_empty_fault_list_is_bad_args(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0,
             "fault_tolerance": True},
        ])
        reply = session.handle({"cmd": "chaos", "faults": []})
        assert reply["error"] == "bad-args"


# ----------------------------------------------------------------------
# drain and lifecycle
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_with_inflight_jobs_finishes_them(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "step", "windows": 1},
        ])
        assert session.workload is not None
        reply = session.handle({"cmd": "drain"})
        assert reply["ok"] and reply["drained"] and reply["state"] == "idle"
        assert session.workload is None
        # in-flight work completed: the archived report is the full mix
        batch = run_jobs_experiment("mini", seed=0).json(indent=2)
        assert archived_report(session) == batch

    def test_drain_releases_held_gateway(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0,
             "arrivals": False},
            {"cmd": "submit", "kind": "requests", "tenant": "interactive",
             "function": "saxpy", "items": 128, "count": 2},
        ])
        reply = session.handle({"cmd": "run"})
        assert reply["ok"] and reply["state"] == "held"
        reply = session.handle({"cmd": "drain"})
        assert reply["drained"] and reply["state"] == "idle"
        report = json.loads(archived_report(session))
        assert report["offered"] == 2 and report["completed"] == 2

    def test_drain_while_idle_is_a_noop(self):
        session = fresh_session()
        reply = session.handle({"cmd": "drain"})
        assert reply["ok"] and reply["state"] == "idle"
        assert reply["drained"] is False

    def test_status_and_report_lifecycle(self):
        session = fresh_session()
        assert session.handle({"cmd": "status"})["state"] == "idle"
        reply = session.handle({"cmd": "report"})
        assert reply["error"] == "no-reports"
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        status = session.handle({"cmd": "status"})
        assert status["state"] == "running"
        assert status["workload"]["kind"] == "serving"
        run_script(session, [{"cmd": "run"}])
        status = session.handle({"cmd": "status"})
        assert status["state"] == "idle"
        assert status["reports"] == ["serving:steady:0#0"]
        reply = session.handle({"cmd": "report", "key": "serving:steady:0#0"})
        assert reply["ok"]
        reply = session.handle({"cmd": "report", "key": "nope"})
        assert reply["error"] == "no-reports"

    def test_back_to_back_epochs_get_distinct_keys(self):
        session = fresh_session()
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "run"},
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "run"},
        ])
        keys = [e["key"] for e in session.archive]
        assert keys == ["serving:steady:0#0", "jobs:mini:0#1"]

    def test_metrics_and_events_on_live_epoch(self):
        session = fresh_session(telemetry=True)
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "step", "windows": 2},
        ])
        reply = session.handle({"cmd": "metrics"})
        assert reply["ok"] and "# TYPE" in reply["text"]
        tail = session.handle({"cmd": "events"})
        assert tail["ok"] and tail["cursor"] > 0 and tail["events"]
        again = session.handle({"cmd": "events"})
        assert again["cursor"] >= tail["cursor"]

    def test_metrics_errors(self):
        session = fresh_session(telemetry=True)
        assert session.handle({"cmd": "metrics"})["error"] == "no-workload"
        dark = fresh_session(telemetry=False)
        run_script(dark, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
        ])
        assert dark.handle({"cmd": "metrics"})["error"] == "telemetry-off"
