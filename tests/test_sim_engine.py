"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
    assert sim.now == 5.0


def test_equal_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(2.0, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-1)
    sim.run()
    assert fired == ["high", "low"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    ev.cancel()
    sim.run()
    assert fired == ["y"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    sim = Simulator()
    assert sim.peek() is None


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counts():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_event_repr_and_ordering():
    a = Event(1.0, 0, 0, lambda: None, ())
    b = Event(1.0, 0, 1, lambda: None, ())
    assert a < b
