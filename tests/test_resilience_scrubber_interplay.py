"""Integration of the two resilience halves: detection and repair.

The fabric layer detects silent configuration corruption by scrubbing
(:mod:`repro.fabric.scrubber`); the middleware repairs lost service by
reloading modules (:mod:`repro.core.resilience`).  These tests wire the
scrubber's ``on_fault`` callback into the :class:`FaultInjector` so an
injected SEU flows end to end: upset -> readback detection -> region
retired -> RecoveryManager reloads the module on a survivor -- and the
latencies respect the scrub period.

Also covers the RecoveryManager's failed-recovery accounting: giving up
is recorded (``failure_reason``, ``failed_recoveries``, ``summary()``),
never silently dropped, and never retried forever.
"""

import pytest

from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    FaultInjector,
    RecoveryManager,
    UnilogicDomain,
)
from repro.core.resilience import FaultRecord
from repro.fabric import ModuleLibrary, RegionState
from repro.fabric.bitstream import FRAME_BYTES
from repro.fabric.scrubber import ConfigScrubber
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def library():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib


def setup(library, workers=2):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    unilogic = UnilogicDomain(node)
    injector = FaultInjector(node)
    manager = RecoveryManager(node, unilogic, library, injector, check_period_ns=1000.0)
    return sim, node, unilogic, injector, manager


def load_saxpy(sim, node, library, worker=0):
    module = library.best_variant("saxpy")
    out = {}

    def proc():
        out["region"] = yield from node.worker(worker).load_module(module)

    spawn(sim, proc())
    sim.run()
    return out["region"]


class TestUpsetToRecoveryPipeline:
    SCRUB_INTERVAL = 50_000.0
    READBACK_GBPS = 0.4

    def wire(self, library):
        """Scrubber on worker 0 whose detections retire the region."""
        sim, node, unilogic, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        scrubber = ConfigScrubber(
            sim,
            node.worker(0).fabric,
            readback_bandwidth_gbps=self.READBACK_GBPS,
            on_fault=lambda r, frame: injector.inject_region_fault(0, r.region_id),
        )
        return sim, node, unilogic, injector, manager, scrubber, region

    def test_upset_flows_to_reload(self, library):
        sim, node, unilogic, injector, manager, scrubber, region = self.wire(library)
        upset = scrubber.inject_upset(region.region_id, frame=2, bit=5)
        spawn(sim, scrubber.run(interval_ns=self.SCRUB_INTERVAL))
        spawn(sim, manager.run())
        sim.run(until=sim.now + 2_000_000.0)
        scrubber.stop()
        manager.stop()

        # detection: the scrubber found the flipped bit by readback
        assert upset.detected_at is not None
        assert scrubber.faults_detected >= 1
        # retirement: the detection retired the region via the injector
        fault = next(r for r in injector.records if r.function == "saxpy")
        assert injector.is_failed(0, region.region_id)
        # repair: the RecoveryManager reloaded saxpy somewhere that works
        assert fault.recovered_at is not None
        assert manager.recoveries == 1
        assert manager.failed_recoveries == 0
        host, live = unilogic.hosting_regions("saxpy")[0]
        assert live.state is RegionState.READY
        assert not injector.is_failed(host, live.region_id)

    def test_detection_latency_bounded_by_scrub_period(self, library):
        sim, node, unilogic, injector, manager, scrubber, region = self.wire(library)
        frames = region.module.bitstream.frames   # before the region is retired
        upset = scrubber.inject_upset(region.region_id, frame=0, bit=0)
        spawn(sim, scrubber.run(interval_ns=self.SCRUB_INTERVAL))
        spawn(sim, manager.run())
        sim.run(until=sim.now + 2_000_000.0)
        scrubber.stop()
        manager.stop()

        # worst case: one full pass over every loaded frame + the idle gap
        pass_ns = frames * FRAME_BYTES / self.READBACK_GBPS
        assert 0 < upset.detection_ns <= pass_ns + self.SCRUB_INTERVAL
        # repair adds reconfiguration time on top of detection
        fault = next(r for r in injector.records if r.function == "saxpy")
        assert fault.recovery_ns > 0
        assert fault.injected_at >= upset.detected_at

    def test_faster_readback_detects_sooner(self, library):
        detections = []
        for gbps in (0.4, 4.0):
            sim, node, unilogic, injector, manager = setup(library)
            region = load_saxpy(sim, node, library)
            scrubber = ConfigScrubber(
                sim, node.worker(0).fabric, readback_bandwidth_gbps=gbps
            )
            upset = scrubber.inject_upset(region.region_id, frame=3, bit=1)
            spawn(sim, scrubber.run(interval_ns=self.SCRUB_INTERVAL))
            sim.run(until=sim.now + 2_000_000.0)
            scrubber.stop()
            detections.append(upset.detection_ns)
        assert detections[1] < detections[0]


class TestFailedRecoveryAccounting:
    def test_no_variant_recorded_not_dropped(self, library):
        sim, node, _, injector, manager = setup(library)
        injector.records.append(
            FaultRecord(worker_id=0, region_id=0, function="ghost", injected_at=0.0)
        )
        spawn(sim, manager.run())
        sim.run(until=sim.now + 10_000.0)
        manager.stop()
        record = injector.records[0]
        assert record.failure_reason == "no_variant"
        assert record.unrecovered
        assert manager.failed_recoveries == 1
        assert manager.recoveries == 0

    def test_no_region_when_whole_domain_is_dead(self, library):
        sim, node, _, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        injector.inject_worker_fault(0)
        injector.inject_worker_fault(1)     # nowhere left to reload
        spawn(sim, manager.run())
        sim.run(until=sim.now + 10_000.0)
        manager.stop()
        fault = next(r for r in injector.records if r.function == "saxpy")
        assert fault.failure_reason == "no_region"
        assert manager.failed_recoveries == 1

    def test_given_up_faults_are_not_retried_forever(self, library):
        sim, node, _, injector, manager = setup(library)
        injector.records.append(
            FaultRecord(worker_id=0, region_id=0, function="ghost", injected_at=0.0)
        )
        spawn(sim, manager.run())
        sim.run(until=sim.now + 50_000.0)   # many check periods
        manager.stop()
        assert manager.failed_recoveries == 1   # exactly one attempt recorded
        assert manager._pending() == []         # never reconsidered

    def test_summary_classifies_outcomes(self, library):
        sim, node, _, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        injector.inject_region_fault(0, region.region_id)   # recoverable
        injector.records.append(
            FaultRecord(worker_id=0, region_id=1, function="ghost", injected_at=0.0)
        )
        spawn(sim, manager.run())
        sim.run(until=sim.now + 100_000.0)
        manager.stop()
        summary = manager.summary()
        assert summary["recoveries"] == 1
        assert summary["failed_recoveries"] == 1
        assert summary["failure_reasons"] == ["no_variant"]
        assert summary["mean_recovery_ns"] > 0
