"""Unit tests for the middleware: PR driver, SW-HW call library, chaining."""

import pytest

from repro.core import Worker, WorkerParams
from repro.core.middleware import (
    AcceleratorChain,
    CallPath,
    HardwareCallLibrary,
    PartialReconfigDriver,
)
from repro.fabric import ModuleLibrary, RegionState
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel, stencil_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def modules():
    lib = ModuleLibrary()
    tool = HlsTool()
    tool.compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    tool.compile(stencil_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib.best_variant("saxpy"), lib.best_variant("stencil5")


def run(sim, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("value")


class TestDriver:
    def test_ensure_loaded_idempotent(self, modules):
        saxpy, _ = modules
        sim = Simulator()
        w = Worker(sim, 0)
        drv = PartialReconfigDriver(w)
        run(sim, drv.ensure_loaded(saxpy))
        assert w.reconfig.reconfigurations == 1
        run(sim, drv.ensure_loaded(saxpy))
        assert w.reconfig.reconfigurations == 1  # no second load

    def test_migration_make_before_break(self, modules):
        saxpy, _ = modules
        sim = Simulator()
        src, dst = Worker(sim, 0), Worker(sim, 1)
        d_src, d_dst = PartialReconfigDriver(src), PartialReconfigDriver(dst)
        region = run(sim, src.load_module(saxpy))
        dest = run(sim, d_src.migrate(region, d_dst))
        assert dest is not None
        assert dst.hosted_region("saxpy") is dest
        assert src.hosted_region("saxpy") is None
        assert d_src.migrations == 1

    def test_migrate_empty_rejected(self):
        sim = Simulator()
        w = Worker(sim, 0)
        drv = PartialReconfigDriver(w)

        def proc():
            yield from drv.migrate(w.fabric.regions[0], drv)

        spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_preempt_and_resume(self, modules):
        saxpy, _ = modules
        sim = Simulator()
        w = Worker(sim, 0, WorkerParams(fabric_regions=1))
        drv = PartialReconfigDriver(w)
        region = run(sim, w.load_module(saxpy))
        name = run(sim, drv.preempt(region))
        assert name == saxpy.name
        assert region.state is RegionState.EMPTY
        assert drv.preempted_modules == [saxpy.name]
        resumed = run(sim, drv.resume(name))
        assert resumed is not None
        assert w.hosted_region("saxpy") is resumed
        assert drv.preempted_modules == []

    def test_resume_unknown_rejected(self):
        sim = Simulator()
        drv = PartialReconfigDriver(Worker(sim, 0))

        def proc():
            yield from drv.resume("ghost")

        spawn(sim, proc())
        with pytest.raises(KeyError):
            sim.run()

    def test_fragmentation_metric(self, modules):
        saxpy, _ = modules
        sim = Simulator()
        single = PartialReconfigDriver(Worker(sim, 1, WorkerParams(fabric_regions=1)))
        assert single.fragmentation() == 0.0  # one hole = fully usable
        w = Worker(sim, 0, WorkerParams(fabric_regions=4))
        drv = PartialReconfigDriver(w)
        # four equal free regions: largest hole is a quarter of free space
        assert drv.fragmentation() == pytest.approx(0.75, abs=0.05)
        run(sim, w.load_module(saxpy, w.fabric.regions[1]))
        assert 0.0 <= drv.fragmentation() < 1.0


class TestCallLibrary:
    def test_user_level_cheaper_than_os(self, modules):
        saxpy, _ = modules
        sim = Simulator()
        w = Worker(sim, 0)
        run(sim, w.load_module(saxpy))
        lib = HardwareCallLibrary(w)
        ctx = lib.bind_user_context(64 * 1024)
        t_user = run(sim, lib.call("saxpy", 256, 64 * 1024, CallPath.USER_LEVEL, ctx))
        t_os = run(sim, lib.call("saxpy", 256, 64 * 1024, CallPath.OS_MEDIATED))
        assert t_user < t_os
        assert lib.user_calls == 1 and lib.os_calls == 1

    def test_os_overhead_scales_with_buffer(self):
        sim = Simulator()
        lib = HardwareCallLibrary(Worker(sim, 0))
        small = lib.call_overhead_ns(CallPath.OS_MEDIATED, 4096)
        big = lib.call_overhead_ns(CallPath.OS_MEDIATED, 64 * 4096)
        assert big > small

    def test_user_overhead_flat_in_buffer(self):
        sim = Simulator()
        lib = HardwareCallLibrary(Worker(sim, 0))
        small = lib.call_overhead_ns(CallPath.USER_LEVEL, 4096)
        big = lib.call_overhead_ns(CallPath.USER_LEVEL, 64 * 4096)
        assert big == small

    def test_smmu_walks_amortize(self, modules):
        """First call pays table walks; repeat calls hit the SMMU TLB."""
        saxpy, _ = modules
        sim = Simulator()
        w = Worker(sim, 0)
        run(sim, w.load_module(saxpy))
        lib = HardwareCallLibrary(w)
        ctx = lib.bind_user_context(16 * 4096)
        t1 = run(sim, lib.call("saxpy", 64, 16 * 4096, CallPath.USER_LEVEL, ctx))
        t2 = run(sim, lib.call("saxpy", 64, 16 * 4096, CallPath.USER_LEVEL, ctx))
        assert t2 < t1
        assert w.smmu.stats.tlb_hits > 0


class TestChaining:
    def make_chain(self, modules, stages):
        sim = Simulator()
        w = Worker(sim, 0)
        saxpy, stencil = modules
        chain_modules = [saxpy, stencil][:stages] if stages <= 2 else [saxpy, stencil, saxpy]
        return sim, w, AcceleratorChain(w, chain_modules)

    def test_empty_chain_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AcceleratorChain(Worker(sim, 0), [])

    def test_chained_saves_dram_traffic(self, modules):
        _, _, chain = self.make_chain(modules, 3)
        chained = chain.cost_chained(4096, 8)
        unchained = chain.cost_unchained(4096, 8)
        assert chained.dram_bytes == 2 * 4096 * 8
        assert unchained.dram_bytes == 3 * 2 * 4096 * 8
        assert chained.energy_pj < unchained.energy_pj
        assert chained.latency_ns < unchained.latency_ns

    def test_saving_grows_with_chain_length(self, modules):
        _, _, two = self.make_chain(modules, 2)
        _, _, three = self.make_chain(modules, 3)
        s2 = two.cost_unchained(1024, 8).energy_pj - two.cost_chained(1024, 8).energy_pj
        s3 = three.cost_unchained(1024, 8).energy_pj - three.cost_chained(1024, 8).energy_pj
        assert s3 > s2

    def test_processing_per_byte_rises(self, modules):
        _, _, chain = self.make_chain(modules, 3)
        chained = chain.cost_chained(1024, 8)
        unchained = chain.cost_unchained(1024, 8)
        assert chained.ops_per_dram_byte > unchained.ops_per_dram_byte

    def test_run_chained_process(self, modules):
        sim, w, chain = self.make_chain(modules, 2)
        cost = run(sim, chain.run_chained(512, 8))
        assert cost.stages == 2
        assert sim.now > 0
        assert w.ledger.total_pj(f"{w.name}.fabric") > 0

    def test_cost_validation(self, modules):
        _, _, chain = self.make_chain(modules, 2)
        with pytest.raises(ValueError):
            chain.cost_chained(0, 8)
        with pytest.raises(ValueError):
            chain.cost_unchained(10, 0)
