"""Tests for service-session snapshots: mid-run snapshot -> restore ->
continue is byte-identical to never stopping, snapshots ride the PR 7
SnapshotStore, and restore refuses foreign snapshots and dirty
sessions."""

import json

from repro.core.runtime.checkpoint import Snapshot, SnapshotStore
from repro.service import ServiceSession
from repro.service.session import SESSION_SNAPSHOT_KIND


def fresh_session(tmp_path, **kwargs):
    kwargs.setdefault("telemetry", False)
    kwargs.setdefault("warm", False)
    kwargs.setdefault("snapshot_dir", str(tmp_path / "snaps"))
    return ServiceSession(**kwargs)


def run_script(session, frames):
    replies = []
    for frame in frames:
        reply = session.handle(dict(frame))
        assert reply.get("ok"), (frame, reply)
        replies.append(reply)
    return replies


def latest_report(session):
    reply = session.handle({"cmd": "report"})
    assert reply["ok"], reply
    return reply["report"]


MIDRUN = [
    {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
    {"cmd": "step", "windows": 5},
]


class TestSnapshotRestore:
    def test_midrun_restore_continuation_is_byte_identical(self, tmp_path):
        # the uninterrupted session
        control = fresh_session(tmp_path)
        run_script(control, MIDRUN + [{"cmd": "run"}])
        expected = latest_report(control)

        # snapshot mid-run, restore into a fresh session, continue
        session = fresh_session(tmp_path)
        run_script(session, MIDRUN)
        reply = session.handle({"cmd": "snapshot"})
        assert reply["ok"] and reply["journal"] == 1
        path = reply["path"]

        restored = fresh_session(tmp_path)
        reply = restored.handle({"cmd": "restore", "path": path})
        assert reply["ok"] and reply["restored"]
        assert reply["replayed"] == 1
        assert reply["state"] == "running"
        assert reply["now_ns"] == 500_000.0
        run_script(restored, [{"cmd": "run"}])
        assert latest_report(restored) == expected

    def test_restore_replays_live_reconfigure_and_requests(self, tmp_path):
        script = MIDRUN + [
            {"cmd": "reconfigure", "max_batch": 6},
            {"cmd": "submit", "kind": "requests", "tenant": "interactive",
             "function": "saxpy", "items": 64, "count": 2},
            {"cmd": "step", "windows": 3},
        ]
        control = fresh_session(tmp_path)
        run_script(control, script + [{"cmd": "run"}])
        expected = latest_report(control)

        session = fresh_session(tmp_path)
        run_script(session, script)
        path = session.handle({"cmd": "snapshot"})["path"]

        restored = fresh_session(tmp_path)
        reply = restored.handle({"cmd": "restore", "path": path})
        assert reply["ok"] and reply["replayed"] == 3
        assert restored.workload.gateway.batcher.max_batch == 6
        run_script(restored, [{"cmd": "run"}])
        assert latest_report(restored) == expected

    def test_idle_snapshot_round_trips_archive_through_store(self, tmp_path):
        session = fresh_session(tmp_path)
        run_script(session, [
            {"cmd": "submit", "kind": "serving", "preset": "steady", "seed": 0},
            {"cmd": "run"},
        ])
        expected = latest_report(session)
        reply = session.handle({"cmd": "snapshot"})
        assert reply["ok"] and reply["journal"] == 0

        # no path: restore finds the latest snapshot in the store dir
        restored = fresh_session(tmp_path)
        reply = restored.handle({"cmd": "restore"})
        assert reply["ok"] and reply["state"] == "idle"
        assert latest_report(restored) == expected
        status = restored.handle({"cmd": "status"})
        assert status["reports"] == ["serving:steady:0#0"]

    def test_snapshot_sequences_and_workload_block(self, tmp_path):
        session = fresh_session(tmp_path)
        run_script(session, MIDRUN)
        first = session.handle({"cmd": "snapshot"})
        second = session.handle({"cmd": "snapshot"})
        assert (first["seq"], second["seq"]) == (0, 1)
        snapshot = SnapshotStore(str(tmp_path / "snaps")).load_latest()
        block = snapshot.workload
        assert block["kind"] == SESSION_SNAPSHOT_KIND
        assert block["node"] == "mini"
        assert block["boundary_ns"] == 500_000.0
        assert [e["frame"]["cmd"] for e in block["journal"]] == ["submit"]

    def test_restore_refuses_foreign_snapshot_kind(self, tmp_path):
        # a PR 7 checkpoint (workload kind "chaos-jobs") is not a session
        foreign = Snapshot(seq=0, taken_at_ns=0.0)
        foreign.workload = {"kind": "chaos-jobs", "preset": "mini"}
        path = tmp_path / "foreign.json"
        path.write_text(foreign.to_json())
        session = fresh_session(tmp_path)
        reply = session.handle({"cmd": "restore", "path": str(path)})
        assert reply["ok"] is False and reply["error"] == "wrong-kind"

    def test_restore_refuses_non_idle_session(self, tmp_path):
        session = fresh_session(tmp_path)
        run_script(session, MIDRUN)
        path = session.handle({"cmd": "snapshot"})["path"]
        reply = session.handle({"cmd": "restore", "path": path})
        assert reply["ok"] is False and reply["error"] == "not-idle"
        # a session with archived history is dirty too
        done = fresh_session(tmp_path)
        run_script(done, [
            {"cmd": "submit", "kind": "jobs", "preset": "mini", "seed": 0},
            {"cmd": "run"},
        ])
        reply = done.handle({"cmd": "restore", "path": path})
        assert reply["error"] == "not-idle"

    def test_restore_with_empty_store_is_no_snapshot(self, tmp_path):
        session = fresh_session(tmp_path)
        reply = session.handle({"cmd": "restore"})
        assert reply["ok"] is False and reply["error"] == "no-snapshot"

    def test_snapshot_is_a_warm_start_token(self, tmp_path):
        # the saved workload block pins the node preset, so the batch
        # harnesses accept the file as a --warm-start argument
        from repro.experiments import resolve_warm_start

        session = fresh_session(tmp_path)
        run_script(session, MIDRUN)
        path = session.handle({"cmd": "snapshot"})["path"]
        assert resolve_warm_start(path, "mini") is True
