"""Unit tests for performance monitors, instrumentation and actuation."""

import pytest

from repro.core import Worker
from repro.core.runtime import (
    CallProfile,
    ExecutionHistory,
    FunctionInstrumentation,
    ModelActuator,
    PerformanceMonitor,
)
from repro.hls import saxpy_kernel
from repro.sim import Simulator, spawn


class TestPerformanceMonitor:
    def test_snapshot_reflects_activity(self):
        sim = Simulator()
        worker = Worker(sim, 0)
        mon = PerformanceMonitor(worker)
        before = mon.read()

        def activity():
            yield from worker.run_software(saxpy_kernel(1024), 1000)
            yield from worker.local_stream(0, 8192)

        spawn(sim, activity())
        sim.run()
        after = mon.read()
        delta = after.delta(before)
        assert delta["sw_calls"] == 1
        assert delta["dram_bytes"] == 8192
        assert delta["interval_ns"] > 0
        assert len(mon.snapshots) == 2

    def test_sample_loop_periodic(self):
        sim = Simulator()
        worker = Worker(sim, 0)
        mon = PerformanceMonitor(worker)
        spawn(sim, mon.sample_loop(period_ns=100.0, samples=5))
        sim.run()
        assert len(mon.snapshots) == 5
        stamps = [s.timestamp for s in mon.snapshots]
        assert stamps == [100.0, 200.0, 300.0, 400.0, 500.0]

    def test_sample_loop_validation(self):
        sim = Simulator()
        mon = PerformanceMonitor(Worker(sim, 0))
        spawn(sim, mon.sample_loop(period_ns=0.0, samples=1))
        with pytest.raises(ValueError):
            sim.run()


class TestInstrumentation:
    def test_observe_and_typical_items(self):
        instr = FunctionInstrumentation()
        instr.observe(CallProfile("f", 100))
        instr.observe(CallProfile("f", 300))
        instr.observe(CallProfile("g", 7))
        assert instr.typical_items("f") == 200
        assert instr.typical_items("g") == 7
        assert instr.typical_items("missing") is None

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            FunctionInstrumentation().observe(CallProfile("f", 0))


class TestActuator:
    def filled_history(self, n=40):
        hist = ExecutionHistory()
        for i in range(n):
            items = 100 + i * 50
            hist.record(function="f", device="sw", worker=0, items=items,
                        latency_ns=10.0 * items + 500, energy_pj=2.0 * items,
                        timestamp=float(i))
            hist.record(function="f", device="hw", worker=0, items=items,
                        latency_ns=1.0 * items + 4000, energy_pj=0.2 * items,
                        timestamp=float(i))
        return hist

    def test_retrains_every_n_observations(self):
        hist = self.filled_history()
        act = ModelActuator(hist, retrain_every=4)
        for i in range(9):
            act.observe(CallProfile("f", 100 + i))
        assert act.retrains == 2

    def test_projection_and_recommendation(self):
        hist = self.filled_history()
        act = ModelActuator(hist, retrain_every=1)
        act.observe(CallProfile("f", 500))  # triggers training
        small = act.project("f", 150)
        large = act.project("f", 1800)
        assert small.sw_latency_ns is not None
        assert small.recommended_device == "sw"   # hw fixed cost dominates
        assert large.recommended_device == "hw"
        assert large.hw_energy_pj < large.sw_energy_pj

    def test_cold_projection_abstains(self):
        act = ModelActuator(ExecutionHistory(), retrain_every=1)
        act.observe(CallProfile("f", 10))
        proj = act.project("f", 10)
        assert proj.sw_latency_ns is None
        assert proj.recommended_device is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelActuator(ExecutionHistory(), retrain_every=0)
