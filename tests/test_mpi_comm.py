"""Unit tests for communicators and collectives."""

import math

import pytest

from repro.interconnect import build_flat_crossbar, build_tree
from repro.mpi import CartTopology, Communicator
from repro.sim import Simulator


def make_comm(n=8, topology="flat"):
    sim = Simulator()
    if topology == "flat":
        net, workers = build_flat_crossbar(sim, n)
    else:
        net, workers = build_tree(sim, [2, (n + 1) // 2])
    return Communicator(net, workers)


class TestBasics:
    def test_size_and_nodes(self):
        comm = make_comm(4)
        assert comm.size == 4
        assert comm.node_of(2) == ("w", 2)
        with pytest.raises(ValueError):
            comm.node_of(9)

    def test_empty_rejected(self):
        sim = Simulator()
        net, _ = build_flat_crossbar(sim, 2)
        with pytest.raises(ValueError):
            Communicator(net, [])

    def test_send_self_free(self):
        comm = make_comm(4)
        assert comm.send(1, 1, 100) == (0.0, 0.0)

    def test_send_accounts_traffic(self):
        comm = make_comm(4)
        lat, energy = comm.send(0, 1, 1000)
        assert lat > 0 and energy > 0
        assert comm.network.total_link_bytes() > 0

    def test_sub_communicator(self):
        comm = make_comm(8)
        sub = comm.sub_communicator([0, 2, 4])
        assert sub.size == 3
        assert sub.node_of(1) == ("w", 2)


class TestCollectives:
    def test_broadcast_rounds_logarithmic(self):
        for p in (2, 4, 8, 16):
            comm = make_comm(p)
            r = comm.broadcast(0, 1024)
            assert r.rounds == math.ceil(math.log2(p))
            assert r.bytes_moved == (p - 1) * 1024

    def test_broadcast_nonzero_root(self):
        comm = make_comm(5)
        r = comm.broadcast(3, 64)
        assert r.bytes_moved == 4 * 64

    def test_allreduce_single_rank_free(self):
        comm = make_comm(1)
        r = comm.allreduce(4096)
        assert r.latency_ns == 0.0 and r.rounds == 0

    def test_allreduce_rounds(self):
        comm = make_comm(8)
        r = comm.allreduce(1024)
        assert r.rounds == 3
        assert r.bytes_moved == 3 * 8 * 1024  # every rank sends per round

    def test_allgather_doubles_chunks(self):
        comm = make_comm(4)
        r = comm.allgather(100)
        # round 1: 4 msgs x 100, round 2: 4 msgs x 200
        assert r.bytes_moved == 4 * 100 + 4 * 200

    def test_alltoall_rounds(self):
        comm = make_comm(4)
        r = comm.alltoall(256)
        assert r.rounds == 3
        assert r.bytes_moved == 3 * 4 * 256

    def test_barrier_moves_no_payload(self):
        comm = make_comm(8)
        r = comm.barrier()
        assert r.bytes_moved == 0
        assert r.latency_ns > 0  # headers still traverse the network

    def test_collective_log(self):
        comm = make_comm(4)
        comm.broadcast(0, 10)
        comm.allreduce(10)
        assert [c.name for c in comm.collective_log] == ["broadcast", "allreduce"]

    def test_halo_exchange_on_cart(self):
        comm = make_comm(4)
        cart = CartTopology((2, 2))
        r = comm.halo_exchange(cart, 512)
        # 4 ranks x 2 neighbours each = 8 messages
        assert r.bytes_moved == 8 * 512
        assert r.rounds == 1

    def test_latency_grows_with_scale(self):
        small = make_comm(4).allreduce(4096).latency_ns
        large = make_comm(32).allreduce(4096).latency_ns
        assert large > small

    def test_tree_locality_cheaper_for_neighbours(self):
        comm = make_comm(8, topology="tree")
        near_lat, _ = comm.send(0, 1, 4096)   # siblings
        far_lat, _ = comm.send(0, 7, 4096)    # cross-tree
        assert near_lat < far_lat
