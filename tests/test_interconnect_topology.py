"""Unit tests for topology builders."""

import pytest

from repro.interconnect import (
    LinkParams,
    Message,
    build_dragonfly,
    build_fat_tree,
    build_flat_crossbar,
    build_mesh2d,
    build_slimfly_like,
    build_tree,
)
from repro.interconnect.topology import level_params
from repro.sim import Simulator


class TestLevelParams:
    def test_upper_levels_slower_and_costlier(self):
        p0, p1, p2 = level_params(0), level_params(1), level_params(2)
        assert p0.bandwidth_gbps > p1.bandwidth_gbps > p2.bandwidth_gbps
        assert p0.latency_ns < p1.latency_ns < p2.latency_ns
        assert p0.energy_per_byte_pj < p1.energy_per_byte_pj

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            level_params(-1)


class TestTree:
    def test_worker_count(self):
        net, workers = build_tree(Simulator(), [2, 3])
        assert len(workers) == 6
        assert all(w[0] == "w" for w in workers)

    def test_sibling_distance_two(self):
        net, workers = build_tree(Simulator(), [2, 4])
        # workers 0..3 share a switch
        assert net.hop_distance(workers[0], workers[1]) == 2

    def test_cross_subtree_distance_four(self):
        net, workers = build_tree(Simulator(), [2, 4])
        assert net.hop_distance(workers[0], workers[4]) == 4

    def test_deeper_tree_larger_diameter(self):
        _, w2 = None, None
        net2, workers2 = build_tree(Simulator(), [2, 2])
        net3, workers3 = build_tree(Simulator(), [2, 2, 2])
        assert net3.diameter_hops(workers3) > net2.diameter_hops(workers2)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_tree(Simulator(), [])
        with pytest.raises(ValueError):
            build_tree(Simulator(), [0, 2])
        with pytest.raises(ValueError):
            build_tree(Simulator(), [2, 2], [LinkParams()])  # wrong length

    def test_leaf_links_faster_than_root_links(self):
        net, workers = build_tree(Simulator(), [2, 2])
        route = net.route(workers[0], workers[3])  # through the root
        latencies = [l.params.latency_ns for l in route.links]
        # leaf-adjacent hops cheap, root hops expensive (symmetric path)
        assert latencies[0] < latencies[1]
        assert latencies[-1] < latencies[-2]


class TestFlatCrossbar:
    def test_uniform_two_hops(self):
        net, workers = build_flat_crossbar(Simulator(), 8)
        assert len(workers) == 8
        assert net.hop_distance(workers[0], workers[7]) == 2
        assert net.diameter_hops(workers) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            build_flat_crossbar(Simulator(), 0)


class TestFatTree:
    def test_uplinks_wider(self):
        net, workers = build_fat_tree(Simulator(), [2, 2], uplink_width=4)
        route = net.route(workers[0], workers[3])
        lanes = [l.params.width_lanes for l in route.links]
        assert max(lanes) > min(lanes)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_fat_tree(Simulator(), [2, 2], uplink_width=0)


class TestMesh:
    def test_manhattan_distance(self):
        net, workers = build_mesh2d(Simulator(), 3, 3)
        assert len(workers) == 9
        assert net.hop_distance(("w", 0), ("w", 8)) == 4  # corner to corner

    def test_validation(self):
        with pytest.raises(ValueError):
            build_mesh2d(Simulator(), 0, 3)


class TestDragonfly:
    def test_structure(self):
        net, workers = build_dragonfly(Simulator(), groups=3, routers_per_group=2, workers_per_router=2)
        assert len(workers) == 12
        # intra-group worker-to-worker: w -> r -> r -> w at most
        assert net.hop_distance(workers[0], workers[2]) <= 3

    def test_low_diameter(self):
        net, workers = build_dragonfly(Simulator(), 4, 4, 1)
        # dragonfly diameter for workers: w-r (1), local (1), global (1), local (1), r-w (1)
        assert net.diameter_hops(workers) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dragonfly(Simulator(), 0, 1, 1)


class TestSlimfly:
    def test_paley_router_fabric_diameter_two(self):
        net, workers = build_slimfly_like(Simulator(), q=13)
        routers = [n for n in net.nodes if n[0] == "r"]
        assert net.diameter_hops(routers) == 2

    def test_worker_diameter_at_most_four(self):
        net, workers = build_slimfly_like(Simulator(), q=13, workers_per_router=2)
        assert len(workers) == 26
        assert net.diameter_hops(workers) <= 4

    def test_q_validation(self):
        with pytest.raises(ValueError):
            build_slimfly_like(Simulator(), q=12)  # not prime
        with pytest.raises(ValueError):
            build_slimfly_like(Simulator(), q=7)   # 7 % 4 != 1


class TestTopologyComparison:
    def test_hierarchical_tree_cheaper_than_flat_for_local_traffic(self):
        """Neighbour exchange on the tree touches only leaf-level links;
        on the flat crossbar everything crosses the hub -- the core of the
        paper's Fig. 1 locality argument."""
        sim1, sim2 = Simulator(), Simulator()
        tree, tw = build_tree(sim1, [4, 4])
        flat, fw = build_flat_crossbar(sim2, 16, level_params(1))
        tree_energy = flat_energy = 0.0
        for i in range(0, 16, 2):  # sibling pairs on the tree
            lat, e = tree.send_cost(Message(tw[i], tw[i + 1], 4096))
            tree_energy += e
        for i in range(0, 16, 2):
            lat, e = flat.send_cost(Message(fw[i], fw[i + 1], 4096))
            flat_energy += e
        assert tree_energy < flat_energy
