"""Unit + integration tests for lazy tracking, distribution, the
per-worker scheduler, the daemon and the execution engine."""

import pytest

from repro.apps import Task, make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import (
    DistributionPolicy,
    ExecutionEngine,
    LazyStatusTracker,
    LocalWorkQueue,
    ReconfigurationDaemon,
    WorkDistributor,
)
from repro.fabric import ModuleLibrary
from repro.hls import (
    HlsTool,
    SynthesisConstraints,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
)
from repro.sim import Simulator


@pytest.fixture(scope="module")
def compiled():
    registry = FunctionRegistry()
    lib = ModuleLibrary()
    tool = HlsTool()
    for k in (saxpy_kernel(1024), stencil_kernel(1024), montecarlo_kernel(1024, 8)):
        registry.register(k)
        tool.compile(k, lib, SynthesisConstraints(max_variants=2))
    return registry, lib


def make_engine(workers=4, **kw):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    return sim, node


class TestLazyTracker:
    def make(self, lazy=True, refresh=1000.0, n=4):
        sim = Simulator()
        queues = [LocalWorkQueue(sim, i) for i in range(n)]
        return sim, queues, LazyStatusTracker(sim, queues, refresh, lazy=lazy)

    def test_local_state_free(self):
        sim, queues, tr = self.make()
        queues[0].push(Task("f", 10, 0, 0))
        assert tr.estimated_load(0, 0) == 1
        assert tr.status_messages == 0

    def test_eager_polls_every_query(self):
        sim, queues, tr = self.make(lazy=False)
        for _ in range(10):
            tr.estimated_load(0, 1)
        assert tr.status_messages == 10

    def test_lazy_caches_within_interval(self):
        sim, queues, tr = self.make(lazy=True, refresh=1000.0)
        for _ in range(10):
            tr.estimated_load(0, 1)
        assert tr.status_messages == 1  # one refresh, nine cache hits

    def test_lazy_refreshes_after_interval(self):
        sim, queues, tr = self.make(lazy=True, refresh=1000.0)
        tr.estimated_load(0, 1)
        sim.schedule(2000.0, lambda: None)
        sim.run()
        tr.estimated_load(0, 1)
        assert tr.status_messages == 2

    def test_staleness_error(self):
        sim, queues, tr = self.make(lazy=True)
        tr.estimated_load(0, 1)          # caches 0
        queues[1].push(Task("f", 10, 0, 0))
        assert tr.staleness_error() == 1.0

    def test_least_loaded(self):
        sim, queues, tr = self.make(lazy=False)
        queues[0].push(Task("f", 10, 0, 0))
        queues[0].push(Task("f", 10, 0, 0))
        queues[1].push(Task("f", 10, 0, 0))
        assert tr.least_loaded(0) == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LazyStatusTracker(sim, [], refresh_interval_ns=0)


class TestDistributor:
    def make(self, workers=4, **policy_kw):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
        queues = [LocalWorkQueue(sim, i) for i in range(workers)]
        tracker = LazyStatusTracker(sim, queues, lazy=False)
        dist = WorkDistributor(node, queues, tracker, DistributionPolicy(**policy_kw))
        return sim, node, queues, dist

    def test_prefers_data_worker_when_idle(self):
        _, _, _, dist = self.make()
        t = Task("f", 100, data_worker=2, affinity_worker=2, input_bytes=4096, output_bytes=4096)
        assert dist.choose_worker(t) == 2
        assert dist.locality_fraction() == 1.0

    def test_load_pushes_task_away(self):
        _, _, queues, dist = self.make(load_penalty_ns=10**9)
        for _ in range(5):
            queues[2].push(Task("f", 10, 2, 2))
        t = Task("f", 100, data_worker=2, affinity_worker=2, input_bytes=64, output_bytes=64)
        assert dist.choose_worker(t) != 2
        assert dist.placements_remote == 1

    def test_data_affinity_only_ablation(self):
        _, _, queues, dist = self.make(data_affinity_only=True)
        for _ in range(100):
            queues[2].push(Task("f", 10, 2, 2))
        t = Task("f", 100, data_worker=2, affinity_worker=2, input_bytes=64, output_bytes=64)
        assert dist.choose_worker(t) == 2  # ignores the pile-up

    def test_dispatch_enqueues(self):
        _, _, queues, dist = self.make()
        t = Task("f", 100, data_worker=1, affinity_worker=1)
        w = dist.dispatch(t)
        assert queues[w].depth == 1

    def test_queue_count_validation(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        with pytest.raises(ValueError):
            WorkDistributor(node, [], LazyStatusTracker(sim, [], 10.0))


class TestEngineEndToEnd:
    def run_graph(self, compiled, use_daemon=True, allow_hardware=True, seed=4,
                  layers=5, width=8, workers=4, **engine_kw):
        registry, lib = compiled
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
        engine = ExecutionEngine(
            node,
            registry,
            lib,
            use_daemon=use_daemon,
            daemon_period_ns=100_000.0,
            allow_hardware=allow_hardware,
            **engine_kw,
        )
        graph = make_layered_dag(
            layers=layers, width=width, num_workers=workers,
            functions=("saxpy", "stencil5", "montecarlo"), seed=seed,
        )
        return engine, engine.run_graph(graph)

    def test_all_tasks_complete(self, compiled):
        engine, report = self.run_graph(compiled)
        assert report.sw_calls + report.hw_calls == report.tasks
        assert report.makespan_ns > 0
        assert report.energy_pj > 0

    def test_daemon_moves_work_to_hardware(self, compiled):
        engine, with_daemon = self.run_graph(compiled, use_daemon=True)
        _, without = self.run_graph(compiled, use_daemon=False)
        assert with_daemon.hw_calls > 0
        assert without.hw_calls == 0
        assert with_daemon.reconfigurations > 0
        assert without.reconfigurations == 0

    def test_hardware_improves_energy_at_bounded_makespan(self, compiled):
        """The system-level acceleration claim: offloading to the fabric
        cuts total energy substantially.  Makespan stays comparable (the
        shared pool serializes, while 4 Workers x 4 cores run fully
        parallel), so we bound it rather than demand a win."""
        _, hw = self.run_graph(compiled, use_daemon=True, layers=8, width=12)
        _, sw = self.run_graph(compiled, allow_hardware=False, use_daemon=False,
                               layers=8, width=12)
        assert hw.energy_pj < 0.75 * sw.energy_pj
        assert hw.makespan_ns < 1.5 * sw.makespan_ns

    def test_history_populated(self, compiled):
        engine, report = self.run_graph(compiled)
        assert len(engine.history) == report.tasks
        assert set(engine.history.functions()) <= {"saxpy", "stencil5", "montecarlo"}

    def test_lazy_fewer_status_messages_than_eager(self, compiled):
        _, lazy = self.run_graph(compiled, lazy_status=True, seed=7)
        _, eager = self.run_graph(compiled, lazy_status=False, seed=7)
        assert lazy.status_messages < eager.status_messages

    def test_report_properties(self, compiled):
        _, report = self.run_graph(compiled)
        assert 0.0 <= report.hw_fraction <= 1.0
        assert report.device_mix["sw"] == report.sw_calls


class TestDaemon:
    def test_validation(self, compiled):
        registry, lib = compiled
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        from repro.core.runtime import ExecutionHistory
        from repro.core import UnilogicDomain

        with pytest.raises(ValueError):
            ReconfigurationDaemon(
                node, UnilogicDomain(node), lib, registry, ExecutionHistory(),
                period_ns=0,
            )

    def test_ranks_hot_unhosted_functions(self, compiled):
        registry, lib = compiled
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        from repro.core.runtime import ExecutionHistory
        from repro.core import UnilogicDomain

        history = ExecutionHistory()
        for _ in range(10):
            history.record(function="montecarlo", device="sw", worker=0,
                           items=1024, latency_ns=1e6, energy_pj=1e6, timestamp=0.0)
        history.record(function="not_in_library", device="sw", worker=0,
                       items=10, latency_ns=1e9, energy_pj=1.0, timestamp=0.0)
        daemon = ReconfigurationDaemon(
            node, UnilogicDomain(node), lib, registry, history, period_ns=1000.0
        )
        ranked = daemon.rank_candidates()
        assert ranked
        assert ranked[0][1] == "montecarlo"
        assert all(f != "not_in_library" for _, f in ranked)
