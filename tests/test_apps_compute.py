"""Unit tests for matmul, Monte-Carlo, n-body and CART workloads."""

import numpy as np
import pytest

from repro.apps import (
    CartTree,
    blocked_matmul,
    european_call_mc,
    gbm_paths,
    make_classification,
    matmul_task_list,
    nbody_energy,
    nbody_step,
)
from repro.apps.montecarlo import black_scholes_call
from repro.apps.nbody import plummer_sphere


class TestMatmul:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(17, 23))
        b = rng.normal(size=(23, 9))
        np.testing.assert_allclose(blocked_matmul(a, b, 5), a @ b, rtol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros((2, 3)), np.zeros((2, 3)), 1)
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros((2, 2)), np.zeros((2, 2)), 0)

    def test_task_list_count(self):
        tasks = matmul_task_list(8, 8, 8, 4)
        assert len(tasks) == 2 * 2 * 2
        assert tasks[0] == (0, 0, 0)
        with pytest.raises(ValueError):
            matmul_task_list(0, 1, 1, 1)


class TestMonteCarlo:
    def test_paths_shape_and_start(self):
        p = gbm_paths(100.0, 0.05, 0.2, 1.0, steps=16, paths=50, seed=3)
        assert p.shape == (50, 17)
        assert np.all(p[:, 0] == 100.0)
        assert np.all(p > 0)

    def test_deterministic_by_seed(self):
        a = gbm_paths(100, 0.05, 0.2, 1.0, 8, 10, seed=5)
        b = gbm_paths(100, 0.05, 0.2, 1.0, 8, 10, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_price_near_black_scholes(self):
        price, stderr = european_call_mc(
            100.0, 105.0, 0.03, 0.2, 1.0, steps=32, paths=40000, seed=7
        )
        reference = black_scholes_call(100.0, 105.0, 0.03, 0.2, 1.0)
        assert abs(price - reference) < 4 * stderr + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            gbm_paths(-1, 0, 0.2, 1.0, 4, 4)
        with pytest.raises(ValueError):
            european_call_mc(100, -5, 0.05, 0.2, 1.0)
        with pytest.raises(ValueError):
            black_scholes_call(100, 100, 0.05, 0, 1.0)


class TestNbody:
    def test_two_body_attraction(self):
        p = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        v = np.zeros((2, 3))
        m = np.ones(2)
        new_p, _ = nbody_step(p, v, m, dt=0.01)
        # bodies move toward each other along x
        assert new_p[0, 0] > 0.0
        assert new_p[1, 0] < 1.0

    def test_energy_roughly_conserved(self):
        p, v, m = plummer_sphere(32, seed=2)
        e0 = nbody_energy(p, v, m)
        for _ in range(20):
            p, v = nbody_step(p, v, m, dt=1e-4)
        e1 = nbody_energy(p, v, m)
        assert abs(e1 - e0) / abs(e0) < 0.05

    def test_validation(self):
        p, v, m = plummer_sphere(4)
        with pytest.raises(ValueError):
            nbody_step(p[:, :2], v, m, 0.01)
        with pytest.raises(ValueError):
            nbody_step(p, v, m[:-1], 0.01)
        with pytest.raises(ValueError):
            nbody_step(p, v, m, dt=0)
        with pytest.raises(ValueError):
            plummer_sphere(1)


class TestCart:
    def test_learns_separable_data(self):
        x, y = make_classification(400, 6, 2, seed=1)
        tree = CartTree(max_depth=8).fit(x, y)
        assert tree.accuracy(x, y) > 0.9

    def test_generalizes(self):
        x, y = make_classification(600, 6, 3, seed=2)
        train_x, test_x = x[:400], x[400:]
        train_y, test_y = y[:400], y[400:]
        tree = CartTree(max_depth=8).fit(train_x, train_y)
        assert tree.accuracy(test_x, test_y) > 0.7

    def test_pure_node_stops(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = CartTree().fit(x, y)
        assert tree.node_count == 1
        assert np.all(tree.predict(x) == 1)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            CartTree().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            CartTree(max_depth=0)
        with pytest.raises(ValueError):
            CartTree().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            make_classification(1, 2, 2)

    def test_splits_counted_for_hw_model(self):
        x, y = make_classification(100, 4, 2)
        tree = CartTree(max_depth=3).fit(x, y)
        assert tree.splits_evaluated > 0
