"""Tests for automated DRAM-port-parallelism exploration (§4.3)."""

import pytest

from repro.hls import DesignSpaceExplorer, HlsConfig, HlsEstimator, OpKind
from repro.hls.estimator import ON_CHIP_BYTES_LIMIT
from repro.hls.ir import ArrayArg, Kernel
from repro.hls.transforms import default_config_grid


def streaming_kernel(n=1 << 20):
    """A memory-bound kernel whose arrays dwarf on-chip storage."""
    return Kernel(
        name="bigcopy",
        trip_counts=(n,),
        ops={OpKind.ADD: 1},
        arrays=(
            ArrayArg("src", 8, reads_per_iter=1, footprint_elems=n),
            ArrayArg("dst", 8, writes_per_iter=1, footprint_elems=n),
        ),
    )


def onchip_kernel(n=1024):
    return Kernel(
        name="smallcopy",
        trip_counts=(n,),
        ops={OpKind.ADD: 1},
        arrays=(
            ArrayArg("src", 4, reads_per_iter=1, footprint_elems=n),
            ArrayArg("dst", 4, writes_per_iter=1, footprint_elems=n),
        ),
    )


class TestStreamingModel:
    def test_streamed_kernel_bound_by_dram_bandwidth(self):
        est = HlsEstimator()
        k = streaming_kernel()
        one = est.estimate(k, HlsConfig(dram_ports=1))
        # 16 streamed bytes/iter over one 8B/cycle port -> II 2
        assert one.initiation_interval == 2

    def test_more_ports_relieve_the_bound(self):
        est = HlsEstimator()
        k = streaming_kernel()
        one = est.estimate(k, HlsConfig(dram_ports=1))
        two = est.estimate(k, HlsConfig(dram_ports=2))
        assert two.initiation_interval < one.initiation_interval
        assert two.initiation_interval == 1

    def test_ports_cost_area(self):
        est = HlsEstimator()
        k = streaming_kernel()
        r1 = est.estimate(k, HlsConfig(dram_ports=1)).resources
        r4 = est.estimate(k, HlsConfig(dram_ports=4)).resources
        assert r4.luts > r1.luts
        assert r4.area_units() > r1.area_units()

    def test_streamed_arrays_skip_bram_banking(self):
        est = HlsEstimator()
        streamed = est.estimate(streaming_kernel(), HlsConfig()).resources
        # the giant arrays would need thousands of BRAMs if banked
        assert streamed.brams < 100

    def test_streaming_adds_pipeline_depth(self):
        est = HlsEstimator()
        deep = est.pipeline_depth(streaming_kernel(), HlsConfig())
        shallow = est.pipeline_depth(onchip_kernel(), HlsConfig())
        assert deep > shallow

    def test_onchip_kernel_unaffected_by_ports(self):
        est = HlsEstimator()
        k = onchip_kernel()
        a = est.estimate(k, HlsConfig(dram_ports=1))
        b = est.estimate(k, HlsConfig(dram_ports=4))
        assert a.initiation_interval == b.initiation_interval
        assert a.resources == b.resources

    def test_validation(self):
        with pytest.raises(ValueError):
            HlsConfig(dram_ports=0)

    def test_label_mentions_ports(self):
        assert "m4" in HlsConfig(dram_ports=4).label()
        assert "m" not in HlsConfig(dram_ports=1).label().split("_")


class TestGridAndDse:
    def test_grid_sweeps_ports_only_when_streaming(self):
        streamed_grid = list(default_config_grid(streaming_kernel()))
        onchip_grid = list(default_config_grid(onchip_kernel()))
        assert {c.dram_ports for c in streamed_grid} == {1, 2, 4}
        assert {c.dram_ports for c in onchip_grid} == {1}

    def test_dse_picks_multiport_for_streaming_kernel(self):
        dse = DesignSpaceExplorer()
        from repro.fabric import ResourceVector

        budget = ResourceVector(luts=10**6, ffs=10**6, brams=10**4, dsps=10**4)
        best = dse.best_under_constraints(
            streaming_kernel(), budget, items_hint=100_000
        )
        assert best is not None
        assert best.config.dram_ports > 1  # the automated decision