"""Unit tests for topology-aware rank placement."""

import pytest

from repro.interconnect import build_tree
from repro.mpi import (
    CartTopology,
    GraphTopology,
    improve_by_swaps,
    place_by_blocks,
    place_round_robin,
    placement_cost,
)
from repro.sim import Simulator


def machine(fanouts=(4, 4)):
    sim = Simulator()
    return build_tree(sim, list(fanouts))


class TestPlacements:
    def test_block_maps_consecutively(self):
        _, workers = machine()
        m = place_by_blocks(32, workers)
        assert m[0] == workers[0]
        assert m[31] == workers[15]

    def test_round_robin(self):
        _, workers = machine()
        m = place_round_robin(20, workers)
        assert m[0] == workers[0]
        assert m[16] == workers[0]

    def test_validation(self):
        _, workers = machine()
        with pytest.raises(ValueError):
            place_by_blocks(0, workers)
        with pytest.raises(ValueError):
            place_by_blocks(4, [])
        with pytest.raises(ValueError):
            place_round_robin(4, [])


class TestPlacementCost:
    def test_colocated_neighbours_free(self):
        net, workers = machine()
        topo = CartTopology((2, 2))
        mapping = {r: workers[0] for r in range(4)}
        assert placement_cost(topo, mapping, net) == 0.0

    def test_block_beats_round_robin_for_cart(self):
        net, workers = machine()
        topo = CartTopology((8, 8))
        block = placement_cost(topo, place_by_blocks(64, workers), net)
        rr = placement_cost(topo, place_round_robin(64, workers), net)
        assert block < rr

    def test_cost_counts_each_edge_once(self):
        net, workers = machine((2,))
        topo = GraphTopology({0: [1], 1: [0]})
        mapping = {0: workers[0], 1: workers[1]}
        cost = placement_cost(topo, mapping, net, bytes_per_edge=10)
        assert cost == net.hop_distance(workers[0], workers[1]) * 10


class TestSwapRefinement:
    def test_improves_bad_placement(self):
        net, workers = machine()
        topo = CartTopology((4, 4))
        # adversarial start: reversed block placement scattered by stride
        bad = {r: workers[(r * 7) % 16] for r in range(16)}
        before = placement_cost(topo, bad, net)
        better = improve_by_swaps(topo, bad, net)
        after = placement_cost(topo, better, net)
        assert after <= before

    def test_cannot_beat_optimal(self):
        net, workers = machine((4,))
        topo = CartTopology((1, 4))
        optimal = {r: workers[r] for r in range(4)}
        refined = improve_by_swaps(topo, optimal, net)
        assert placement_cost(topo, refined, net) == placement_cost(topo, optimal, net)

    def test_preserves_rank_set(self):
        net, workers = machine()
        topo = CartTopology((4, 4))
        mapping = place_round_robin(16, workers)
        refined = improve_by_swaps(topo, mapping, net)
        assert sorted(refined) == sorted(mapping)
        assert sorted(map(str, refined.values())) == sorted(map(str, mapping.values()))

    def test_validation(self):
        net, workers = machine((2,))
        topo = CartTopology((1, 2))
        with pytest.raises(ValueError):
            improve_by_swaps(topo, {0: workers[0], 1: workers[1]}, net, max_passes=0)
