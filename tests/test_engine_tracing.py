"""Tests for engine-integrated tracing and the VM-sharing scenario."""

import pytest

from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry, Worker
from repro.core.middleware import CallPath, HardwareCallLibrary
from repro.core.runtime import ExecutionEngine
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, Tracer, render_timeline, spawn


class TestEngineTracing:
    def run_traced(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        registry = FunctionRegistry()
        registry.register(saxpy_kernel(1024))
        tracer = Tracer(sim)
        engine = ExecutionEngine(
            node, registry, use_daemon=False, allow_hardware=False, tracer=tracer
        )
        graph = make_layered_dag(3, 6, 2, functions=("saxpy",), seed=2)
        report = engine.run_graph(graph)
        return tracer, report

    def test_every_task_has_a_span(self):
        tracer, report = self.run_traced()
        spans = tracer.closed_spans()
        assert len(spans) == report.tasks
        assert all(s.duration > 0 for s in spans)

    def test_lanes_are_workers(self):
        tracer, _ = self.run_traced()
        assert set(tracer.lanes()) <= {"node0.w0", "node0.w1"}

    def test_timeline_renders(self):
        tracer, _ = self.run_traced()
        text = render_timeline(tracer)
        assert "node0.w0" in text
        assert "#" in text

    def test_utilization_positive(self):
        tracer, report = self.run_traced()
        total_busy = sum(tracer.busy_time(l) for l in tracer.lanes())
        assert total_busy > 0
        assert total_busy >= report.makespan_ns  # 2 workers overlap


class TestMultiVmSharing:
    """Two 'virtual machines' (separate SMMU contexts) share one loaded
    accelerator through the virtualization block -- the Fig. 4 story of
    'multiple function calls (from different virtual machines) in a
    fully pipelined fashion'."""

    def test_two_vms_isolated_translations_shared_pipeline(self):
        lib = ModuleLibrary()
        HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
        module = lib.best_variant("saxpy")
        sim = Simulator()
        worker = Worker(sim, 0)
        call_lib = HardwareCallLibrary(worker)
        vm1 = call_lib.bind_user_context(16 * 4096)
        vm2 = call_lib.bind_user_context(16 * 4096)
        assert vm1 != vm2
        done = {}

        def vm_job(tag, ctx):
            t = yield from call_lib.call("saxpy", 512, 16 * 4096,
                                         CallPath.USER_LEVEL, ctx)
            done[tag] = (t, sim.now)

        def setup():
            yield from worker.load_module(module)
            spawn(sim, vm_job("vm1", vm1))
            spawn(sim, vm_job("vm2", vm2))

        spawn(sim, setup())
        sim.run()
        assert set(done) == {"vm1", "vm2"}
        # pipelined sharing: combined wall time well below 2x a solo call
        solo = module.latency_ns(512)
        finish = max(end for _, end in done.values())
        assert finish < 2.0 * (solo + 10_000)
        # isolation: each VM's pages were translated in its own context
        assert worker.smmu.stats.translations >= 32
        assert worker.smmu.tlb_occupancy >= 32  # both VMs' entries cached
