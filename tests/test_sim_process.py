"""Unit tests for generator processes, signals and composite waits."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Signal,
    Simulator,
    Timeout,
    spawn,
)


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(5.0)
        seen.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert seen == [5.0]


def test_timeout_negative_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1)


def test_process_return_value_via_join():
    sim = Simulator()
    result = []

    def child():
        yield Timeout(3.0)
        return 42

    def parent():
        value = yield spawn(sim, child())
        result.append(value)

    spawn(sim, parent())
    sim.run()
    assert result == [42]


def test_signal_wait_then_fire():
    sim = Simulator()
    sig = Signal(sim)
    got = []

    def waiter():
        value = yield sig
        got.append((sim.now, value))

    def firer():
        yield Timeout(7.0)
        sig.succeed("hello")

    spawn(sim, waiter())
    spawn(sim, firer())
    sim.run()
    assert got == [(7.0, "hello")]


def test_signal_fire_then_wait_resumes_immediately():
    sim = Simulator()
    sig = Signal(sim)
    sig.succeed("early")
    got = []

    def waiter():
        yield Timeout(2.0)
        value = yield sig
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.run()
    assert got == [(2.0, "early")]


def test_signal_double_fire_rejected():
    sim = Simulator()
    sig = Signal(sim)
    sig.succeed(1)
    with pytest.raises(SimulationError):
        sig.succeed(2)


def test_signal_value_before_fire_rejected():
    sim = Simulator()
    sig = Signal(sim)
    with pytest.raises(SimulationError):
        _ = sig.value


def test_allof_collects_values_in_order():
    sim = Simulator()
    got = []

    def make(delay, value):
        def proc():
            yield Timeout(delay)
            return value

        return proc()

    def parent():
        children = [spawn(sim, make(3.0, "a")), spawn(sim, make(1.0, "b"))]
        values = yield AllOf(children)
        got.append((sim.now, values))

    spawn(sim, parent())
    sim.run()
    assert got == [(3.0, ["a", "b"])]


def test_allof_empty_completes_immediately():
    sim = Simulator()
    got = []

    def parent():
        values = yield AllOf([])
        got.append(values)

    spawn(sim, parent())
    sim.run()
    assert got == [[]]


def test_anyof_returns_first_winner():
    sim = Simulator()
    got = []

    def parent():
        winner = yield AnyOf([Timeout(5.0, "slow"), Timeout(1.0, "fast")])
        got.append((sim.now, winner))

    spawn(sim, parent())
    sim.run()
    assert got == [(1.0, (1, "fast"))]


def test_anyof_empty_rejected():
    with pytest.raises(SimulationError):
        AnyOf([])


def test_interrupt_is_raised_inside_process():
    sim = Simulator()
    got = []

    def victim():
        try:
            yield Timeout(100.0)
        except Interrupt as itr:
            got.append((sim.now, itr.cause))

    def attacker(proc):
        yield Timeout(4.0)
        proc.interrupt("preempted")

    p = spawn(sim, victim())
    spawn(sim, attacker(p))
    sim.run()
    assert got == [(4.0, "preempted")]


def test_uncaught_interrupt_terminates_quietly():
    sim = Simulator()

    def victim():
        yield Timeout(100.0)

    def attacker(proc):
        yield Timeout(1.0)
        proc.interrupt()

    p = spawn(sim, victim())
    spawn(sim, attacker(p))
    sim.run()
    assert not p.alive


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def victim():
        yield Timeout(1.0)

    p = spawn(sim, victim())
    sim.run()
    p.interrupt()
    sim.run()
    assert not p.alive


def test_yield_non_waitable_raises():
    sim = Simulator()

    def bad():
        yield 42

    spawn(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    stamps = []

    def proc():
        for _ in range(4):
            yield Timeout(2.5)
            stamps.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert stamps == [2.5, 5.0, 7.5, 10.0]


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(tag, delay):
        yield Timeout(delay)
        order.append(tag)

    for i in range(5):
        spawn(sim, proc(i, float(5 - i)))
    sim.run()
    assert order == [4, 3, 2, 1, 0]
