"""Tests for the service daemon's wire protocol: frame decode/encode,
structured error replies for malformed input, and the contract that
every advertised command actually dispatches on a session."""

import json

import pytest

from repro.service import (
    COMMANDS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceSession,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
)


# ----------------------------------------------------------------------
# decode_frame
# ----------------------------------------------------------------------
class TestDecodeFrame:
    def test_accepts_str_and_bytes(self):
        frame = decode_frame('{"cmd": "ping"}')
        assert frame == {"cmd": "ping"}
        frame = decode_frame(b'{"cmd": "ping", "id": 7}\n')
        assert frame["id"] == 7

    def test_bad_utf8_is_bad_encoding(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b'\xff\xfe{"cmd": "ping"}')
        assert err.value.code == "bad-encoding"

    def test_bad_json_is_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame("{not json")
        assert err.value.code == "bad-json"

    def test_non_object_is_bad_frame(self):
        for line in ("[1, 2]", '"ping"', "42", "null"):
            with pytest.raises(ProtocolError) as err:
                decode_frame(line)
            assert err.value.code == "bad-frame"

    def test_missing_or_non_string_cmd_is_bad_frame(self):
        for line in ("{}", '{"cmd": 3}', '{"cmd": ""}', '{"cmd": null}'):
            with pytest.raises(ProtocolError) as err:
                decode_frame(line)
            assert err.value.code == "bad-frame"

    def test_unknown_command_lists_known_ones(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame('{"cmd": "frobnicate"}')
        assert err.value.code == "unknown-command"
        assert "ping" in err.value.message

    def test_every_advertised_command_decodes(self):
        for cmd in COMMANDS:
            assert decode_frame(json.dumps({"cmd": cmd}))["cmd"] == cmd


# ----------------------------------------------------------------------
# encode_frame / reply envelopes
# ----------------------------------------------------------------------
class TestEncode:
    def test_encode_is_one_sorted_ndjson_line(self):
        line = encode_frame({"b": 1, "a": 2})
        assert line == b'{"a": 2, "b": 1}\n'
        assert line.count(b"\n") == 1

    def test_round_trip(self):
        frame = {"cmd": "submit", "kind": "serving", "seed": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_ok_reply_carries_id_and_fields(self):
        reply = ok_reply(11, state="idle")
        assert reply == {"ok": True, "state": "idle", "id": 11}
        assert "id" not in ok_reply(None)

    def test_error_reply_shape(self):
        reply = error_reply("busy", "an epoch is live", request_id="x")
        assert reply == {
            "ok": False,
            "error": "busy",
            "message": "an epoch is live",
            "id": "x",
        }


# ----------------------------------------------------------------------
# session dispatch honours the advertised command set
# ----------------------------------------------------------------------
class TestDispatchContract:
    def test_every_command_has_a_session_handler(self):
        session = ServiceSession(telemetry=False, warm=False)
        for cmd in COMMANDS:
            assert callable(getattr(session, f"_cmd_{cmd}", None)), cmd

    def test_ping_reports_protocol_version(self):
        session = ServiceSession(telemetry=False, warm=False)
        reply = session.handle({"cmd": "ping"})
        assert reply["ok"] and reply["pong"]
        assert reply["protocol"] == PROTOCOL_VERSION

    def test_handle_line_turns_malformed_input_into_error_replies(self):
        session = ServiceSession(telemetry=False, warm=False)
        cases = {
            b"{not json\n": "bad-json",
            b"[1, 2]\n": "bad-frame",
            b'{"cmd": "nope"}\n': "unknown-command",
            b'\xff\xfe\n': "bad-encoding",
        }
        for line, code in cases.items():
            reply = json.loads(session.handle_line(line))
            assert reply["ok"] is False
            assert reply["error"] == code

    def test_request_id_echoed_on_ok_and_error(self):
        session = ServiceSession(telemetry=False, warm=False)
        assert session.handle({"cmd": "ping", "id": 5})["id"] == 5
        reply = session.handle({"cmd": "step", "id": "s1"})  # no workload
        assert reply["ok"] is False and reply["id"] == "s1"
        # handle_line recovers the id even for frames that fail decode late
        reply = json.loads(session.handle_line(b'{"cmd": "report", "id": 9}\n'))
        assert reply["id"] == 9

    def test_unknown_command_via_handle(self):
        session = ServiceSession(telemetry=False, warm=False)
        reply = session.handle({"cmd": "bogus"})
        assert reply["ok"] is False and reply["error"] == "unknown-command"

    def test_closed_session_only_answers_ping_and_status(self):
        session = ServiceSession(telemetry=False, warm=False)
        reply = session.handle({"cmd": "shutdown"})
        assert reply["ok"] and reply["closed"]
        assert session.handle({"cmd": "ping"})["ok"]
        assert session.handle({"cmd": "status"})["state"] == "closed"
        for cmd in ("submit", "step", "run", "drain", "snapshot"):
            reply = session.handle({"cmd": cmd})
            assert reply["ok"] is False and reply["error"] == "closed", cmd
