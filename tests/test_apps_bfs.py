"""Unit tests for the distributed BFS workload."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.bfs import (
    CsrGraph,
    bfs_levels,
    frontier_exchange_plan,
    random_graph,
)


class TestGraph:
    def test_random_graph_symmetric(self):
        g = random_graph(100, avg_degree=6, seed=1)
        assert g.num_vertices == 100
        # symmetry: u in N(v) <=> v in N(u)
        for v in range(0, 100, 17):
            for u in g.neighbours(v):
                assert v in g.neighbours(int(u))

    def test_deterministic(self):
        a = random_graph(50, seed=3)
        b = random_graph(50, seed=3)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_graph(1)
        with pytest.raises(ValueError):
            random_graph(10, avg_degree=0)

    def test_degree(self):
        g = random_graph(30, seed=2)
        assert g.degree(0) == len(g.neighbours(0))


class TestBfs:
    def test_matches_networkx(self):
        g = random_graph(200, avg_degree=5, seed=7)
        levels = bfs_levels(g, source=0)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        for v in range(g.num_vertices):
            for u in g.neighbours(v):
                nxg.add_edge(v, int(u))
        expected = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(g.num_vertices):
            if v in expected:
                assert levels[v] == expected[v]
            else:
                assert levels[v] == -1

    def test_source_level_zero(self):
        g = random_graph(50, seed=4)
        assert bfs_levels(g, 5)[5] == 0

    def test_source_validation(self):
        g = random_graph(10, seed=1)
        with pytest.raises(ValueError):
            bfs_levels(g, 99)


class TestExchangePlan:
    def test_messages_count_discoveries(self):
        g = random_graph(300, avg_degree=6, seed=9)
        levels = bfs_levels(g)
        plans = frontier_exchange_plan(g, levels, partitions=4)
        assert plans
        for plan in plans:
            for i, j, c in plan.messages:
                assert i != j
                assert c > 0
                assert 0 <= i < 4 and 0 <= j < 4

    def test_single_partition_no_traffic(self):
        g = random_graph(100, seed=2)
        levels = bfs_levels(g)
        plans = frontier_exchange_plan(g, levels, partitions=1)
        assert all(p.message_count == 0 for p in plans)

    def test_messages_are_small_and_irregular(self):
        """The paper's premise: frontier messages are small (few vertices
        per partner) and partner sets vary level to level."""
        g = random_graph(2000, avg_degree=4, seed=11)
        levels = bfs_levels(g)
        plans = frontier_exchange_plan(g, levels, partitions=8)
        busy = [p for p in plans if p.message_count]
        assert busy
        # the early frontier levels have few vertices per message
        assert busy[0].mean_message_vertices() < 32
        partner_sets = [frozenset((i, j) for i, j, _ in p.messages) for p in busy]
        assert len(set(partner_sets)) > 1  # pattern changes across levels

    def test_validation(self):
        g = random_graph(10, seed=1)
        with pytest.raises(ValueError):
            frontier_exchange_plan(g, bfs_levels(g), 0)
