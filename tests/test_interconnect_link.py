"""Unit tests for links and messages."""

import pytest

from repro.interconnect import Link, LinkParams, Message, TransactionType
from repro.sim import Simulator, spawn


class TestLinkParams:
    def test_transfer_time(self):
        p = LinkParams(bandwidth_gbps=10.0, latency_ns=5.0)
        assert p.transfer_ns(100) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            LinkParams(latency_ns=-1)
        with pytest.raises(ValueError):
            LinkParams(energy_per_byte_pj=-1)
        with pytest.raises(ValueError):
            LinkParams(width_lanes=0)


class TestLink:
    def test_cost_and_account(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0, energy_per_byte_pj=2.0))
        assert link.cost(64) == pytest.approx(64.0)
        link.account(64)
        assert link.bytes_carried == 64
        assert link.energy_pj == pytest.approx(128.0)

    def test_negative_size_rejected(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(ValueError):
            link.cost(-1)
        with pytest.raises(ValueError):
            link.account(-1)
        with pytest.raises(ValueError):
            next(link.transfer(-1))

    def test_zero_size_transfer_allowed(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=5.0))
        done = []

        def sender():
            yield from link.transfer(0)
            done.append(sim.now)

        spawn(sim, sender())
        sim.run()
        assert done == [5.0]    # propagation latency only

    def test_waiting_low_priority_value_overtakes_high(self):
        """Documented semantics: waiting transfers are granted in
        ascending (priority, arrival-order); the in-flight transfer is
        never preempted."""
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        done = []

        def sender(tag, priority):
            yield from link.transfer(100, priority=priority)
            done.append(tag)

        spawn(sim, sender("bulk-occupying", 5))   # takes the lane at t=0
        spawn(sim, sender("bulk-waiting", 5))     # arrives first in queue
        spawn(sim, sender("sync", 0))             # lower value: overtakes
        sim.run()
        assert done == ["bulk-occupying", "sync", "bulk-waiting"]

    def test_equal_priority_stays_fifo(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        done = []

        def sender(tag):
            yield from link.transfer(50, priority=3)
            done.append(tag)

        for tag in ("a", "b", "c"):
            spawn(sim, sender(tag))
        sim.run()
        assert done == ["a", "b", "c"]

    def test_transfer_serializes_on_single_lane(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        done = []

        def sender(tag):
            yield from link.transfer(100)
            done.append((tag, sim.now))

        spawn(sim, sender("a"))
        spawn(sim, sender("b"))
        sim.run()
        times = sorted(t for _, t in done)
        assert times == [100.0, 200.0]

    def test_multi_lane_link_parallelizes(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0, width_lanes=2))
        done = []

        def sender():
            yield from link.transfer(100)
            done.append(sim.now)

        spawn(sim, sender())
        spawn(sim, sender())
        sim.run()
        assert done == [100.0, 100.0]


class TestMessage:
    def test_wire_bytes_include_header(self):
        m = Message(0, 1, 100, TransactionType.LOAD)
        assert m.wire_bytes == 116

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -5)

    def test_latency_none_until_delivered(self):
        m = Message(0, 1, 10)
        assert m.latency is None
        m.issued_at, m.delivered_at = 5.0, 30.0
        assert m.latency == 25.0

    def test_unique_ids(self):
        a, b = Message(0, 1, 1), Message(0, 1, 1)
        assert a.msg_id != b.msg_id

    def test_priorities_prefer_sync_over_dma(self):
        assert TransactionType.SYNC.priority < TransactionType.DMA.priority
        assert TransactionType.INTERRUPT.priority < TransactionType.MPI.priority

    def test_all_types_have_headers(self):
        for t in TransactionType:
            assert t.header_bytes > 0
