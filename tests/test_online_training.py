"""Tests for online model retraining during an engine run (the §4.2
actuation loop wired into the scheduler)."""

import pytest

from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import DeviceSelector, ExecutionEngine
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, montecarlo_kernel, saxpy_kernel
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "montecarlo")


def build(selector=None, retrain_every=0):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for k in (saxpy_kernel(1024), montecarlo_kernel(1024, 8)):
        registry.register(k)
        tool.compile(k, library, SynthesisConstraints(max_variants=1))
    engine = ExecutionEngine(
        node, registry, library,
        use_daemon=True, daemon_period_ns=50_000.0,
        selector=selector, retrain_every=retrain_every,
    )
    return engine


def test_selector_trained_during_run():
    selector = DeviceSelector(min_samples=4)
    engine = build(selector=selector, retrain_every=8)
    graph = make_layered_dag(10, 10, 4, functions=FUNCTIONS, seed=23)
    report = engine.run_graph(graph)
    assert report.tasks == 100
    # by run end the selector has models for the hot functions
    counts = selector.sample_counts("saxpy")
    assert counts["sw"] + counts["hw"] > 0
    # and its predictions are live (not None) for at least one device
    assert any(
        selector.predict_latency("saxpy", d, 1000) is not None
        for d in ("sw", "hw")
    )


def test_trained_selector_steers_decisions():
    """Once trained, the scheduler consults the selector; its decisions
    appear as the hw/sw mix."""
    selector = DeviceSelector(min_samples=4)
    engine = build(selector=selector, retrain_every=4)
    graph = make_layered_dag(12, 10, 4, functions=FUNCTIONS, seed=29)
    report = engine.run_graph(graph)
    assert report.hw_calls > 0  # hardware got used under model guidance
    # decisions recorded in history match the report
    hw_records = engine.history.records(device="hw")
    assert len(hw_records) == report.hw_calls


def test_no_selector_still_works():
    engine = build(selector=None)
    graph = make_layered_dag(4, 6, 4, functions=FUNCTIONS, seed=31)
    report = engine.run_graph(graph)
    assert report.tasks == 24
