"""Unit tests for HLS transforms and the estimator."""

import pytest

from repro.fabric import ResourceVector
from repro.hls import (
    HlsConfig,
    HlsEstimator,
    OpKind,
    SoftwareCostModel,
    matmul_kernel,
    montecarlo_kernel,
    saxpy_kernel,
    vecadd_kernel,
)
from repro.hls.transforms import default_config_grid


class TestHlsConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HlsConfig(unroll=0)
        with pytest.raises(ValueError):
            HlsConfig(duplicate=0)
        with pytest.raises(ValueError):
            HlsConfig(partition={"a": 0})

    def test_label_and_hash(self):
        a = HlsConfig(unroll=2, partition={"x": 4})
        b = HlsConfig(unroll=2, partition={"x": 4})
        assert a.label() == b.label()
        assert hash(a) == hash(b)
        assert "u2" in a.label()

    def test_partition_default(self):
        assert HlsConfig().partition_of("anything") == 1

    def test_grid_respects_trip_count(self):
        k = vecadd_kernel(4)
        grid = list(default_config_grid(k))
        assert all(c.unroll <= 4 for c in grid)
        assert grid  # non-empty


class TestInitiationInterval:
    def setup_method(self):
        self.est = HlsEstimator()

    def test_parallel_kernel_reaches_ii1(self):
        k = vecadd_kernel()
        cfg = HlsConfig(pipeline=True, unroll=1, partition={"a": 1, "b": 1, "c": 1})
        assert self.est.initiation_interval(k, cfg) == 1

    def test_recurrence_bounds_ii(self):
        k = matmul_kernel()
        cfg = HlsConfig(pipeline=True, partition={a.name: 8 for a in k.arrays})
        # recurrence (1, 3) -> II >= 3 regardless of ports
        assert self.est.initiation_interval(k, cfg) == 3

    def test_memory_ports_bound_ii(self):
        k = vecadd_kernel()
        # unroll 8 with no partitioning: 8 accesses on 2 ports -> II 4
        cfg = HlsConfig(pipeline=True, unroll=8)
        assert self.est.initiation_interval(k, cfg) == 4

    def test_partitioning_relieves_port_pressure(self):
        k = vecadd_kernel()
        base = HlsConfig(pipeline=True, unroll=8)
        parted = HlsConfig(pipeline=True, unroll=8, partition={a.name: 4 for a in k.arrays})
        assert self.est.initiation_interval(k, parted) < self.est.initiation_interval(k, base)

    def test_no_pipeline_ii_is_depth(self):
        k = saxpy_kernel()
        cfg = HlsConfig(pipeline=False)
        assert self.est.initiation_interval(k, cfg) == self.est.pipeline_depth(k, cfg)


class TestResourcesAndTiming:
    def setup_method(self):
        self.est = HlsEstimator()

    def test_unroll_scales_datapath(self):
        k = saxpy_kernel()
        r1 = self.est.resources(k, HlsConfig(unroll=1))
        r4 = self.est.resources(k, HlsConfig(unroll=4))
        assert r4.dsps > r1.dsps
        assert r4.luts > r1.luts

    def test_partition_scales_brams(self):
        # small arrays: every extra bank costs a whole (underfilled) BRAM
        k = saxpy_kernel(64)
        r1 = self.est.resources(k, HlsConfig())
        r8 = self.est.resources(k, HlsConfig(partition={"x": 8, "y": 8}))
        assert r8.brams > r1.brams

    def test_clock_degrades_with_width(self):
        k = saxpy_kernel()
        c1 = self.est.clock_ns(k, HlsConfig(unroll=1))
        c16 = self.est.clock_ns(k, HlsConfig(unroll=16))
        assert c16 > c1

    def test_estimate_latency_improves_with_unroll(self):
        k = vecadd_kernel()
        e1 = self.est.estimate(k, HlsConfig(unroll=1))
        e8 = self.est.estimate(
            k, HlsConfig(unroll=8, partition={a.name: 8 for a in k.arrays})
        )
        assert e8.latency_ns(4096) < e1.latency_ns(4096)

    def test_estimate_cycles_validation(self):
        k = vecadd_kernel()
        e = self.est.estimate(k, HlsConfig())
        with pytest.raises(ValueError):
            e.cycles(0)

    def test_pipelining_beats_sequential(self):
        k = montecarlo_kernel()
        pipe = self.est.estimate(k, HlsConfig(pipeline=True))
        seq = self.est.estimate(k, HlsConfig(pipeline=False))
        assert pipe.latency_ns(10000) < seq.latency_ns(10000)

    def test_throughput_matches_ii_and_lanes(self):
        k = vecadd_kernel()
        e = self.est.estimate(k, HlsConfig(unroll=2, duplicate=2,
                                           partition={a.name: 4 for a in k.arrays}))
        assert e.lanes == 4
        expected = 1000.0 * e.lanes / (e.initiation_interval * e.clock_ns)
        assert e.throughput_items_per_us() == pytest.approx(expected)


class TestSoftwareModel:
    def test_latency_scales_linearly(self):
        sw = SoftwareCostModel()
        k = saxpy_kernel()
        assert sw.latency_ns(k, 2000) == pytest.approx(2 * sw.latency_ns(k, 1000))

    def test_div_heavy_kernel_slower(self):
        sw = SoftwareCostModel()
        from repro.hls import ArrayArg, Kernel
        cheap = Kernel("cheap", (100,), {OpKind.ADD: 4})
        pricey = Kernel("pricey", (100,), {OpKind.DIV: 4})
        assert sw.latency_ns(pricey, 100) > sw.latency_ns(cheap, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwareCostModel(clock_ghz=0)
        sw = SoftwareCostModel()
        with pytest.raises(ValueError):
            sw.latency_ns(vecadd_kernel(), 0)

    def test_energy_positive(self):
        sw = SoftwareCostModel()
        assert sw.energy_pj(saxpy_kernel(), 1000) > 0

    def test_fpga_wins_on_compute_heavy_kernel(self):
        """The headline acceleration claim: a pipelined FPGA datapath beats
        one CPU core on a transcendental-heavy Monte-Carlo kernel."""
        est = HlsEstimator()
        sw = SoftwareCostModel()
        k = montecarlo_kernel()
        hw = est.estimate(k, HlsConfig(pipeline=True, unroll=2,
                                       partition={a.name: 4 for a in k.arrays}))
        n = 100_000
        assert hw.latency_ns(n) < sw.latency_ns(k, n)
