"""Checkpoint/restore across partition shapes.

A sharded checkpoint manifest has no partition axis: it is captured at a
global window boundary and keyed purely by node, so a snapshot taken at
4 partitions restores at 1 partition (and vice versa) with canonical
reports that are byte-identical to each other.
"""

import pytest

from repro.shard import (
    ShardError,
    capture_sharded_jobs,
    manifest_json,
    report_json,
    restore_sharded_jobs,
)

PAUSE_NS = 400_000.0


@pytest.fixture(scope="module")
def manifests():
    m1 = capture_sharded_jobs(
        PAUSE_NS, preset="mini", seed=0, num_nodes=4, partitions=1
    )
    m4 = capture_sharded_jobs(
        PAUSE_NS, preset="mini", seed=0, num_nodes=4, partitions=4
    )
    return m1, m4


def test_manifest_is_partition_invariant(manifests):
    m1, m4 = manifests
    assert manifest_json(m1) == manifest_json(m4)
    assert m1["schema"] == "repro-shard-ckpt/v1"
    assert set(m1["nodes"]) == {"0", "1", "2", "3"}


def test_manifest_captured_mid_run(manifests):
    m1, _ = manifests
    # the pause point is chosen mid-makespan: some progress, not all
    done = sum(
        len(job["completed"])
        for node in m1["nodes"].values()
        for job in node["jobs"]
    )
    total = sum(
        job["tasks"]
        for node in m1["nodes"].values()
        for job in node["jobs"]
    )
    assert 0 < done < total


def test_cross_shape_restore_is_byte_identical(manifests):
    m1, m4 = manifests
    restored_at_1 = restore_sharded_jobs(m4, partitions=1)
    restored_at_4 = restore_sharded_jobs(m1, partitions=4)
    assert report_json(restored_at_1) == report_json(restored_at_4)
    assert restored_at_1["restored"]
    assert restored_at_1["tasks_unrecovered"] == 0


def test_restore_rejects_foreign_manifests():
    with pytest.raises(ShardError):
        restore_sharded_jobs({"schema": "something-else/v1"})
    with pytest.raises(ShardError):
        capture_sharded_jobs(0.0)
