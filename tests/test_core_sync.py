"""Unit tests for UNIMEM synchronization primitives."""

import pytest

from repro.core import ComputeNode, ComputeNodeParams
from repro.core.sync import AtomicCell, UnimemBarrier, UnimemLock
from repro.sim import AllOf, Simulator, Timeout, spawn


def make_node(workers=4, intra_fanout=None):
    sim = Simulator()
    node = ComputeNode(
        sim, ComputeNodeParams(num_workers=workers, intra_fanout=intra_fanout)
    )
    return sim, node


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("v")


class TestAtomicCell:
    def test_fetch_add_returns_previous(self):
        sim, node = make_node()
        cell = AtomicCell(node, home_worker=0, initial=10)
        assert run(sim, cell.fetch_add(1, 5)) == 10
        assert cell.value == 15
        assert run(sim, cell.load(2)) == 15

    def test_cas_success_and_failure(self):
        sim, node = make_node()
        cell = AtomicCell(node, 0, initial=7)
        ok, seen = run(sim, cell.compare_and_swap(1, 7, 9))
        assert ok and seen == 7 and cell.value == 9
        ok, seen = run(sim, cell.compare_and_swap(1, 7, 11))
        assert not ok and seen == 9 and cell.value == 9

    def test_remote_op_costs_more_than_local(self):
        sim, node = make_node()
        cell = AtomicCell(node, home_worker=0)
        t0 = sim.now
        run(sim, cell.fetch_add(0, 1))  # local
        local = sim.now - t0
        t0 = sim.now
        run(sim, cell.fetch_add(3, 1))  # remote
        remote = sim.now - t0
        assert remote > local

    def test_cost_scales_with_hop_distance(self):
        sim, node = make_node(workers=8, intra_fanout=4)
        cell = AtomicCell(node, home_worker=0)
        t0 = sim.now
        run(sim, cell.fetch_add(1, 1))  # sibling (2 hops)
        near = sim.now - t0
        t0 = sim.now
        run(sim, cell.fetch_add(7, 1))  # cross-root (4 hops)
        far = sim.now - t0
        assert far > near

    def test_concurrent_increments_all_counted(self):
        sim, node = make_node()
        cell = AtomicCell(node, 0)

        def incr(worker):
            for _ in range(10):
                yield from cell.fetch_add(worker, 1)

        for w in range(4):
            spawn(sim, incr(w))
        sim.run()
        assert cell.value == 40
        assert cell.operations == 40

    def test_invalid_home_rejected(self):
        sim, node = make_node(2)
        with pytest.raises(ValueError):
            AtomicCell(node, home_worker=9)


class TestUnimemLock:
    def test_mutual_exclusion(self):
        sim, node = make_node()
        lock = UnimemLock(node, home_worker=0)
        in_section = []
        overlaps = []

        def contender(worker):
            yield from lock.acquire(worker)
            if in_section:
                overlaps.append(worker)
            in_section.append(worker)
            yield Timeout(500.0)
            in_section.remove(worker)
            yield from lock.release(worker)

        for w in range(4):
            spawn(sim, contender(w))
        sim.run()
        assert overlaps == []
        assert lock.acquisitions == 4
        assert not lock.held

    def test_contention_produces_spins(self):
        sim, node = make_node()
        lock = UnimemLock(node, 0)

        def contender(worker):
            yield from lock.acquire(worker)
            yield Timeout(1000.0)
            yield from lock.release(worker)

        for w in range(4):
            spawn(sim, contender(w))
        sim.run()
        assert lock.spins > 0

    def test_wrong_releaser_rejected(self):
        sim, node = make_node()
        lock = UnimemLock(node, 0)

        def bad():
            yield from lock.acquire(0)
            yield from lock.release(1)

        spawn(sim, bad())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_backoff_validation(self):
        sim, node = make_node()
        with pytest.raises(ValueError):
            UnimemLock(node, 0, backoff_ns=0)
        with pytest.raises(ValueError):
            UnimemLock(node, 0, backoff_ns=100, max_backoff_ns=10)


class TestUnimemBarrier:
    def test_nobody_passes_early(self):
        sim, node = make_node()
        barrier = UnimemBarrier(node, home_worker=0, parties=4)
        passed = []

        def party(worker, delay):
            yield Timeout(delay)
            generation = yield from barrier.arrive(worker)
            passed.append((worker, sim.now, generation))

        delays = [100.0, 2000.0, 300.0, 4000.0]
        for w, d in enumerate(delays):
            spawn(sim, party(w, d))
        sim.run()
        assert len(passed) == 4
        release_times = [t for _, t, _ in passed]
        # no one is released before the last arrival (t=4000)
        assert min(release_times) >= 4000.0
        assert all(g == 1 for _, _, g in passed)

    def test_barrier_reusable_across_generations(self):
        sim, node = make_node(2)
        barrier = UnimemBarrier(node, 0, parties=2)
        log = []

        def party(worker):
            for round_no in range(3):
                g = yield from barrier.arrive(worker)
                log.append((worker, round_no, g))

        spawn(sim, party(0))
        spawn(sim, party(1))
        sim.run()
        assert len(log) == 6
        assert barrier.generation == 3
        for worker, round_no, g in log:
            assert g == round_no + 1

    def test_single_party_barrier_trivial(self):
        sim, node = make_node(1)
        barrier = UnimemBarrier(node, 0, parties=1)
        assert run(sim, barrier.arrive(0)) == 1

    def test_validation(self):
        sim, node = make_node()
        with pytest.raises(ValueError):
            UnimemBarrier(node, 0, parties=0)
