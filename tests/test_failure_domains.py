"""Tests for correlated failure domains: the enclosure tree, one-event
subtree kills through the chaos controller, and the seeded per-tier
MTBF plan generator."""

import json

import pytest

from repro.chaos import (
    ChaosController,
    DomainChaosConfig,
    DomainTree,
    FailureDomain,
    TIERS,
    build_domain_tree,
)
from repro.core import ComputeNode, ComputeNodeParams
from repro.core.runtime import ExecutionEngine, FaultTolerancePolicy
from repro.presets import compiled_suite
from repro.sim import Simulator


@pytest.fixture(scope="module")
def compiled():
    return compiled_suite(max_variants=1)


def build_engine(compiled, workers=4, ft=None):
    registry, library = compiled
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    engine = ExecutionEngine(
        node, registry, library, use_daemon=False, fault_tolerance=ft
    )
    return sim, node, engine


# ----------------------------------------------------------------------
# the enclosure tree
# ----------------------------------------------------------------------
class TestDomainTree:
    def test_default_fanouts_eight_workers(self):
        tree = build_domain_tree(8)
        assert len(tree.domains("node")) == 8
        assert len(tree.domains("blade")) == 4
        assert len(tree.domains("rack")) == 2
        assert len(tree.domains("psu")) == 1
        assert tree.members("blade1") == [2, 3]
        assert tree.members("rack0") == [0, 1, 2, 3]
        assert tree.members("rack1") == [4, 5, 6, 7]
        assert tree.members("psu0") == list(range(8))

    def test_parent_chain(self):
        tree = build_domain_tree(8)
        assert tree.domain("node5").parent == "blade2"
        assert tree.domain("blade2").parent == "rack1"
        assert tree.domain("rack1").parent == "psu0"
        assert tree.domain("psu0").parent is None

    def test_trailing_groups_partial(self):
        tree = build_domain_tree(5)
        assert tree.members("blade2") == [4]        # half-populated blade
        assert tree.members("rack1") == [4]
        assert tree.members("psu0") == [0, 1, 2, 3, 4]

    def test_ordering_is_deterministic(self):
        tree = build_domain_tree(8)
        names = [d.name for d in tree.domains()]
        # leaf tier first, then by first member worker id
        assert names[:8] == [f"node{i}" for i in range(8)]
        assert names[8:12] == ["blade0", "blade1", "blade2", "blade3"]
        assert names[12:] == ["rack0", "rack1", "psu0"]

    def test_lookup_and_contains(self):
        tree = build_domain_tree(4)
        assert "rack0" in tree and "rack9" not in tree
        with pytest.raises(KeyError):
            tree.domain("rack9")
        assert len(tree) == 4 + 2 + 1 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build_domain_tree(0)
        with pytest.raises(ValueError):
            build_domain_tree(4, workers_per_blade=0)
        with pytest.raises(ValueError):
            FailureDomain("x", "shelf", (0,))
        with pytest.raises(ValueError):
            FailureDomain("x", "rack", ())
        with pytest.raises(ValueError):
            DomainTree([
                FailureDomain("a", "node", (0,)),
                FailureDomain("a", "node", (1,)),
            ])

    def test_to_dict_roundtrips_as_json(self):
        tree = build_domain_tree(4)
        text = json.dumps(tree.to_dict(), sort_keys=True)
        assert json.loads(text)["domains"][0]["name"] == "node0"


class TestDomainChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DomainChaosConfig(workers_per_blade=0)
        with pytest.raises(ValueError):
            DomainChaosConfig(rack_mtbf_ns=-1.0)
        with pytest.raises(ValueError):
            DomainChaosConfig(downtime_ns=0.0)
        with pytest.raises(ValueError):
            DomainChaosConfig(window_ns=(500.0, 100.0))
        with pytest.raises(ValueError):
            DomainChaosConfig(max_failures=-1)

    def test_mtbf_for_tier(self):
        config = DomainChaosConfig(rack_mtbf_ns=1e6)
        assert config.mtbf_for("rack") == 1e6
        for tier in ("node", "blade", "psu"):
            assert config.mtbf_for(tier) is None


# ----------------------------------------------------------------------
# correlated kills through the controller
# ----------------------------------------------------------------------
class TestFailDomain:
    def test_one_event_takes_down_the_whole_subtree(self, compiled):
        sim, node, engine = build_engine(
            compiled, workers=4, ft=FaultTolerancePolicy()
        )
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=0)
        fault = ctrl.fail_domain(engine, tree.domain("blade0"), at_ns=1_000.0)
        assert fault.layer == "domain" and fault.kind == "crash-stop"
        assert fault.params["workers"] == [0, 1]
        assert ctrl.arm() == 1               # ONE planned event, not two
        sim.run()
        assert engine.schedulers[0].crashed and engine.schedulers[1].crashed
        assert not engine.schedulers[2].crashed
        # both members produced failure records at the same instant
        crashed_at = {f.crashed_at for f in engine.supervisor.failures}
        assert crashed_at == {1_000.0}
        assert len(engine.supervisor.failures) == 2

    def test_transient_outage_heals_the_subtree_together(self, compiled):
        sim, node, engine = build_engine(
            compiled, workers=4, ft=FaultTolerancePolicy()
        )
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=0)
        ctrl.fail_domain(
            engine, tree.domain("blade1"), at_ns=1_000.0, downtime_ns=5_000.0
        )
        assert ctrl.arm() == 2               # outage + restore
        sim.run()
        assert not engine.schedulers[2].crashed
        assert not engine.schedulers[3].crashed
        for failure in engine.supervisor.failures:
            assert not failure.permanent
            assert failure.rejoined_at == 6_000.0

    def test_attached_gateway_browns_out_for_the_outage(self, compiled):
        sim, node, engine = build_engine(compiled, workers=4)
        tree = build_domain_tree(4)

        class GatewayStub:
            def __init__(self):
                self.calls = []

            def enter_brownout(self, reason):
                self.calls.append(("enter", reason))

            def exit_brownout(self):
                self.calls.append(("exit", None))

        gw = GatewayStub()
        ctrl = ChaosController(sim, seed=0)
        ctrl.attach_gateway(gw)
        ctrl.fail_domain(
            engine, tree.domain("rack0"), at_ns=500.0, downtime_ns=2_000.0
        )
        ctrl.arm()
        sim.run()
        assert gw.calls == [("enter", "domain:rack0"), ("exit", None)]


class TestScheduleDomainRandom:
    def _plan(self, compiled, seed, config):
        sim, node, engine = build_engine(
            compiled, workers=4, ft=FaultTolerancePolicy()
        )
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=seed)
        ctrl.schedule_domain_random(engine, tree, config=config)
        return ctrl

    def test_plan_is_seed_deterministic(self, compiled):
        config = DomainChaosConfig(
            blade_mtbf_ns=300_000.0, rack_mtbf_ns=800_000.0
        )
        a = self._plan(compiled, 42, config)
        b = self._plan(compiled, 42, config)
        assert a.plan_json() == b.plan_json()
        assert a.faults_planned > 0

    def test_different_seed_different_plan(self, compiled):
        config = DomainChaosConfig(blade_mtbf_ns=200_000.0)
        a = self._plan(compiled, 1, config)
        b = self._plan(compiled, 2, config)
        assert a.plan_json() != b.plan_json()

    def test_tiers_without_mtbf_never_fail(self, compiled):
        config = DomainChaosConfig(blade_mtbf_ns=100_000.0)
        ctrl = self._plan(compiled, 3, config)
        assert all(f.params["tier"] == "blade" for f in ctrl.plan)

    def test_max_failures_caps_the_plan(self, compiled):
        config = DomainChaosConfig(
            node_mtbf_ns=50_000.0, blade_mtbf_ns=50_000.0, max_failures=2
        )
        ctrl = self._plan(compiled, 5, config)
        # transient plans carry a restore event per fault
        outages = [f for f in ctrl.plan if f.kind != "restore"]
        assert len(outages) <= 2

    def test_permanent_plan_never_kills_the_last_survivor(self, compiled):
        # tiny MTBFs everywhere + permanent faults: the generator must
        # drop candidates that would flatten the whole machine
        config = DomainChaosConfig(
            node_mtbf_ns=10_000.0,
            blade_mtbf_ns=10_000.0,
            rack_mtbf_ns=10_000.0,
            psu_mtbf_ns=10_000.0,
            downtime_ns=None,
            max_failures=50,
            window_ns=(0.0, 10_000_000.0),
        )
        ctrl = self._plan(compiled, 7, config)
        dead = set()
        for f in ctrl.plan:
            dead |= set(f.params["workers"])
        assert len(dead) < 4
