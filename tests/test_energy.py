"""Unit tests for energy accounting and the exascale extrapolation."""

import pytest

from repro.energy import (
    GREEN500_2015_LEADER,
    TIANHE2,
    EnergyLedger,
    ReferenceSystem,
    efficiency_required_for,
    extrapolate_power_mw,
)
from repro.energy.exascale import EXAFLOP, speedup_needed


class TestLedger:
    def test_add_and_total(self):
        led = EnergyLedger()
        led.add("w0.cpu", 100.0)
        led.add("w0.fabric", 50.0)
        led.add("net.l1", 25.0)
        assert led.total_pj() == 175.0
        assert led.total_pj("w0") == 150.0
        assert led.total_pj("w0.cpu") == 100.0
        assert led.total_pj("w") == 0.0  # prefix is path-component based

    def test_negative_rejected(self):
        led = EnergyLedger()
        with pytest.raises(ValueError):
            led.add("x", -1.0)

    def test_breakdown(self):
        led = EnergyLedger()
        led.add("w0.cpu", 1.0)
        led.add("w0.fabric", 2.0)
        led.add("net", 3.0)
        b = led.breakdown(depth=1)
        assert b == {"w0": 3.0, "net": 3.0}
        with pytest.raises(ValueError):
            led.breakdown(0)

    def test_merge_and_reset(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total_pj() == 6.0
        a.reset()
        assert a.total_pj() == 0.0

    def test_joules_and_power(self):
        led = EnergyLedger()
        led.add("x", 1e12)  # 1 J
        assert led.total_joules() == pytest.approx(1.0)
        assert led.mean_power_mw(1e9) == pytest.approx(1000.0)  # 1J/1s = 1W
        with pytest.raises(ValueError):
            led.mean_power_mw(0)


class TestExascale:
    def test_tianhe2_lands_near_one_gigawatt(self):
        """The paper's headline Section 1 number."""
        power = extrapolate_power_mw(TIANHE2)
        assert 700 <= power <= 1300  # ~1 GW

    def test_green500_smaller_but_similar_order(self):
        """'Similar, albeit smaller, figures ... even the best system of
        the Green 500 list.'"""
        tianhe = extrapolate_power_mw(TIANHE2)
        green = extrapolate_power_mw(GREEN500_2015_LEADER)
        assert green < tianhe
        assert green > 100  # still an infeasible facility

    def test_linear_extrapolation_without_overhead(self):
        ref = ReferenceSystem("r", 1e15, 10.0)
        power = extrapolate_power_mw(
            ref, 1e18, scaling_overhead_exponent=1.0, include_cooling=False
        )
        assert power == pytest.approx(10_000.0)

    def test_cooling_toggle(self):
        with_c = extrapolate_power_mw(TIANHE2, include_cooling=True)
        without = extrapolate_power_mw(TIANHE2, include_cooling=False)
        assert with_c > without

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceSystem("bad", 0, 1)
        with pytest.raises(ValueError):
            ReferenceSystem("bad", 1, 1, cooling_overhead=0.5)
        with pytest.raises(ValueError):
            extrapolate_power_mw(TIANHE2, target_flops=0)
        with pytest.raises(ValueError):
            extrapolate_power_mw(TIANHE2, scaling_overhead_exponent=0.9)

    def test_efficiency_required(self):
        assert efficiency_required_for(EXAFLOP, 20.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            efficiency_required_for(0)

    def test_speedup_needed_order_of_magnitude(self):
        # paper: "a 1000x increase in today's concurrency"
        assert 10 <= speedup_needed(TIANHE2) <= 100
        assert speedup_needed(GREEN500_2015_LEADER) > 1000

    def test_gflops_per_watt(self):
        assert TIANHE2.gflops_per_watt == pytest.approx(1.9, rel=0.05)
