"""Unit tests for the DMA engine."""

import pytest

from repro.interconnect import DmaEngine, DmaParams, build_tree
from repro.sim import Simulator, spawn


def setup(channels=2, **kw):
    sim = Simulator()
    net, workers = build_tree(sim, [4])
    dma = DmaEngine(sim, net, DmaParams(channels=channels, **kw))
    return sim, net, workers, dma


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out["v"]


def test_params_validation():
    with pytest.raises(ValueError):
        DmaParams(setup_ns=-1)
    with pytest.raises(ValueError):
        DmaParams(channels=0)
    with pytest.raises(ValueError):
        DmaParams(max_transfer_bytes=0)


def test_descriptor_count():
    _, _, _, dma = setup(max_transfer_bytes=1000)
    assert dma.descriptors_for(1) == 1
    assert dma.descriptors_for(1000) == 1
    assert dma.descriptors_for(1001) == 2
    with pytest.raises(ValueError):
        dma.descriptors_for(0)


def test_transfer_latency_matches_analytic():
    sim, net, workers, dma = setup()
    rec = run(sim, dma.transfer(workers[0], workers[1], 4096))
    assert rec.latency_ns == pytest.approx(dma.cost_ns(workers[0], workers[1], 4096))
    assert rec.descriptors == 1
    assert dma.bytes_moved == 4096


def test_setup_cost_dominates_small_transfers():
    sim, net, workers, dma = setup()
    small = dma.cost_ns(workers[0], workers[1], 8)
    assert small > dma.params.setup_ns  # fixed cost floors the latency
    big = dma.cost_ns(workers[0], workers[1], 1 << 20)
    assert big / (1 << 20) < small / 8  # per-byte cost collapses for bulk


def test_large_transfer_splits_into_descriptors():
    sim, net, workers, dma = setup(max_transfer_bytes=1024)
    rec = run(sim, dma.transfer(workers[0], workers[1], 4096))
    assert rec.descriptors == 4


def test_channel_limit_serializes():
    sim, net, workers, dma = setup(channels=1)
    done = []

    def job():
        yield from dma.transfer(workers[0], workers[1], 1 << 16)
        done.append(sim.now)

    spawn(sim, job())
    spawn(sim, job())
    sim.run()
    assert done[1] >= 2 * done[0] * 0.9  # second waits for the channel


def test_mean_latency():
    sim, net, workers, dma = setup()
    assert dma.mean_latency_ns == 0.0
    run(sim, dma.transfer(workers[0], workers[1], 1024))
    assert dma.mean_latency_ns > 0
