"""Unit tests for design-space exploration and end-to-end synthesis."""

import pytest

from repro.fabric import ModuleLibrary, ResourceVector, TileGrid
from repro.hls import (
    DesignSpaceExplorer,
    HlsConfig,
    HlsTool,
    SynthesisConstraints,
    matmul_kernel,
    pareto_front,
    saxpy_kernel,
    vecadd_kernel,
)


class TestExplorer:
    def test_explore_covers_grid(self):
        dse = DesignSpaceExplorer()
        points = dse.explore(vecadd_kernel(64))
        assert len(points) > 10
        labels = {p.config.label() for p in points}
        assert len(labels) == len(points)  # dedup worked

    def test_area_budget_filters(self):
        dse = DesignSpaceExplorer()
        tight = ResourceVector(luts=2000, ffs=4000, brams=64, dsps=8)
        all_points = dse.explore(saxpy_kernel(64))
        tight_points = dse.explore(saxpy_kernel(64), area_budget=tight)
        assert 0 < len(tight_points) < len(all_points)
        for p in tight_points:
            assert p.estimate.resources.fits_in(tight)

    def test_front_is_nondominated(self):
        dse = DesignSpaceExplorer()
        front = dse.front(vecadd_kernel(64))
        assert front
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not a.dominates(b)

    def test_front_sorted_by_area_and_tradeoff_real(self):
        dse = DesignSpaceExplorer()
        front = dse.front(matmul_kernel(16))
        areas = [p.area for p in front]
        assert areas == sorted(areas)
        if len(front) > 1:
            # more area must buy more throughput along the front
            assert front[-1].throughput > front[0].throughput

    def test_best_under_constraints_fastest_fitting(self):
        dse = DesignSpaceExplorer()
        budget = ResourceVector(luts=10**6, ffs=10**6, brams=10**4, dsps=10**4)
        best = dse.best_under_constraints(vecadd_kernel(64), budget)
        assert best is not None
        points = dse.explore(vecadd_kernel(64), area_budget=budget)
        fastest = min(p.estimate.latency_ns(4096) for p in points)
        assert best.estimate.latency_ns(4096) == pytest.approx(fastest)

    def test_best_under_latency_target_minimizes_area(self):
        dse = DesignSpaceExplorer()
        budget = ResourceVector(luts=10**6, ffs=10**6, brams=10**4, dsps=10**4)
        loose_target = 10**9  # everything meets it
        best = dse.best_under_constraints(
            vecadd_kernel(64), budget, target_latency_ns=loose_target
        )
        points = dse.explore(vecadd_kernel(64), area_budget=budget)
        assert best.area == pytest.approx(min(p.area for p in points))

    def test_best_none_when_budget_impossible(self):
        dse = DesignSpaceExplorer()
        nothing = ResourceVector()
        assert dse.best_under_constraints(vecadd_kernel(64), nothing) is None

    def test_pareto_front_empty(self):
        assert pareto_front([]) == []


class TestHlsTool:
    def test_compile_registers_variants(self):
        tool = HlsTool(TileGrid.standard(60, 50))
        lib = ModuleLibrary()
        report = tool.compile(vecadd_kernel(64), lib, SynthesisConstraints(max_variants=3))
        assert report.explored > 0
        assert report.front_size > 0
        assert 1 <= len(report.modules) <= 3
        assert "vecadd" in lib
        assert len(lib.variants("vecadd")) == len(report.modules)

    def test_variants_span_tradeoff(self):
        tool = HlsTool(TileGrid.standard(60, 50))
        lib = ModuleLibrary()
        tool.compile(matmul_kernel(16), lib, SynthesisConstraints(max_variants=3))
        variants = lib.variants("matmul")
        if len(variants) >= 2:
            areas = [v.resources.area_units() for v in variants]
            assert max(areas) > min(areas)

    def test_modules_have_plausible_timing(self):
        tool = HlsTool()
        lib = ModuleLibrary()
        tool.compile(saxpy_kernel(64), lib)
        for v in lib.variants("saxpy"):
            assert v.latency_ns(1000) > 0
            assert v.bitstream.size_bytes > 0
            assert v.initiation_interval >= 1

    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            SynthesisConstraints(max_variants=0)
        with pytest.raises(ValueError):
            SynthesisConstraints(items_hint=0)

    def test_bitstream_frames_track_area(self):
        """Bigger variants occupy wider bounding boxes -> more frames ->
        bigger bitstreams (the floorplanner/compression coupling)."""
        tool = HlsTool(TileGrid.standard(60, 50))
        lib = ModuleLibrary()
        tool.compile(matmul_kernel(16), lib, SynthesisConstraints(max_variants=3))
        variants = sorted(lib.variants("matmul"), key=lambda v: v.resources.area_units())
        if len(variants) >= 2:
            assert variants[0].bitstream.frames <= variants[-1].bitstream.frames
