"""Regression tests for the daemon's decayed hotness + cold eviction.

The original daemon summed raw call counts over a trailing window and
never decayed them across control periods, so a function that was hot
once kept its fabric region forever.  These tests pin the fixed
behaviour: hotness decays every period, stale-hot functions are evicted
with hysteresis, and the blanked regions are reused for the currently
hot work -- including while multiple JobManager jobs run concurrently.
"""

import pytest

from repro.core import ComputeNode, ComputeNodeParams, UnilogicDomain
from repro.core.runtime import (
    ExecutionEngine,
    ExecutionHistory,
    JobManager,
    ReconfigurationDaemon,
)
from repro.apps import make_layered_dag
from repro.presets import compiled_suite
from repro.sim import Simulator, Timeout, spawn

PERIOD = 100_000.0


@pytest.fixture(scope="module")
def compiled():
    # max_variants=2 keeps hardware decisively faster than software, so
    # every suite kernel is a genuine acceleration candidate
    return compiled_suite(max_variants=2)


def make_daemon(compiled, workers=2, **kw):
    registry, library = compiled
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    history = ExecutionHistory()
    kw.setdefault("period_ns", PERIOD)
    kw.setdefault("window_ns", 2 * PERIOD)
    kw.setdefault("decay", 0.5)
    kw.setdefault("evict_hotness", 1.0)
    kw.setdefault("evict_after_periods", 2)
    daemon = ReconfigurationDaemon(
        node, UnilogicDomain(node), library, registry, history, **kw
    )
    return sim, node, history, daemon


def seed_calls(history, function, n, latency_ns=1e6, timestamp=0.0):
    for _ in range(n):
        history.record(function=function, device="sw", worker=0, items=1024,
                       latency_ns=latency_ns, energy_pj=1e6,
                       timestamp=timestamp)


def loaded(node):
    out = set()
    for w in node.workers:
        out.update(w.fabric.loaded_functions())
    return out


class TestHotnessDecay:
    def test_param_validation(self, compiled):
        with pytest.raises(ValueError):
            make_daemon(compiled, decay=1.0)
        with pytest.raises(ValueError):
            make_daemon(compiled, decay=-0.1)
        with pytest.raises(ValueError):
            make_daemon(compiled, evict_after_periods=0)

    def test_hotness_decays_across_quiet_periods(self, compiled):
        """Regression: raw window counts never decayed, so a gone-quiet
        function kept its rank forever.  Scores must shrink period over
        period once the traffic stops."""
        sim, node, history, daemon = make_daemon(compiled)
        seed_calls(history, "montecarlo", 16)
        track = []

        def driver():
            for _ in range(4):
                yield Timeout(PERIOD)
                yield from daemon.evaluate()
                track.append(daemon.hotness.get("montecarlo", 0.0))

        spawn(sim, driver())
        sim.run()
        assert track[0] == pytest.approx(16.0)
        for prev, cur in zip(track, track[1:]):
            assert cur < prev
        assert track[-1] == pytest.approx(16.0 * 0.5 ** 3)

    def test_refresh_idempotent_at_one_instant(self, compiled):
        sim, node, history, daemon = make_daemon(compiled)
        seed_calls(history, "montecarlo", 8)
        daemon.rank_candidates()
        daemon.rank_candidates()   # same instant: must not double count
        assert daemon.hotness["montecarlo"] == pytest.approx(8.0)

    def test_fresh_traffic_tops_hotness_up(self, compiled):
        sim, node, history, daemon = make_daemon(compiled)
        seed_calls(history, "montecarlo", 8)
        done = []

        def driver():
            yield Timeout(PERIOD)
            yield from daemon.evaluate()          # 8.0
            seed_calls(history, "montecarlo", 4, timestamp=sim.now)
            yield Timeout(PERIOD)
            yield from daemon.evaluate()          # 8*0.5 + 4
            done.append(daemon.hotness["montecarlo"])

        spawn(sim, driver())
        sim.run()
        assert done[0] == pytest.approx(8.0 * 0.5 + 4.0)


class TestColdEviction:
    def run_quiet_periods(self, compiled, periods, **kw):
        sim, node, history, daemon = make_daemon(compiled, **kw)
        seed_calls(history, "montecarlo", 16)
        timeline = []

        def driver():
            for _ in range(periods):
                yield Timeout(PERIOD)
                yield from daemon.evaluate()
                timeline.append(("montecarlo" in loaded(node),
                                 daemon.stats.evictions))

        spawn(sim, driver())
        sim.run()
        return node, daemon, timeline

    def test_stale_hot_function_is_evicted(self, compiled):
        node, daemon, timeline = self.run_quiet_periods(compiled, periods=8)
        assert timeline[0][0]                      # loaded on first period
        assert daemon.stats.evictions == 1
        assert daemon.stats.functions_evicted == ["montecarlo"]
        assert "montecarlo" not in loaded(node)    # region blanked

    def test_one_cold_period_is_not_enough(self, compiled):
        """Hysteresis: the cold streak must reach evict_after_periods."""
        node, daemon, timeline = self.run_quiet_periods(
            compiled, periods=12, evict_after_periods=4
        )
        # count periods where it was still loaded after going cold once
        evict_period = next(
            (i for i, (_, ev) in enumerate(timeline) if ev), None
        )
        assert evict_period is not None
        # with a longer streak requirement the eviction lands later than
        # it would at the default streak of 2
        _, _, fast = self.run_quiet_periods(compiled, periods=8)
        fast_period = next(i for i, (_, ev) in enumerate(fast) if ev)
        assert evict_period > fast_period

    def test_busy_function_is_never_evicted(self, compiled):
        sim, node, history, daemon = make_daemon(compiled)
        seed_calls(history, "montecarlo", 16)

        def driver():
            for _ in range(8):
                yield Timeout(PERIOD)
                yield from daemon.evaluate()
                # steady traffic keeps the score above evict_hotness
                seed_calls(history, "montecarlo", 8, timestamp=sim.now)
                for w in node.workers:
                    for r in w.fabric.regions:
                        if r.function == "montecarlo":
                            r.last_used_at = sim.now

        spawn(sim, driver())
        sim.run()
        assert daemon.stats.evictions == 0
        assert "montecarlo" in loaded(node)


class TestEvictionWithConcurrentJobs:
    def test_regions_are_recycled_between_job_waves(self, compiled):
        """Two concurrent montecarlo jobs make it hot; after a quiet gap
        the daemon evicts it, and a second wave of concurrent saxpy jobs
        gets the freed fabric -- the elastic reuse story end to end."""
        registry, library = compiled
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        engine = ExecutionEngine(node, registry, library, use_daemon=False)
        daemon = ReconfigurationDaemon(
            node, engine.unilogic, library, registry, engine.history,
            period_ns=PERIOD, window_ns=2 * PERIOD,
            decay=0.5, evict_hotness=1.0, evict_after_periods=2,
        )
        manager = JobManager(engine, fair_share=False, auto_stop=False)
        engine.start()
        spawn(sim, daemon.run(), name="daemon")

        def graph(functions, seed):
            return make_layered_dag(layers=3, width=4, num_workers=2,
                                    functions=functions, seed=seed)

        state = {}

        def driver():
            wave1 = [manager.submit_job(graph(("montecarlo",), s))
                     for s in (1, 2)]
            for h in wave1:
                yield h.done
            state["after_wave1"] = set(loaded(node))
            for _ in range(8):                   # quiet gap: cool + evict
                yield Timeout(PERIOD)
            state["after_gap"] = set(loaded(node))
            wave2 = [manager.submit_job(graph(("saxpy",), s))
                     for s in (3, 4)]
            for h in wave2:
                yield h.done
            for _ in range(2):                   # let the daemon observe
                yield Timeout(PERIOD)
            state["after_wave2"] = set(loaded(node))
            daemon.stop()
            engine.stop()

        spawn(sim, driver(), name="driver")
        sim.run()

        assert "montecarlo" in state["after_wave1"]
        assert "montecarlo" not in state["after_gap"]     # evicted cold
        assert "montecarlo" in daemon.stats.functions_evicted
        assert "saxpy" in state["after_wave2"]            # fabric reused
        assert daemon.stats.evictions >= 1
        assert daemon.stats.loads_triggered >= 2
        # both waves fully completed despite the reshaping fabric
        assert len(engine.history) == 4 * 3 * 4
