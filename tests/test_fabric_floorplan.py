"""Unit tests for the GoAhead-style floorplanner."""

import pytest

from repro.fabric import Floorplanner, Placement, ResourceVector, TileGrid
from repro.fabric.floorplan import FRAMES_PER_COLUMN


def test_grid_validation():
    with pytest.raises(ValueError):
        TileGrid(("clb",), rows=0)
    with pytest.raises(ValueError):
        TileGrid((), rows=5)
    with pytest.raises(ValueError):
        TileGrid(("weird",), rows=5)


def test_standard_grid_has_all_column_types():
    grid = TileGrid.standard(60, 50)
    assert set(grid.columns) == {"clb", "bram", "dsp"}
    total = grid.total_resources
    assert total.luts > 0 and total.brams > 0 and total.dsps > 0


def test_span_resources_additive():
    grid = TileGrid.standard(10, 10)
    full = grid.span_resources(0, 10)
    left = grid.span_resources(0, 5)
    right = grid.span_resources(5, 5)
    assert left + right == full


def test_smallest_span_minimizes_width():
    grid = TileGrid.standard(30, 50)
    fp = Floorplanner(grid)
    tiny = ResourceVector(luts=8)
    p = fp.smallest_span(tiny)
    assert p is not None
    assert p.width == 1


def test_smallest_span_grows_for_bram_demand():
    grid = TileGrid.standard(30, 10)
    fp = Floorplanner(grid)
    # needs a BRAM column: a 1-wide CLB span can't serve it
    p = fp.smallest_span(ResourceVector(luts=8, brams=2))
    assert p is not None
    types = {grid.columns[i] for i in range(p.start_column, p.start_column + p.width)}
    assert "bram" in types


def test_smallest_span_respects_forbidden():
    grid = TileGrid.standard(10, 10)
    fp = Floorplanner(grid)
    first = fp.smallest_span(ResourceVector(luts=8))
    second = fp.smallest_span(ResourceVector(luts=8), forbidden=[first])
    assert second is not None
    assert not first.overlaps(second)


def test_smallest_span_none_when_too_big():
    grid = TileGrid.standard(5, 5)
    fp = Floorplanner(grid)
    assert fp.smallest_span(ResourceVector(luts=10**9)) is None


def test_placement_frames():
    p = Placement(0, 3, ResourceVector())
    assert p.frames == 3 * FRAMES_PER_COLUMN


def test_placement_overlap():
    a = Placement(0, 3, ResourceVector())
    b = Placement(2, 2, ResourceVector())
    c = Placement(3, 2, ResourceVector())
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_budget_regions_partition_grid():
    grid = TileGrid.standard(20, 10)
    fp = Floorplanner(grid)
    regions = fp.budget_regions(3)
    assert len(regions) == 3
    assert sum(r.width for r in regions) == 20
    for i in range(len(regions) - 1):
        assert regions[i].start_column + regions[i].width == regions[i + 1].start_column


def test_budget_regions_validation():
    fp = Floorplanner(TileGrid.standard(4, 4))
    with pytest.raises(ValueError):
        fp.budget_regions(0)
    with pytest.raises(ValueError):
        fp.budget_regions(10)


def test_fill_fraction():
    grid = TileGrid.standard(10, 10)
    fp = Floorplanner(grid)
    p = fp.budget_regions(1)[0]
    half = ResourceVector(luts=p.resources.luts // 2)
    assert 0.4 < fp.fill_fraction(half, p) <= 0.5
    assert fp.fill_fraction(p.resources, p) == 1.0


def test_minimized_boxes_mean_fewer_frames():
    """The floorplanner's raison d'etre: tighter boxes -> fewer frames ->
    smaller bitstreams (Section 4.3)."""
    grid = TileGrid.standard(40, 50)
    fp = Floorplanner(grid)
    demand = ResourceVector(luts=100, ffs=200)
    minimal = fp.smallest_span(demand)
    whole = Placement(0, 40, grid.total_resources)
    assert minimal.frames < whole.frames
