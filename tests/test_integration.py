"""Integration tests: full-stack scenarios crossing package boundaries."""

import numpy as np
import pytest

from repro.apps import jacobi_reference, jacobi_step, make_layered_dag
from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    FunctionRegistry,
    Machine,
    MachineParams,
    UnilogicDomain,
)
from repro.core.middleware import PartialReconfigDriver
from repro.core.runtime import (
    CallProfile,
    DeviceSelector,
    ExecutionEngine,
    ModelActuator,
)
from repro.fabric import ModuleLibrary
from repro.hls import (
    HlsTool,
    SynthesisConstraints,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
)
from repro.memory import AddressRange
from repro.mpi import CartTopology, place_by_blocks, placement_cost
from repro.opencl import (
    CommandQueue,
    Context,
    DataScope,
    DeviceType,
    Platform,
    Program,
)
from repro.pgas import MigrationPolicy
from repro.sim import Simulator, spawn


class TestOpenclStencilPipeline:
    """A real two-sweep Jacobi through buffers, kernels and migration."""

    def test_stencil_results_exact_and_traffic_accounted(self):
        n = 32
        plat = Platform(ComputeNode(Simulator(), ComputeNodeParams(num_workers=4)))
        ctx = Context(plat)
        prog = Program([stencil_kernel(n * n)])

        def sweep(grid_in, grid_out):
            g = grid_in.array.reshape(n, n)
            grid_out.array[:] = jacobi_step(g).ravel()

        prog.set_host_impl("stencil5", sweep)

        grid_a = ctx.create_buffer(8 * n * n, affinity_worker=0, dtype=np.float64)
        grid_b = ctx.create_buffer(8 * n * n, affinity_worker=1, dtype=np.float64)
        init = np.zeros((n, n))
        init[0, :] = 100.0
        grid_a.array[:] = init.ravel()

        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        k = prog.kernel("stencil5")
        q.enqueue_nd_range(k.set_args(grid_a, grid_b), n * n)
        # second sweep runs where grid_b lives after migrating its home
        q.enqueue_migrate(grid_b, 0)
        q.enqueue_nd_range(k.set_args(grid_b, grid_a), n * n)
        q.finish()

        expected = jacobi_reference(n, 2)
        np.testing.assert_allclose(grid_a.array.reshape(n, n), expected)
        assert grid_b.cacheable_owner == 0
        # grid_b lives on worker 1: its pages were accessed remotely
        assert plat.node.unimem.remote_bytes > 0


class TestRuntimeWithActuation:
    """Engine run -> history -> actuator -> projections match reality."""

    def test_actuator_projections_match_history(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
        registry = FunctionRegistry()
        library = ModuleLibrary()
        tool = HlsTool()
        for k in (saxpy_kernel(1024), montecarlo_kernel(1024, 8)):
            registry.register(k)
            tool.compile(k, library, SynthesisConstraints(max_variants=1))
        engine = ExecutionEngine(
            node, registry, library, use_daemon=True, daemon_period_ns=50_000.0
        )
        graph = make_layered_dag(
            layers=10, width=10, num_workers=4,
            functions=("saxpy", "montecarlo"), seed=17,
        )
        report = engine.run_graph(graph)
        assert report.hw_calls > 0  # daemon did its job

        actuator = ModelActuator(engine.history, retrain_every=1)
        actuator.observe(CallProfile("saxpy", 1000))
        recs = engine.history.records("saxpy", "sw")
        if len(recs) >= 5:
            mid = recs[len(recs) // 2]
            proj = actuator.project("saxpy", mid.items)
            assert proj.sw_latency_ns == pytest.approx(mid.latency_ns, rel=0.5)


class TestMachineLevelPlacement:
    """MPI topology placement + intra-node engine on one machine."""

    def test_placed_halo_cheaper_than_scattered(self):
        machine = Machine(
            Simulator(),
            MachineParams(
                num_nodes=4,
                node=ComputeNodeParams(num_workers=4),
                inter_node_fanouts=[4],
            ),
        )
        topo = CartTopology((2, 2))
        placed = place_by_blocks(4, machine.node_endpoints)
        scattered = {0: machine.node_endpoints[0], 1: machine.node_endpoints[2],
                     2: machine.node_endpoints[1], 3: machine.node_endpoints[3]}
        c_placed = placement_cost(topo, placed, machine.inter_network, 1024)
        c_scattered = placement_cost(topo, scattered, machine.inter_network, 1024)
        assert c_placed <= c_scattered

    def test_world_collectives_and_node_engines_compose(self):
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=2)),
        )
        # inter-node phase
        r = machine.world.allreduce(4096)
        assert r.latency_ns > 0
        # intra-node phase on node 0 shares the same simulator
        registry = FunctionRegistry()
        registry.register(saxpy_kernel(1024))
        engine = ExecutionEngine(
            machine.node(0), registry, use_daemon=False, allow_hardware=False
        )
        graph = make_layered_dag(3, 4, 2, functions=("saxpy",), seed=2)
        report = engine.run_graph(graph)
        assert report.tasks == 12
        assert machine.total_energy_pj() > 0


class TestMiddlewareLifecycle:
    """HLS -> load -> preempt -> resume -> invoke, end to end."""

    def test_preemption_roundtrip_preserves_service(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        unilogic = UnilogicDomain(node)
        library = ModuleLibrary()
        tool = HlsTool()
        tool.compile(saxpy_kernel(1024), library, SynthesisConstraints(max_variants=1))
        tool.compile(stencil_kernel(1024), library, SynthesisConstraints(max_variants=1))
        saxpy = library.best_variant("saxpy")
        worker = node.worker(0)
        capacity = worker.fabric.regions[0].capacity
        stencil = library.best_variant("stencil5", capacity=capacity)
        driver = PartialReconfigDriver(worker)
        log = {}

        def flow():
            region = yield from driver.ensure_loaded(saxpy)
            yield from unilogic.invoke("saxpy", 1, 512)
            # urgent stencil work preempts saxpy's region
            yield from driver.preempt(region)
            yield from driver.ensure_loaded(stencil)
            yield from unilogic.invoke("stencil5", 0, 512)
            # resume saxpy (second region is free)
            resumed = yield from driver.resume(saxpy.name)
            log["resumed"] = resumed
            yield from unilogic.invoke("saxpy", 1, 512)

        spawn(sim, flow())
        sim.run()
        assert log["resumed"] is not None
        functions = {inv.function for inv in unilogic.invocations}
        assert functions == {"saxpy", "stencil5"}
        assert driver.preemptions == 1


class TestMigrationClosesTheLoop:
    """UNIMEM access records feed the policy; migration changes costs."""

    def test_hot_page_migration_reduces_remote_traffic(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
        policy = MigrationPolicy(node.unimem, min_accesses=8)
        addr = node.unimem.map.global_address(0, 0)
        rng = AddressRange(addr, 64)

        def hammer(times):
            for _ in range(times):
                yield from node.remote_access(3, rng, is_write=False)
                policy.record(3, addr, 64, False)

        spawn(sim, hammer(10))
        sim.run()
        before = node.unimem.remote_accesses
        migrated, _ = policy.step()
        assert migrated == 1
        # after migration, worker 3 may cache the page
        plan = node.unimem.plan_access(3, rng, False)
        assert plan.chunks[0][2] is True
