"""Unit + property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheGeometry


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheGeometry(size_bytes=assoc * sets * line, line_bytes=line, associativity=assoc))


class TestGeometry:
    def test_num_sets(self):
        g = CacheGeometry(size_bytes=32 * 1024, line_bytes=64, associativity=4)
        assert g.num_sets == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0)
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, line_bytes=64, associativity=4)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        hit, wb = c.access(0)
        assert not hit and wb is None
        hit, wb = c.access(0)
        assert hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        c = small_cache(line=64)
        c.access(0)
        hit, _ = c.access(63)
        assert hit

    def test_lru_eviction(self):
        c = small_cache(assoc=2, sets=1, line=64)
        c.access(0)       # A
        c.access(64)      # B
        c.access(0)       # touch A -> B is LRU
        c.access(128)     # C evicts B
        assert c.access(0)[0] is True     # A still present
        assert c.access(64)[0] is False   # B was evicted

    def test_dirty_eviction_reports_writeback(self):
        c = small_cache(assoc=1, sets=1, line=64)
        c.access(0, is_write=True)
        hit, wb = c.access(64)
        assert not hit
        assert wb == 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(assoc=1, sets=1, line=64)
        c.access(0, is_write=False)
        _, wb = c.access(64)
        assert wb is None

    def test_disabled_cache_always_misses(self):
        c = small_cache()
        c.enabled = False
        for _ in range(5):
            hit, wb = c.access(0)
            assert not hit and wb is None
        assert c.stats.misses == 5
        assert c.occupancy == 0

    def test_touch_range_counts(self):
        c = small_cache(assoc=4, sets=4, line=64)
        hits, misses = c.touch_range(0, 256)
        assert (hits, misses) == (0, 4)
        hits, misses = c.touch_range(0, 256)
        assert (hits, misses) == (4, 0)

    def test_touch_range_empty(self):
        c = small_cache()
        assert c.touch_range(0, 0) == (0, 0)

    def test_invalidate(self):
        c = small_cache()
        c.access(0)
        assert c.invalidate(0)
        assert not c.invalidate(0)
        assert c.access(0)[0] is False

    def test_flush_reports_dirty_lines(self):
        c = small_cache(assoc=4, sets=4, line=64)
        c.access(0, is_write=True)
        c.access(64, is_write=True)
        c.access(128, is_write=False)
        assert c.flush() == 2
        assert c.occupancy == 0

    def test_flush_page(self):
        c = small_cache(assoc=4, sets=16, line=64)
        c.access(0, is_write=True)
        c.access(64, is_write=True)
        c.access(4096, is_write=True)  # other page
        dirty = c.flush_page(0, 4096)
        assert dirty == 2
        assert c.access(4096)[0] is True  # other page untouched

    def test_contents(self):
        c = small_cache()
        c.access(0, is_write=True)
        c.access(64)
        contents = c.contents()
        assert contents[0] is True
        assert contents[64] is False


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 1 << 16), st.booleans()), max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, trace):
        c = small_cache(assoc=2, sets=4)
        cap = c.geometry.num_sets * c.geometry.associativity
        for addr, w in trace:
            c.access(addr, w)
            assert c.occupancy <= cap

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_repeat_access_is_hit(self, addrs):
        c = Cache(CacheGeometry(size_bytes=1 << 20, line_bytes=64, associativity=16))
        for a in addrs:
            c.access(a)
        # cache is big enough to hold the whole footprint: all re-touches hit
        for a in addrs:
            hit, _ = c.access(a)
            assert hit

    @given(st.lists(st.tuples(st.integers(0, 1 << 16), st.booleans()), max_size=200))
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, trace):
        c = small_cache()
        for addr, w in trace:
            c.access(addr, w)
        assert c.stats.hits + c.stats.misses == len(trace)
