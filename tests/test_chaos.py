"""Tests for machine-wide fault injection and the self-healing runtime.

Covers the chaos controller (seeded fault plans, determinism), the
degraded interconnect/MPI paths, crash-stop and transient Worker
failures with heartbeat detection + retry, disabled parity, and the
end-to-end acceptance scenario (board preset: one Worker killed
mid-graph, one link degraded, zero unrecovered tasks).
"""

import random

import pytest

from repro.apps import make_layered_dag
from repro.chaos import (
    CHAOS_PRESETS,
    ChaosConfig,
    ChaosController,
    graph_signature,
    run_chaos_experiment,
    run_multi_job_chaos_experiment,
)
from repro.core import ComputeNode, ComputeNodeParams, Machine, MachineParams
from repro.core.runtime import (
    ClusterEngine,
    ExecutionEngine,
    FaultTolerancePolicy,
    JobManager,
)
from repro.interconnect import Link, LinkParams
from repro.interconnect.link import LinkFault
from repro.interconnect.network import Network
from repro.mpi.comm import Communicator, MessageFaults
from repro.presets import compiled_suite
from repro.sim import Simulator, spawn

FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


@pytest.fixture(scope="module")
def compiled():
    return compiled_suite(max_variants=1)


def build_engine(compiled, workers=2, ft=None, **kw):
    registry, library = compiled
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    engine = ExecutionEngine(
        node, registry, library, use_daemon=True, daemon_period_ns=100_000.0,
        fault_tolerance=ft, **kw,
    )
    return sim, node, engine


def graph_for(workers, layers=5, width=10, seed=5):
    return make_layered_dag(
        layers=layers, width=width, num_workers=workers,
        functions=FUNCTIONS, seed=seed,
    )


# ----------------------------------------------------------------------
# link-layer faults
# ----------------------------------------------------------------------
class TestLinkFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFault(drop_rate=1.0)
        with pytest.raises(ValueError):
            LinkFault(drop_rate=-0.1)
        with pytest.raises(ValueError):
            LinkFault(latency_multiplier=0.5)
        with pytest.raises(ValueError):
            LinkFault(max_retransmits=-1)

    def test_latency_multiplier_slows_transfers(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        link.fault = LinkFault(latency_multiplier=2.0)
        done = []

        def sender():
            yield from link.transfer(100)
            done.append(sim.now)

        spawn(sim, sender())
        sim.run()
        assert done == [200.0]

    def test_outage_stalls_until_link_back_up(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        link.fault = LinkFault(down_until_ns=500.0)
        done = []

        def sender():
            yield from link.transfer(100)
            done.append(sim.now)

        spawn(sim, sender())
        sim.run()
        assert done == [600.0]
        assert link.fault.stalled_transfers == 1

    def test_drops_paid_as_bounded_retransmissions(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        # drop_rate ~1: every attempt up to the bound is lost
        link.fault = LinkFault(
            rng=random.Random(0), drop_rate=0.99, max_retransmits=3
        )
        done = []

        def sender():
            yield from link.transfer(100)
            done.append(sim.now)

        spawn(sim, sender())
        sim.run()
        assert done == [400.0]               # 1 try + 3 retransmissions
        assert link.fault.drops == 3
        assert link.bytes_carried == 400     # traffic/energy paid 4x

    def test_healthy_link_unchanged(self):
        sim = Simulator()
        link = Link(sim, LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
        done = []

        def sender():
            yield from link.transfer(100)
            done.append(sim.now)

        spawn(sim, sender())
        sim.run()
        assert done == [100.0]
        assert link.bytes_carried == 100

    def test_transfer_rejects_negative_size(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(ValueError):
            next(link.transfer(-4))


# ----------------------------------------------------------------------
# MPI message faults
# ----------------------------------------------------------------------
def two_node_comm():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", LinkParams(bandwidth_gbps=1.0, latency_ns=10.0))
    return Communicator(net, ["a", "b"])


class TestMessageFaults:
    def test_validation(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_rate=1.0)
        with pytest.raises(ValueError):
            MessageFaults(duplicate_rate=1.5)
        with pytest.raises(ValueError):
            MessageFaults(timeout_ns=-1)

    def test_losses_add_timeout_and_resend_latency(self):
        clean = two_node_comm()
        base_lat, base_e = clean.send(0, 1, 256)
        lossy = two_node_comm()
        lossy.faults = MessageFaults(
            rng=random.Random(0), drop_rate=0.99, max_retries=2, timeout_ns=100.0
        )
        lat, energy = lossy.send(0, 1, 256)
        assert lat == pytest.approx(base_lat * 3 + 200.0)
        assert energy == pytest.approx(base_e * 3)
        assert lossy.faults.lost == 2

    def test_duplicates_spend_energy_not_latency(self):
        clean = two_node_comm()
        base_lat, base_e = clean.send(0, 1, 256)
        dup = two_node_comm()
        dup.faults = MessageFaults(rng=random.Random(0), duplicate_rate=1.0)
        lat, energy = dup.send(0, 1, 256)
        assert lat == pytest.approx(base_lat)
        assert energy == pytest.approx(base_e * 2)
        assert dup.faults.duplicated == 1

    def test_same_seed_same_costs(self):
        costs = []
        for _ in range(2):
            comm = two_node_comm()
            comm.faults = MessageFaults(rng=random.Random(9), drop_rate=0.5)
            costs.append([comm.send(0, 1, 128) for _ in range(20)])
        assert costs[0] == costs[1]

    def test_self_send_free_even_when_lossy(self):
        comm = two_node_comm()
        comm.faults = MessageFaults(rng=random.Random(0), drop_rate=0.9)
        assert comm.send(0, 0, 4096) == (0.0, 0.0)

    def test_collectives_survive_lossy_channel(self):
        comm = two_node_comm()
        clean = comm.allreduce(1024).latency_ns
        comm.faults = MessageFaults(rng=random.Random(1), drop_rate=0.5)
        lossy = comm.allreduce(1024).latency_ns
        assert lossy >= clean


# ----------------------------------------------------------------------
# self-healing runtime: crash-stop, detection, retry, rejoin
# ----------------------------------------------------------------------
class TestSelfHealingRuntime:
    def test_permanent_crash_redispatches_onto_survivors(self, compiled):
        ft = FaultTolerancePolicy(heartbeat_period_ns=10_000.0)
        sim, node, engine = build_engine(compiled, workers=3, ft=ft)

        def killer():
            # crash deterministically while worker 0 is mid-task, so the
            # failure definitely strands work that must be re-dispatched
            from repro.sim import Timeout

            while engine.schedulers[0].current_item is None:
                yield Timeout(1_000.0)
            engine.crash_worker(0, permanent=True)

        spawn(sim, killer())
        graph = graph_for(3, layers=5, width=12)
        report = engine.run_graph(graph)

        assert report.worker_failures == 1
        assert report.tasks_unrecovered == 0
        assert report.availability_ok
        assert report.tasks_retried >= 1
        assert report.mean_detection_ns > 0
        assert report.mean_recovery_ns > 0
        # the dead Worker left the placement pool and never rejoined
        assert 0 in engine.distributor.down_workers
        failure = engine.supervisor.failures[0]
        assert failure.permanent
        assert failure.rejoined_at is None
        # detection latency is bounded by the heartbeat contract
        bound = ft.miss_threshold * ft.heartbeat_period_ns + ft.heartbeat_period_ns
        assert failure.detection_ns <= bound

    def test_transient_crash_heals_and_rejoins(self, compiled):
        ft = FaultTolerancePolicy(heartbeat_period_ns=10_000.0)
        sim, node, engine = build_engine(compiled, workers=2, ft=ft)
        sim.schedule_at(30_000.0, lambda: engine.crash_worker(1, permanent=False))
        sim.schedule_at(150_000.0, lambda: engine.recover_worker(1))
        report = engine.run_graph(graph_for(2, layers=6, width=10))

        assert report.worker_failures == 1
        assert report.tasks_unrecovered == 0
        failure = engine.supervisor.failures[0]
        assert not failure.permanent
        assert failure.rejoined_at == 150_000.0
        # back in the placement pool
        assert 1 not in engine.distributor.down_workers
        assert not engine.schedulers[1].crashed

    def test_crash_is_idempotent(self, compiled):
        ft = FaultTolerancePolicy()
        sim, node, engine = build_engine(compiled, workers=2, ft=ft)
        engine.crash_worker(0)
        engine.crash_worker(0)      # second call is a no-op
        assert len(engine.supervisor.failures) == 1
        engine.recover_worker(1)    # recovering a live Worker is a no-op
        assert not engine.schedulers[1].crashed

    def test_permanent_crash_breaks_fabric_for_recovery_manager(self, compiled):
        ft = FaultTolerancePolicy(heartbeat_period_ns=10_000.0)
        sim, node, engine = build_engine(compiled, workers=2, ft=ft)
        sim.schedule_at(50_000.0, lambda: engine.crash_worker(0, permanent=True))
        report = engine.run_graph(graph_for(2, layers=5, width=10))
        # every region of the dead Worker was reported to the injector
        assert engine.fault_injector is not None
        dead_regions = {
            (w, r) for (w, r) in engine.fault_injector.failed if w == 0
        }
        assert len(dead_regions) == len(node.worker(0).fabric)
        assert report.faults_injected >= len(dead_regions)

    def test_crash_without_fault_tolerance_still_works(self, compiled):
        # engine hooks are safe even with no supervisor armed
        sim, node, engine = build_engine(compiled, workers=2)
        engine.crash_worker(0, permanent=False)
        assert engine.schedulers[0].crashed
        engine.recover_worker(0)
        assert not engine.schedulers[0].crashed


class TestDisabledParity:
    def test_ft_armed_but_quiet_changes_nothing(self, compiled):
        """Arming fault tolerance without faults must not change results."""
        plain_report = None
        armed_report = None
        for ft in (None, FaultTolerancePolicy()):
            sim, node, engine = build_engine(compiled, workers=2, ft=ft)
            report = engine.run_graph(graph_for(2, layers=4, width=8, seed=3))
            if ft is None:
                plain_report = report
            else:
                armed_report = report
        assert armed_report.makespan_ns == plain_report.makespan_ns
        assert armed_report.sw_calls == plain_report.sw_calls
        assert armed_report.hw_calls == plain_report.hw_calls
        assert armed_report.energy_pj == pytest.approx(plain_report.energy_pj)
        assert armed_report.reconfigurations == plain_report.reconfigurations
        # and the availability block stays all-zero on both
        for r in (plain_report, armed_report):
            assert r.faults_injected == 0
            assert r.worker_failures == 0
            assert r.tasks_retried == 0
            assert r.tasks_unrecovered == 0
            assert r.work_lost_ns == 0.0
            assert r.availability_ok


# ----------------------------------------------------------------------
# the chaos controller
# ----------------------------------------------------------------------
class TestChaosController:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(worker_crashes=-1)
        with pytest.raises(ValueError):
            ChaosConfig(transient_fraction=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(window_ns=(500.0, 100.0))

    def test_plan_is_seed_deterministic(self, compiled):
        plans = []
        for _ in range(2):
            sim, node, engine = build_engine(
                compiled, workers=2, ft=FaultTolerancePolicy()
            )
            ctrl = ChaosController(sim, seed=42)
            ctrl.schedule_random(
                engine, node.network.links,
                config=ChaosConfig(window_ns=(10_000.0, 50_000.0)),
            )
            plans.append(ctrl.plan_json())
        assert plans[0] == plans[1]

    def test_different_seed_different_plan(self, compiled):
        plans = []
        for seed in (1, 2):
            sim, node, engine = build_engine(
                compiled, workers=2, ft=FaultTolerancePolicy()
            )
            ctrl = ChaosController(sim, seed=seed)
            ctrl.schedule_random(
                engine, node.network.links,
                config=ChaosConfig(window_ns=(10_000.0, 50_000.0)),
            )
            plans.append(ctrl.plan_json())
        assert plans[0] != plans[1]

    def test_arm_only_once(self, compiled):
        sim, node, engine = build_engine(compiled, workers=2, ft=FaultTolerancePolicy())
        ctrl = ChaosController(sim, seed=0)
        ctrl.crash_worker(engine, 0, at_ns=1_000.0)
        assert ctrl.arm() == 1
        with pytest.raises(RuntimeError):
            ctrl.arm()
        with pytest.raises(RuntimeError):
            ctrl.crash_worker(engine, 1, at_ns=2_000.0)

    def test_degrade_link_with_duration_restores(self):
        sim = Simulator()
        link = Link(sim, LinkParams(), name="test-link")
        ctrl = ChaosController(sim, seed=0)
        ctrl.degrade_link(
            link, at_ns=100.0, latency_multiplier=3.0, duration_ns=400.0
        )
        ctrl.arm()
        sim.run()
        assert link.fault is None           # restored after the window
        assert ctrl.faults_injected == 2    # degrade + restore

    def test_graph_signature_id_independent(self):
        a = graph_for(2, seed=7)
        b = graph_for(2, seed=7)
        c = graph_for(2, seed=8)
        assert a.tasks[0].task_id != b.tasks[0].task_id  # global counter
        assert graph_signature(a) == graph_signature(b)
        assert graph_signature(a) != graph_signature(c)


# ----------------------------------------------------------------------
# end-to-end chaos experiments
# ----------------------------------------------------------------------
class TestChaosExperiment:
    def test_board_acceptance_scenario(self, compiled):
        """DESIGN.md acceptance: kill one Worker mid-graph + degrade one
        link on the board preset; the run completes with every task
        re-placed on survivors and time-to-recover measured."""
        report = run_chaos_experiment("board", seed=1, compiled=compiled)
        assert report.integrity_ok
        assert report.chaos.worker_failures == 1
        assert report.chaos.tasks_retried > 0
        assert report.chaos.tasks_unrecovered == 0
        assert report.chaos.mean_detection_ns > 0
        assert report.chaos.mean_recovery_ns > 0
        assert report.chaos.tasks == report.baseline.tasks
        assert report.slowdown >= 1.0
        # both planned fault classes actually fired
        layers = {f["layer"] for f in report.injected}
        assert layers == {"worker", "link"}

    def test_seeded_determinism_end_to_end(self, compiled):
        """Same chaos seed => identical fault schedule and identical
        recovery metrics (the property the CI smoke job diffs)."""
        a = run_chaos_experiment("mini", seed=11, compiled=compiled)
        b = run_chaos_experiment("mini", seed=11, compiled=compiled)
        assert a.events_json() == b.events_json()
        assert a.plan == b.plan
        assert a.chaos.tasks_retried == b.chaos.tasks_retried
        assert a.chaos.mean_detection_ns == b.chaos.mean_detection_ns
        assert a.chaos.mean_recovery_ns == b.chaos.mean_recovery_ns
        assert a.chaos.work_lost_ns == b.chaos.work_lost_ns

    def test_unknown_preset_rejected(self, compiled):
        with pytest.raises(KeyError):
            run_chaos_experiment("nope", compiled=compiled)

    def test_presets_are_well_formed(self):
        from repro.presets import NODE_PRESETS

        for name, preset in CHAOS_PRESETS.items():
            assert preset.node in NODE_PRESETS, name
            lo, hi = preset.window_fraction
            assert 0 <= lo < hi <= 1, name


# ----------------------------------------------------------------------
# machine-level (cluster) fault hooks
# ----------------------------------------------------------------------
class TestClusterChaos:
    def test_global_crash_survives_cluster_run(self, compiled):
        registry, library = compiled
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=2)),
        )
        engine = ClusterEngine(
            machine, registry, library,
            fault_tolerance=FaultTolerancePolicy(heartbeat_period_ns=10_000.0),
        )
        # global worker 3 = node 1, local worker 1
        machine.sim.schedule_at(30_000.0, lambda: engine.crash_worker(3))
        graph = make_layered_dag(
            layers=4, width=10, num_workers=4, functions=FUNCTIONS, seed=5
        )
        report = engine.run_graph(graph)
        assert report.worker_failures == 1
        assert report.node_reports[1].worker_failures == 1
        assert report.node_reports[0].worker_failures == 0
        assert report.tasks_unrecovered == 0
        assert report.availability_ok

    def test_lossy_world_communicator(self, compiled):
        registry, library = compiled
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=2)),
        )
        ctrl = ChaosController(machine.sim, seed=0)
        ctrl.lose_messages(machine.world, at_ns=0.0, drop_rate=0.5)
        ctrl.arm()
        machine.sim.run()
        assert machine.world.faults is not None
        r = machine.world.allreduce(4096)
        assert r.latency_ns > 0


# ----------------------------------------------------------------------
# multi-tenant chaos: concurrent jobs + Worker crash mid-stream
# ----------------------------------------------------------------------
class TestMultiJobChaos:
    def _run_two_jobs_with_crash(self, compiled):
        sim, node, engine = build_engine(
            compiled, workers=4,
            ft=FaultTolerancePolicy(heartbeat_period_ns=10_000.0),
        )
        manager = JobManager(engine)
        a = manager.submit_job(graph_for(4, seed=11), policy="greedy-hw", priority=2)
        b = manager.submit_job(graph_for(4, seed=22), policy="energy", priority=1)
        sigs = (graph_signature(a.graph), graph_signature(b.graph))
        # crash a Worker while both job streams are in flight
        sim.schedule_at(40_000.0, lambda: engine.crash_worker(1, permanent=True))
        report = manager.run()
        return engine, manager, a, b, sigs, report

    def test_per_job_integrity_verdicts(self, compiled):
        engine, manager, a, b, sigs, report = self._run_two_jobs_with_crash(compiled)

        assert len(engine.supervisor.failures) >= 1
        assert report.worker_failures >= 1
        assert engine.supervisor.tasks_retried >= 1   # the crash hit work
        # each tenant gets its own verdict, and both must survive intact
        for handle, sig in zip((a, b), sigs):
            assert handle.report is not None
            assert handle.report.tasks == 50
            assert handle.report.tasks_unrecovered == 0
            assert handle.report.availability_ok
            assert graph_signature(handle.graph) == sig  # workload unaltered
        assert report.availability_ok

    def test_retries_attributed_to_the_right_job(self, compiled):
        engine, manager, a, b, sigs, report = self._run_two_jobs_with_crash(compiled)

        per_job = {h.job_id: h.report.tasks_retried for h in (a, b)}
        # retry accounting is exact: job-tagged counts sum to the
        # machine total, nothing is double-billed or lost
        assert sum(per_job.values()) == engine.supervisor.tasks_retried
        assert report.tasks_retried == engine.supervisor.tasks_retried

    def test_one_jobs_retries_never_consume_the_others_slots(self, compiled):
        engine, manager, a, b, sigs, report = self._run_two_jobs_with_crash(compiled)

        # fair-share isolation: a retried task re-uses the slot it
        # already holds, so even under faults neither tenant's in-flight
        # work can exceed its frozen share -- retries of job A cannot
        # starve job B
        assert a.share is not None and b.share is not None
        assert a.share + b.share <= manager.total_slots
        assert 0 < a.peak_in_flight <= a.share
        assert 0 < b.peak_in_flight <= b.share

    def test_multi_job_experiment_end_to_end(self, compiled):
        report = run_multi_job_chaos_experiment("mini", seed=42, compiled=compiled)
        assert report.faults_injected >= 1
        assert report.integrity_ok
        assert len(report.verdicts) == len(report.chaos.jobs)
        for verdict in report.verdicts:
            assert verdict.workload_match
            assert verdict.tasks_unrecovered == 0
        assert report.slowdown > 0

    def test_multi_job_experiment_deterministic(self, compiled):
        r1 = run_multi_job_chaos_experiment("mini", seed=7, compiled=compiled)
        r2 = run_multi_job_chaos_experiment("mini", seed=7, compiled=compiled)
        assert r1.events_json() == r2.events_json()
        assert r1.chaos.makespan_ns == r2.chaos.makespan_ns
        r3 = run_multi_job_chaos_experiment("mini", seed=8, compiled=compiled)
        assert r3.plan != r1.plan  # seeds actually steer the fault plan
