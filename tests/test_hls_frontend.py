"""Unit tests for the OpenCL-C frontend."""

import pytest

from repro.hls import HlsConfig, HlsEstimator, OpKind
from repro.hls.frontend import ParseError, parse_kernel, tokenize

SAXPY_SRC = """
__kernel void saxpy(const float alpha,
                    __global const float* x,
                    __global float* y) {
    int i = get_global_id(0);
    y[i] = alpha * x[i] + y[i];
}
"""

FIR_SRC = """
// ecoscale: recurrence(1, 3)
__kernel void fir(__global const float* signal,
                  __global const float* coeff,
                  __global float* out) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int t = 0; t < TAPS; t++) {
        acc += signal[i + t] * coeff[t];
    }
    out[i] = acc;
}
"""

BLACK_SCHOLES_SRC = """
__kernel void bs(__global const float* spot, __global float* price) {
    int i = get_global_id(0);
    float d = log(spot[i]) + sqrt(spot[i]);
    price[i] = exp(d) / (d + 1.0f);
}
"""


class TestTokenizer:
    def test_tokens_and_annotation(self):
        tokens, rec = tokenize("// ecoscale: recurrence(2, 7)\nint x = 1;")
        assert rec == (2, 7)
        assert [t.text for t in tokens] == ["int", "x", "=", "1", ";"]

    def test_block_comment(self):
        tokens, _ = tokenize("/* multi\nline */ x")
        assert len(tokens) == 1

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("int $x;")


class TestSaxpy:
    def test_structure(self):
        k = parse_kernel(SAXPY_SRC, global_size=4096)
        assert k.name == "saxpy"
        assert k.inner_trip == 4096
        names = {a.name for a in k.arrays}
        assert names == {"x", "y"}  # alpha is scalar, not an array

    def test_op_counts_match_hand_ir(self):
        k = parse_kernel(SAXPY_SRC, global_size=4096)
        assert k.ops[OpKind.MUL] == 1
        assert k.ops[OpKind.ADD] == 1

    def test_access_counts(self):
        k = parse_kernel(SAXPY_SRC, global_size=4096)
        assert k.array("x").reads_per_iter == 1
        assert k.array("y").reads_per_iter == 1
        assert k.array("y").writes_per_iter == 1

    def test_matches_handbuilt_saxpy_estimates(self):
        """The parsed kernel estimates like the hand-built one."""
        from repro.hls import saxpy_kernel

        est = HlsEstimator()
        parsed = parse_kernel(SAXPY_SRC, 4096)
        hand = saxpy_kernel(4096)
        cfg = HlsConfig(pipeline=True)
        ep, eh = est.estimate(parsed, cfg), est.estimate(hand, cfg)
        assert ep.initiation_interval == eh.initiation_interval
        assert ep.latency_ns(4096) == pytest.approx(eh.latency_ns(4096), rel=0.2)


class TestLoopsAndConstants:
    def test_named_bound_resolved(self):
        k = parse_kernel(FIR_SRC, global_size=1024, constants={"TAPS": 32})
        # 32 multiply-accumulates per work item (+ loop overhead logic)
        assert k.ops[OpKind.MUL] == 32
        assert k.ops[OpKind.ADD] == 32
        assert k.array("signal").reads_per_iter == 32
        assert k.array("coeff").reads_per_iter == 32
        assert k.array("out").writes_per_iter == 1

    def test_recurrence_annotation_respected(self):
        k = parse_kernel(FIR_SRC, 1024, constants={"TAPS": 8})
        assert k.recurrence == (1, 3)

    def test_unknown_bound_rejected(self):
        with pytest.raises(ParseError, match="TAPS"):
            parse_kernel(FIR_SRC, 1024)

    def test_literal_bound(self):
        src = SAXPY_SRC.replace(
            "y[i] = alpha * x[i] + y[i];",
            "for (int k = 0; k < 4; k++) { y[i] = alpha * x[i] + y[i]; }",
        )
        k = parse_kernel(src, 64)
        assert k.ops[OpKind.MUL] == 4

    def test_le_bound(self):
        src = """
__kernel void f(__global float* a) {
    for (int k = 0; k <= 3; k++) { a[k] = a[k] + 1.0f; }
}
"""
        k = parse_kernel(src, 16)
        assert k.ops[OpKind.ADD] == 4


class TestBuiltins:
    def test_transcendentals_counted(self):
        k = parse_kernel(BLACK_SCHOLES_SRC, 1000)
        assert k.ops[OpKind.EXP] == 2      # log + exp (sqrt is its own kind)
        assert k.ops[OpKind.SQRT] == 1
        assert k.ops[OpKind.DIV] == 1

    def test_get_global_id_free(self):
        k = parse_kernel(SAXPY_SRC, 64)
        # no EXP/SQRT/etc from the builtin call
        assert OpKind.EXP not in k.ops
        assert OpKind.SQRT not in k.ops


class TestErrors:
    def test_global_size_validation(self):
        with pytest.raises(ParseError):
            parse_kernel(SAXPY_SRC, 0)

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_kernel("", 10)

    def test_missing_kernel_keyword(self):
        with pytest.raises(ParseError):
            parse_kernel("void f() {}", 10)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_kernel("__kernel void f(__global float* a) { a[0] = 1.0f;", 10)

    def test_weird_loop_rejected(self):
        src = """
__kernel void f(__global float* a) {
    for (int k = 0; k < 4 + 4; k++) { a[k] = 1.0f; }
}
"""
        with pytest.raises(ParseError):
            parse_kernel(src, 10)


class TestEndToEndSynthesis:
    def test_parsed_kernel_compiles_through_hls(self):
        """Source -> IR -> DSE -> placed module: the full Fig. 2 path
        from an actual OpenCL C string."""
        from repro.fabric import ModuleLibrary
        from repro.hls import HlsTool, SynthesisConstraints

        kernel = parse_kernel(FIR_SRC, 2048, constants={"TAPS": 16})
        lib = ModuleLibrary()
        report = HlsTool().compile(kernel, lib, SynthesisConstraints(max_variants=2))
        assert report.modules
        assert "fir" in lib
        module = lib.best_variant("fir")
        assert module.latency_ns(2048) > 0
