"""Unit tests for accelerator modules, the library, regions and the
reconfiguration controller."""

import pytest

from repro.fabric import (
    AcceleratorModule,
    Bitstream,
    ConfigPort,
    Fabric,
    Floorplanner,
    ModuleLibrary,
    ReconfigurationController,
    RegionState,
    ResourceVector,
    TileGrid,
)
from repro.sim import Simulator, spawn


def make_module(name="m0", function="f", frames=4, fill=0.5, ii=1, lanes=1, luts=100):
    return AcceleratorModule(
        name=name,
        function=function,
        resources=ResourceVector(luts=luts, ffs=2 * luts),
        bitstream=Bitstream.synthesize(name, frames, fill),
        initiation_interval=ii,
        parallel_lanes=lanes,
    )


def make_fabric(sim, regions=2, cols=40, rows=50):
    fp = Floorplanner(TileGrid.standard(cols, rows))
    return Fabric(sim, fp.budget_regions(regions))


class TestAcceleratorModule:
    def test_latency_model(self):
        m = make_module(ii=2)
        # depth 8 + (n-1)*2 cycles at 5ns + 50ns setup
        assert m.latency_ns(1) == pytest.approx(50 + 8 * 5)
        assert m.latency_ns(101) == pytest.approx(50 + (8 + 200) * 5)

    def test_lanes_divide_issue_time(self):
        slow = make_module(lanes=1)
        fast = make_module(lanes=4)
        assert fast.latency_ns(1000) < slow.latency_ns(1000)

    def test_throughput(self):
        m = make_module(ii=1)
        assert m.throughput_items_per_us() == pytest.approx(200.0)  # 1/5ns

    def test_energy_has_static_and_dynamic(self):
        m = make_module()
        e = m.energy_pj(100)
        assert e > 100 * m.energy_per_item_pj  # static adds on top

    def test_validation(self):
        with pytest.raises(ValueError):
            make_module(ii=0)
        m = make_module()
        with pytest.raises(ValueError):
            m.latency_ns(0)


class TestModuleLibrary:
    def test_add_and_lookup(self):
        lib = ModuleLibrary()
        lib.add(make_module("a", "fft"))
        lib.add(make_module("b", "fft", lanes=4))
        assert "fft" in lib
        assert len(lib) == 2
        assert lib.functions() == ["fft"]

    def test_duplicate_name_rejected(self):
        lib = ModuleLibrary()
        lib.add(make_module("a", "fft"))
        with pytest.raises(ValueError):
            lib.add(make_module("a", "fft"))

    def test_best_variant_prefers_fastest_fitting(self):
        lib = ModuleLibrary()
        small = make_module("small", "fft", lanes=1, luts=10)
        big = make_module("big", "fft", lanes=8, luts=10000)
        lib.add(small)
        lib.add(big)
        assert lib.best_variant("fft") is big
        tight = ResourceVector(luts=100, ffs=200)
        assert lib.best_variant("fft", capacity=tight) is small

    def test_best_variant_missing(self):
        lib = ModuleLibrary()
        assert lib.best_variant("nope") is None

    def test_smallest_variant(self):
        lib = ModuleLibrary()
        lib.add(make_module("small", "fft", luts=10))
        lib.add(make_module("big", "fft", luts=1000))
        assert lib.smallest_variant("fft").name == "small"
        assert lib.smallest_variant("missing") is None


class TestFabricRegions:
    def test_region_bookkeeping(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=3)
        assert len(fab) == 3
        assert fab.occupancy() == 0.0
        assert fab.loaded_functions() == []
        assert fab.region_with_function("f") is None

    def test_victim_prefers_empty(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=2)
        m = make_module()
        v = fab.victim_region(m)
        assert v.state is RegionState.EMPTY

    def test_victim_lru_eviction(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=2)
        for i, r in enumerate(fab.regions):
            r.state = RegionState.READY
            r.module = make_module(f"m{i}", f"f{i}")
            r.last_used_at = float(i)
        v = fab.victim_region(make_module("new", "g"))
        assert v.region_id == 0  # least recently used

    def test_victim_none_when_nothing_fits(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=2, cols=4, rows=2)
        huge = make_module(luts=10**8)
        assert fab.victim_region(huge) is None

    def test_empty_fabric_rejected(self):
        with pytest.raises(ValueError):
            Fabric(Simulator(), [])


class TestReconfiguration:
    def run_load(self, use_compression, fill=0.1):
        sim = Simulator()
        fab = make_fabric(sim, regions=2)
        ctl = ReconfigurationController(sim, fab, use_compression=use_compression)
        m = make_module(frames=40, fill=fill)
        out = {}

        def proc():
            region = yield from ctl.load(m)
            out["region"] = region
            out["t"] = sim.now

        spawn(sim, proc())
        sim.run()
        return ctl, out

    def test_load_marks_region_ready(self):
        ctl, out = self.run_load(use_compression=False)
        assert out["region"].state is RegionState.READY
        assert out["region"].function == "f"
        assert ctl.reconfigurations == 1
        assert ctl.config_bytes > 0

    def test_compression_reduces_latency_and_bytes(self):
        plain, out_plain = self.run_load(use_compression=False, fill=0.1)
        comp, out_comp = self.run_load(use_compression=True, fill=0.1)
        assert out_comp["t"] < out_plain["t"]
        assert comp.config_bytes < plain.config_bytes
        assert comp.config_energy_pj < plain.config_energy_pj

    def test_eviction_counted(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=1)
        ctl = ReconfigurationController(sim, fab)

        def proc():
            yield from ctl.load(make_module("a", "f1"))
            yield from ctl.load(make_module("b", "f2"))

        spawn(sim, proc())
        sim.run()
        assert ctl.evictions == 1
        assert fab.loaded_functions() == ["f2"]

    def test_load_none_when_no_fit(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=1, cols=4, rows=2)
        ctl = ReconfigurationController(sim, fab)
        result = {}

        def proc():
            r = yield from ctl.load(make_module(luts=10**8))
            result["r"] = r

        spawn(sim, proc())
        sim.run()
        assert result["r"] is None

    def test_load_wrong_region_rejected(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=2, cols=4, rows=2)
        ctl = ReconfigurationController(sim, fab)

        def proc():
            yield from ctl.load(make_module(luts=10**8), region=fab.regions[0])

        spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_config_port_validation(self):
        with pytest.raises(ValueError):
            ConfigPort(bandwidth_gbps=0)

    def test_load_cost_analytic_matches_simulated(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=1)
        ctl = ReconfigurationController(sim, fab, use_compression=True)
        m = make_module(frames=40, fill=0.2)
        planned = ctl.load_cost_ns(m)

        def proc():
            yield from ctl.load(m)

        spawn(sim, proc())
        sim.run()
        assert sim.now == pytest.approx(planned)

    def test_unload(self):
        sim = Simulator()
        fab = make_fabric(sim, regions=1)
        ctl = ReconfigurationController(sim, fab)

        def proc():
            yield from ctl.load(make_module())

        spawn(sim, proc())
        sim.run()
        ctl.unload(fab.regions[0])
        assert fab.regions[0].state is RegionState.EMPTY
        assert fab.occupancy() == 0.0
