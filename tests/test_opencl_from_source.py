"""Unit tests for Program.from_source (OpenCL C -> Program)."""

import numpy as np
import pytest

from repro.core import ComputeNode, ComputeNodeParams
from repro.hls.frontend import ParseError
from repro.opencl import CommandQueue, Context, DeviceType, Platform, Program
from repro.sim import Simulator

VECSCALE_SRC = """
__kernel void vecscale(const float alpha, __global float* data) {
    int i = get_global_id(0);
    data[i] = alpha * data[i];
}
"""


def test_from_source_builds_registry():
    prog = Program.from_source([VECSCALE_SRC], global_size=256)
    assert prog.functions() == ["vecscale"]
    ir = prog.registry.kernel("vecscale")
    assert ir.inner_trip == 256
    assert ir.array("data").writes_per_iter == 1


def test_from_source_invalid_rejected():
    with pytest.raises(ParseError):
        Program.from_source(["not a kernel"], 16)
    with pytest.raises(ParseError):
        Program.from_source([VECSCALE_SRC], 0)


def test_from_source_runs_end_to_end():
    prog = Program.from_source([VECSCALE_SRC], global_size=256)
    prog.set_host_impl(
        "vecscale", lambda alpha, data: data.array.__imul__(alpha)
    )
    prog.enable_acceleration("vecscale")
    plat = Platform(ComputeNode(Simulator(), ComputeNodeParams(num_workers=1)))
    ctx = Context(plat)
    buf = ctx.create_buffer(1024, dtype=np.float32)
    buf.array[:] = 2.0
    q = CommandQueue(ctx, plat.device(0, DeviceType.FPGA))
    ev = q.enqueue_nd_range(prog.kernel("vecscale").set_args(3.0, buf), 256)
    q.finish()
    assert ev.result["device"] == "fpga"
    np.testing.assert_allclose(buf.array, 6.0)
