"""Unit tests for progressive address translation."""

import pytest

from repro.memory import (
    ProgressiveTranslator,
    TranslationStep,
    build_hierarchy_translator,
)


def test_step_match_and_apply():
    s = TranslationStep("l0", window_base=0x1000, window_size=0x1000, target_base=0x8000)
    assert s.matches(0x1800)
    assert not s.matches(0x800)
    assert s.apply(0x1800) == 0x8800
    with pytest.raises(ValueError):
        s.apply(0x100)


def test_step_validation():
    with pytest.raises(ValueError):
        TranslationStep("bad", 0, 0, 0)
    with pytest.raises(ValueError):
        TranslationStep("bad", -1, 10, 0)


def test_local_address_passes_untranslated():
    tr = build_hierarchy_translator(levels=3, window_bits=20)
    addr = 0x100  # below every window
    final, lat, applied = tr.translate(addr)
    assert final == addr
    assert lat == 0.0
    assert applied == []


def test_full_depth_translation():
    tr = build_hierarchy_translator(levels=3, window_bits=20, latency_per_level_ns=5.0)
    window = 1 << 20
    addr = 3 * window + 0x42  # aliased at the top level
    final, lat, applied = tr.translate(addr)
    assert final == 0x42
    assert lat == pytest.approx(15.0)
    assert applied == ["level0", "level1", "level2"]


def test_partial_depth_translation():
    tr = build_hierarchy_translator(levels=3, window_bits=20, latency_per_level_ns=5.0)
    window = 1 << 20
    addr = window + 0x7
    final, lat, applied = tr.translate(addr)
    assert final == 0x7
    assert lat == pytest.approx(5.0)
    assert len(applied) == 1


def test_mean_steps_statistic():
    tr = build_hierarchy_translator(levels=2, window_bits=20)
    window = 1 << 20
    tr.translate(0x0)           # 0 steps
    tr.translate(2 * window)    # 2 steps
    assert tr.mean_steps_per_translation == pytest.approx(1.0)


def test_negative_address_rejected():
    tr = ProgressiveTranslator()
    with pytest.raises(ValueError):
        tr.translate(-1)


def test_build_validation():
    with pytest.raises(ValueError):
        build_hierarchy_translator(levels=0)


def test_latency_grows_with_depth():
    """The deeper the hierarchy, the costlier a top-level remote access --
    the hop-count argument of the paper's Section 2."""
    costs = []
    for levels in (1, 2, 4, 7):
        tr = build_hierarchy_translator(levels=levels, window_bits=20)
        addr = levels * (1 << 20)
        _, lat, _ = tr.translate(addr)
        costs.append(lat)
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]
