"""Unit tests for configuration-memory scrubbing."""

import pytest

from repro.core import Worker, WorkerParams
from repro.fabric import ModuleLibrary
from repro.fabric.scrubber import ConfigScrubber
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def module():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib.best_variant("saxpy")


def loaded_worker(module):
    sim = Simulator()
    worker = Worker(sim, 0, WorkerParams(fabric_regions=2))
    out = {}

    def proc():
        out["region"] = yield from worker.load_module(module)

    spawn(sim, proc())
    sim.run()
    return sim, worker, out["region"]


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("v")


class TestInjection:
    def test_upset_recorded(self, module):
        sim, worker, region = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        rec = scrub.inject_upset(region.region_id, frame=0, bit=5)
        assert rec.detected_at is None
        assert len(scrub.upsets) == 1

    def test_empty_region_rejected(self, module):
        sim, worker, region = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        empty = next(
            r for r in worker.fabric.regions if r.region_id != region.region_id
        )
        with pytest.raises(ValueError):
            scrub.inject_upset(empty.region_id, 0)

    def test_out_of_range_frame_rejected(self, module):
        sim, worker, region = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        with pytest.raises(ValueError):
            scrub.inject_upset(region.region_id, frame=10_000)

    def test_bandwidth_validation(self, module):
        sim, worker, _ = loaded_worker(module)
        with pytest.raises(ValueError):
            ConfigScrubber(sim, worker.fabric, readback_bandwidth_gbps=0)


class TestScrubbing:
    def test_clean_pass_finds_nothing(self, module):
        sim, worker, _ = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        found = run(sim, scrub.scrub_pass())
        assert found == 0
        assert scrub.frames_scrubbed == module.bitstream.frames

    def test_upset_detected_and_repaired(self, module):
        sim, worker, region = loaded_worker(module)
        faults = []
        scrub = ConfigScrubber(
            sim, worker.fabric, on_fault=lambda r, f: faults.append((r.region_id, f))
        )
        rec = scrub.inject_upset(region.region_id, frame=2, bit=17)
        found = run(sim, scrub.scrub_pass())
        assert found == 1
        assert rec.detected_at is not None
        assert rec.detection_ns > 0
        assert faults == [(region.region_id, 2)]
        # repaired: a second pass is clean
        assert run(sim, scrub.scrub_pass()) == 0

    def test_double_upset_same_frame_detected_once(self, module):
        sim, worker, region = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        scrub.inject_upset(region.region_id, frame=1, bit=0)
        scrub.inject_upset(region.region_id, frame=1, bit=9)
        found = run(sim, scrub.scrub_pass())
        assert found == 1  # one corrupt frame
        assert all(u.detected_at is not None for u in scrub.upsets)

    def test_detection_latency_depends_on_frame_position(self, module):
        """An upset in a later frame waits longer for the scrub cursor."""
        sim1, w1, r1 = loaded_worker(module)
        s1 = ConfigScrubber(sim1, w1.fabric)
        early = s1.inject_upset(r1.region_id, frame=0)
        run(sim1, s1.scrub_pass())

        sim2, w2, r2 = loaded_worker(module)
        s2 = ConfigScrubber(sim2, w2.fabric)
        late = s2.inject_upset(r2.region_id, frame=module.bitstream.frames - 1)
        run(sim2, s2.scrub_pass())
        assert late.detection_ns > early.detection_ns

    def test_continuous_run_loop(self, module):
        sim, worker, region = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        scrub.inject_upset(region.region_id, frame=0)
        spawn(sim, scrub.run(interval_ns=1000.0))
        sim.run(until=sim.now + 200_000.0)
        scrub.stop()
        assert scrub.faults_detected == 1
        assert scrub.mean_detection_ns() > 0

    def test_run_interval_validation(self, module):
        sim, worker, _ = loaded_worker(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        spawn(sim, scrub.run(interval_ns=0))
        with pytest.raises(ValueError):
            sim.run()
