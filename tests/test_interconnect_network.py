"""Unit tests for Network routing, costing and simulation."""

import pytest

from repro.interconnect import LinkParams, Message, Network, TransactionType
from repro.sim import Simulator, spawn


def line_network(n=3, **kw):
    """0 - 1 - 2 - ... chain."""
    sim = Simulator()
    net = Network(sim)
    for i in range(n):
        net.add_node(i)
    for i in range(n - 1):
        net.add_link(i, i + 1, LinkParams(**kw))
    return sim, net


class TestRouting:
    def test_route_self_is_empty(self):
        _, net = line_network()
        r = net.route(1, 1)
        assert r.hops == 0
        assert r.latency(100) == 0.0

    def test_route_follows_chain(self):
        _, net = line_network(4)
        r = net.route(0, 3)
        assert r.nodes == [0, 1, 2, 3]
        assert r.hops == 3

    def test_no_route_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(ValueError):
            net.route("a", "b")
        with pytest.raises(ValueError):
            net.route("a", "missing")

    def test_route_cache_invalidated_by_new_link(self):
        sim, net = line_network(3)
        assert net.route(0, 2).hops == 2
        net.add_link(0, 2, LinkParams())
        assert net.route(0, 2).hops == 1

    def test_weighted_routing_prefers_fast_path(self):
        sim = Simulator()
        net = Network(sim)
        for n in ("a", "b", "c"):
            net.add_node(n)
        net.add_link("a", "c", LinkParams(latency_ns=1000.0))
        net.add_link("a", "b", LinkParams(latency_ns=10.0))
        net.add_link("b", "c", LinkParams(latency_ns=10.0))
        r = net.route("a", "c")
        assert r.nodes == ["a", "b", "c"]

    def test_hop_distance_and_diameter(self):
        _, net = line_network(5)
        assert net.hop_distance(0, 4) == 4
        assert net.diameter_hops() == 4
        assert net.diameter_hops(endpoints=[1, 2, 3]) == 2


class TestCosting:
    def test_send_cost_accumulates_per_hop(self):
        _, net = line_network(3, bandwidth_gbps=1.0, latency_ns=10.0, energy_per_byte_pj=2.0)
        msg = Message(0, 2, 100, TransactionType.DMA)  # wire = 132
        lat, energy = net.send_cost(msg)
        assert lat == pytest.approx(2 * (10.0 + 132.0))
        assert energy == pytest.approx(2 * 132 * 2.0)
        assert net.total_link_bytes() == 2 * 132
        assert net.total_energy_pj() == pytest.approx(energy)

    def test_reset_traffic(self):
        _, net = line_network(3)
        net.send_cost(Message(0, 2, 100))
        net.reset_traffic()
        assert net.total_link_bytes() == 0
        assert net.total_energy_pj() == 0.0
        assert net.messages_sent == 0


class TestSimulatedSend:
    def test_send_process_timestamps(self):
        sim, net = line_network(3, bandwidth_gbps=1.0, latency_ns=0.0)
        results = []

        def proc():
            msg = Message(0, 2, 100, TransactionType.SYNC)  # wire 108
            delivered = yield from net.send(msg)
            results.append(delivered.latency)

        spawn(sim, proc())
        sim.run()
        assert results[0] == pytest.approx(2 * 108.0)

    def test_contention_on_shared_link(self):
        sim, net = line_network(2, bandwidth_gbps=1.0, latency_ns=0.0)
        done = []

        def proc():
            msg = Message(0, 1, 92, TransactionType.SYNC)  # wire 100
            yield from net.send(msg)
            done.append(sim.now)

        spawn(sim, proc())
        spawn(sim, proc())
        sim.run()
        assert sorted(done) == [100.0, 200.0]


class TestTreeIndex:
    def tree_pair(self, fanouts):
        from repro.interconnect.topology import build_tree, level_params

        depth = len(fanouts)
        params = [level_params(depth - 1 - d + 1) for d in range(depth)]
        searched, eps = build_tree(Simulator(), fanouts, params)
        indexed, _ = build_tree(Simulator(), fanouts, params)
        indexed.index_tree()
        return searched, indexed, eps

    @pytest.mark.parametrize("fanouts", [[4], [2, 3], [4, 4], [1, 4]])
    def test_indexed_routes_match_graph_search(self, fanouts):
        searched, indexed, eps = self.tree_pair(fanouts)
        for a in eps:
            for b in eps:
                want = searched.route(a, b)
                got = indexed.route(a, b)
                assert got.nodes == want.nodes
                assert got.latency(4096) == want.latency(4096)
        assert indexed.diameter_hops(eps) == searched.diameter_hops(eps)

    def test_index_tree_rejects_cycles(self):
        _, net = line_network(3)
        net.add_link(0, 2)
        with pytest.raises(ValueError, match="connected tree"):
            net.index_tree()

    def test_topology_change_drops_index(self):
        _, indexed, eps = self.tree_pair([4])
        indexed.add_link(eps[0], eps[1])
        assert indexed._tree_index is None
        # routing still works, now via graph search
        assert indexed.route(eps[0], eps[1]).hops == 1
