"""Simultaneous multi-worker crash coverage (correlated failures): the
TaskSupervisor reclaiming overlapping in-flight sets, retry accounting
under storms, speculative-retry races against later kills, seeded
backoff jitter and the machine-wide retry budget."""

import pytest

from repro.apps import make_layered_dag
from repro.chaos import ChaosController, build_domain_tree
from repro.core import ComputeNode, ComputeNodeParams
from repro.core.runtime import (
    ExecutionEngine,
    FaultTolerancePolicy,
    JobManager,
)
from repro.presets import compiled_suite
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


@pytest.fixture(scope="module")
def compiled():
    return compiled_suite(max_variants=1)


def build_engine(compiled, workers=4, ft=None):
    registry, library = compiled
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    engine = ExecutionEngine(
        node, registry, library, use_daemon=True, daemon_period_ns=100_000.0,
        fault_tolerance=ft,
    )
    return sim, node, engine


def graph_for(workers, layers=5, width=10, seed=5):
    return make_layered_dag(
        layers=layers, width=width, num_workers=workers,
        functions=FUNCTIONS, seed=seed,
    )


# ----------------------------------------------------------------------
# seeded backoff jitter (satellite: no lockstep retry storms)
# ----------------------------------------------------------------------
class TestBackoffJitter:
    def test_zero_jitter_is_the_exact_legacy_schedule(self):
        policy = FaultTolerancePolicy()
        assert policy.backoff_ns(1, key="t0") == 10_000.0
        assert policy.backoff_ns(2, key="t0") == 20_000.0
        assert policy.backoff_ns(6, key="t0") == 200_000.0   # capped

    def test_jitter_is_deterministic_per_task_and_attempt(self):
        a = FaultTolerancePolicy(backoff_jitter=0.3)
        b = FaultTolerancePolicy(backoff_jitter=0.3)
        assert a.backoff_ns(2, key="task7") == b.backoff_ns(2, key="task7")
        # different tasks (and different attempts) decorrelate
        waits = {a.backoff_ns(2, key=f"task{i}") for i in range(8)}
        assert len(waits) > 1
        assert a.backoff_ns(1, key="task7") != pytest.approx(
            a.backoff_ns(2, key="task7") / 2.0
        )

    def test_jitter_stays_within_the_band(self):
        policy = FaultTolerancePolicy(backoff_jitter=0.25)
        base = 20_000.0                     # attempt 2
        for i in range(64):
            wait = policy.backoff_ns(2, key=f"t{i}")
            assert 0.75 * base <= wait <= 1.25 * base

    def test_keyless_calls_skip_jitter(self):
        policy = FaultTolerancePolicy(backoff_jitter=0.5)
        assert policy.backoff_ns(1) == 10_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultTolerancePolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            FaultTolerancePolicy(backoff_jitter=-0.1)
        with pytest.raises(ValueError):
            FaultTolerancePolicy(retry_budget=0)
        with pytest.raises(ValueError):
            FaultTolerancePolicy(retry_budget_window_ns=0.0)

    def test_jittered_run_is_deterministic_and_recovers(self, compiled):
        def run_once():
            ft = FaultTolerancePolicy(backoff_jitter=0.4)
            sim, node, engine = build_engine(compiled, workers=3, ft=ft)
            manager = JobManager(engine)
            handle = manager.submit_job(graph_for(3))
            ctrl = ChaosController(sim, seed=0)
            ctrl.crash_worker(engine, 0, at_ns=40_000.0)
            ctrl.arm()
            report = manager.run()
            return report, engine.supervisor, handle

        r1, sup1, h1 = run_once()
        r2, sup2, h2 = run_once()
        assert r1.makespan_ns == r2.makespan_ns
        assert sup1.tasks_retried == sup2.tasks_retried
        assert r1.job(h1.job_id).report.tasks_unrecovered == 0


# ----------------------------------------------------------------------
# simultaneous multi-worker crashes (satellite 3)
# ----------------------------------------------------------------------
class TestSimultaneousCrashes:
    def test_blade_kill_reclaims_both_workers_inflight_sets(self, compiled):
        ft = FaultTolerancePolicy()
        sim, node, engine = build_engine(compiled, workers=4, ft=ft)
        manager = JobManager(engine)
        handle = manager.submit_job(graph_for(4))
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=0)
        ctrl.fail_domain(engine, tree.domain("blade0"), at_ns=50_000.0)
        ctrl.arm()
        report = manager.run()
        # the run finished on the two survivors with nothing lost
        outcome = report.job(handle.job_id)
        assert outcome.report.tasks_unrecovered == 0
        assert handle.finished
        sup = engine.supervisor
        detected = [f for f in sup.failures if f.detected_at is not None]
        assert {f.worker_id for f in detected} == {0, 1}
        # both members were reclaimed: every re-dispatch is accounted for
        redispatched = sum(f.tasks_redispatched for f in detected)
        assert redispatched == sup.tasks_retried + len(sup.unrecovered)
        assert sup.tasks_retried > 0

    def test_two_independent_crashes_at_the_same_instant(self, compiled):
        ft = FaultTolerancePolicy()
        sim, node, engine = build_engine(compiled, workers=4, ft=ft)
        manager = JobManager(engine)
        handles = [
            manager.submit_job(graph_for(4, seed=5), priority=2),
            manager.submit_job(graph_for(4, seed=6), policy="energy"),
        ]
        ctrl = ChaosController(sim, seed=1)
        ctrl.crash_worker(engine, 1, at_ns=60_000.0)
        ctrl.crash_worker(engine, 2, at_ns=60_000.0)
        ctrl.arm()
        report = manager.run()
        sup = engine.supervisor
        for handle in handles:
            assert report.job(handle.job_id).report.tasks_unrecovered == 0
        # per-job retry accounting sums to the supervisor's global count
        per_job = sum(
            engine.jobs.record(h.job_id).tasks_retried for h in handles
        )
        assert per_job == sup.tasks_retried

    def test_whole_rack_dies_survivors_finish(self, compiled):
        ft = FaultTolerancePolicy()
        sim, node, engine = build_engine(compiled, workers=8, ft=ft)
        manager = JobManager(engine)
        handle = manager.submit_job(graph_for(8))
        tree = build_domain_tree(8)
        ctrl = ChaosController(sim, seed=2)
        # rack0 = workers 0-3; rack1 survives and absorbs the work
        ctrl.fail_domain(engine, tree.domain("rack0"), at_ns=70_000.0,
                         downtime_ns=150_000.0)
        ctrl.arm()
        report = manager.run()
        assert report.job(handle.job_id).report.tasks_unrecovered == 0
        # the transient subtree rejoined as one correlated group
        rejoined = [f.rejoined_at for f in engine.supervisor.failures]
        assert rejoined and all(t == 220_000.0 for t in rejoined)

    def test_full_machine_outage_heals_and_terminates(self, compiled):
        # every Worker dark at once: tasks reclaimed during the outage
        # are recorded unrecovered (no survivors to retry on), anything
        # stranded on a dark queue runs after the heal, and the run
        # terminates instead of livelocking
        ft = FaultTolerancePolicy()
        sim, node, engine = build_engine(compiled, workers=4, ft=ft)
        manager = JobManager(engine)
        handle = manager.submit_job(graph_for(4))
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=2)
        ctrl.fail_domain(engine, tree.domain("rack0"), at_ns=70_000.0,
                         downtime_ns=150_000.0)
        ctrl.arm()
        report = manager.run()
        assert handle.finished
        outcome = report.job(handle.job_id)
        # bounded loss, full accounting: every task either ran or was
        # recorded as given up while the machine was dark
        assert outcome.report.tasks_unrecovered == len(
            engine.supervisor.unrecovered
        )
        done = sum(1 for item in handle.items if item.done.triggered)
        assert done == len(handle.items)
        assert report.makespan_ns > 220_000.0      # work resumed post-heal


# ----------------------------------------------------------------------
# speculative-retry races against later kills (satellite 3)
# ----------------------------------------------------------------------
class TestSpeculativeRaces:
    def test_speculative_duplicate_then_original_worker_dies(self, compiled):
        # aggressive timeout: long tasks get duplicated while still
        # running; killing Workers afterwards races the two completions
        ft = FaultTolerancePolicy(task_timeout_ns=60_000.0)
        sim, node, engine = build_engine(compiled, workers=4, ft=ft)
        manager = JobManager(engine)
        handle = manager.submit_job(graph_for(4, layers=4, width=8, seed=9))
        ctrl = ChaosController(sim, seed=3)
        ctrl.crash_worker(engine, 0, at_ns=150_000.0)
        ctrl.crash_worker(engine, 3, at_ns=180_000.0)
        ctrl.arm()
        report = manager.run()                 # must terminate, not hang
        outcome = report.job(handle.job_id)
        assert handle.finished
        # first completion wins; a duplicate never double-counts a task
        done = sum(1 for item in handle.items if item.done.triggered)
        assert done == len(handle.items)
        assert outcome.report.tasks_unrecovered == 0

    def test_speculative_records_stay_separate_from_crashes(self, compiled):
        ft = FaultTolerancePolicy(task_timeout_ns=30_000.0)
        sim, node, engine = build_engine(compiled, workers=2, ft=ft)
        manager = JobManager(engine)
        manager.submit_job(graph_for(2, layers=3, width=6, seed=11))
        manager.run()
        sup = engine.supervisor
        # timeouts landed on the speculative ledger, not the crash one
        assert all(not f.permanent for f in sup.speculative)
        assert all(f.detected_at is not None for f in sup.speculative)
        assert not sup.failures


# ----------------------------------------------------------------------
# the machine-wide retry budget (satellite: storms degrade, not livelock)
# ----------------------------------------------------------------------
class TestRetryBudget:
    def _storm(self, compiled, budget):
        ft = FaultTolerancePolicy(
            retry_budget=budget,
            retry_budget_window_ns=10_000_000.0,
            max_attempts=6,
        )
        sim, node, engine = build_engine(compiled, workers=4, ft=ft)
        manager = JobManager(engine)
        handle = manager.submit_job(graph_for(4, layers=6, width=10))
        tree = build_domain_tree(4)
        ctrl = ChaosController(sim, seed=4)
        # correlated storm: three of four Workers die permanently
        ctrl.fail_domain(engine, tree.domain("blade0"), at_ns=50_000.0)
        ctrl.crash_worker(engine, 2, at_ns=55_000.0)
        ctrl.arm()
        report = manager.run()
        return report, engine.supervisor, handle

    def test_exhausted_budget_degrades_to_recorded_loss(self, compiled):
        report, sup, handle = self._storm(compiled, budget=3)
        # the run terminated (no livelock) with the overflow recorded
        assert handle.finished
        assert sup.retries_denied > 0
        assert sup.tasks_retried <= 3
        outcome = report.job(handle.job_id)
        assert outcome.report.tasks_unrecovered == len(sup.unrecovered)
        assert outcome.report.tasks_unrecovered > 0

    def test_ample_budget_changes_nothing(self, compiled):
        unlimited, sup_u, _ = self._storm(compiled, budget=None)
        roomy, sup_r, _ = self._storm(compiled, budget=10_000)
        assert sup_r.retries_denied == 0
        assert sup_u.tasks_retried == sup_r.tasks_retried
        assert unlimited.makespan_ns == roomy.makespan_ns
