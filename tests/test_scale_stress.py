"""Scale stress: nothing degenerates on a large machine / big workload."""

import pytest

from repro.apps import make_layered_dag
from repro.core import ComputeNodeParams, FunctionRegistry, Machine, MachineParams
from repro.core.runtime import ClusterEngine
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel, stencil_kernel
from repro.sim import Simulator


@pytest.fixture(scope="module")
def compiled():
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for k in (saxpy_kernel(1024), stencil_kernel(1024)):
        registry.register(k)
        tool.compile(k, library, SynthesisConstraints(max_variants=1))
    return registry, library


def test_eight_node_cluster_run(compiled):
    """512 tasks over 8 nodes x 4 workers: completes, stays consistent."""
    registry, library = compiled
    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=8,
            node=ComputeNodeParams(num_workers=4),
            inter_node_fanouts=[2, 4],
        ),
    )
    engine = ClusterEngine(
        machine, registry, library, use_daemon=True, daemon_period_ns=200_000.0
    )
    graph = make_layered_dag(
        layers=8, width=64, num_workers=32,
        functions=("saxpy", "stencil5"), seed=41,
    )
    report = engine.run_graph(graph)
    assert report.tasks == 512
    assert report.sw_calls + report.hw_calls == 512
    assert report.makespan_ns > 0
    assert report.barriers == 7
    # every node did real work
    per_node = [r.sw_calls + r.hw_calls for r in report.node_reports]
    assert all(n > 0 for n in per_node)
    # conservation: no task double-counted
    assert sum(per_node) == 512
    # the simulation stayed deterministic and bounded
    assert machine.sim.events_processed > 1000


def test_large_machine_construction_fast():
    """A 512-worker machine builds and answers hierarchy queries."""
    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=64,
            node=ComputeNodeParams(num_workers=8, intra_fanout=4),
            inter_node_fanouts=[4, 4, 4],
        ),
    )
    assert machine.total_workers == 512
    assert machine.max_hop_distance() >= 8
    r = machine.world.allreduce(4096)
    assert r.rounds == 6


def test_repeat_run_deterministic(compiled):
    """Two identical cluster runs produce identical reports."""
    registry, library = compiled

    def run():
        machine = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=2)),
        )
        engine = ClusterEngine(machine, registry, library, use_daemon=False)
        graph = make_layered_dag(4, 8, 4, functions=("saxpy",), seed=13)
        return engine.run_graph(graph)

    a, b = run(), run()
    assert a.makespan_ns == b.makespan_ns
    assert a.sw_calls == b.sw_calls
    assert a.barrier_ns_total == b.barrier_ns_total
