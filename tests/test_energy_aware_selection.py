"""Tests for energy-aware device selection through the trained models
(the paper's 'execution time AND energy' model outputs, §4.2)."""

import numpy as np
import pytest

from repro.core.runtime import DeviceSelector, ExecutionHistory


def history_where_hw_slower_but_greener(n=30):
    """HW: slightly slower, 10x less energy -- the interesting regime."""
    hist = ExecutionHistory()
    rng = np.random.default_rng(5)
    for _ in range(n):
        items = int(rng.integers(100, 10000))
        hist.record(function="f", device="sw", worker=0, items=items,
                    latency_ns=5.0 * items, energy_pj=100.0 * items,
                    timestamp=0.0)
        hist.record(function="f", device="hw", worker=0, items=items,
                    latency_ns=6.0 * items, energy_pj=10.0 * items,
                    timestamp=0.0)
    return hist


def test_latency_only_picks_sw():
    sel = DeviceSelector(min_samples=5)
    sel.train(history_where_hw_slower_but_greener())
    assert sel.choose_device("f", 2000, energy_weight=0.0) == "sw"


def test_energy_weight_flips_to_hw():
    sel = DeviceSelector(min_samples=5)
    sel.train(history_where_hw_slower_but_greener())
    assert sel.choose_device("f", 2000, energy_weight=1.0) == "hw"


def test_intermediate_weight_crosses_over():
    sel = DeviceSelector(min_samples=5)
    sel.train(history_where_hw_slower_but_greener())
    choices = [
        sel.choose_device("f", 2000, energy_weight=w)
        for w in (0.0, 0.25, 0.5, 0.75, 1.0)
    ]
    assert choices[0] == "sw" and choices[-1] == "hw"
    # monotone: once it flips to hw it stays hw
    flipped = False
    for c in choices:
        if c == "hw":
            flipped = True
        elif flipped:
            pytest.fail(f"non-monotone choices {choices}")


def test_engine_accepts_energy_weight():
    """Plumbing check: the engine passes the weight to its schedulers."""
    from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
    from repro.core.runtime import ExecutionEngine
    from repro.hls import saxpy_kernel
    from repro.sim import Simulator

    registry = FunctionRegistry()
    registry.register(saxpy_kernel(1024))
    node = ComputeNode(Simulator(), ComputeNodeParams(num_workers=2))
    engine = ExecutionEngine(node, registry, energy_weight=0.7, use_daemon=False)
    assert all(s.energy_weight == 0.7 for s in engine.schedulers)
