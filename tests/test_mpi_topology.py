"""Unit tests for MPI process topologies."""

import pytest

from repro.mpi import CartTopology, GraphTopology


class TestCart:
    def test_size_and_roundtrip(self):
        t = CartTopology((3, 4))
        assert t.size == 12
        for rank in range(12):
            assert t.rank(t.coords(rank)) == rank

    def test_row_major_order(self):
        t = CartTopology((2, 3))
        assert t.coords(0) == (0, 0)
        assert t.coords(1) == (0, 1)
        assert t.coords(3) == (1, 0)

    def test_shift_open_boundary(self):
        t = CartTopology((1, 4))
        left, right = t.shift(0, dimension=1)
        assert left is None
        assert right == 1
        left, right = t.shift(3, dimension=1)
        assert left == 2
        assert right is None

    def test_shift_periodic(self):
        t = CartTopology((1, 4), periodic=(False, True))
        left, right = t.shift(0, dimension=1)
        assert left == 3
        assert right == 1

    def test_neighbours_interior(self):
        t = CartTopology((3, 3))
        assert t.neighbours(4) == [1, 3, 5, 7]

    def test_neighbours_corner(self):
        t = CartTopology((3, 3))
        assert t.neighbours(0) == [1, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            CartTopology(())
        with pytest.raises(ValueError):
            CartTopology((0, 2))
        with pytest.raises(ValueError):
            CartTopology((2, 2), periodic=(True,))
        t = CartTopology((2, 2))
        with pytest.raises(ValueError):
            t.coords(4)
        with pytest.raises(ValueError):
            t.rank((0,))
        with pytest.raises(ValueError):
            t.rank((5, 0))
        with pytest.raises(ValueError):
            t.shift(0, 5)


class TestGraph:
    def test_neighbours(self):
        g = GraphTopology({0: [1, 2], 1: [0], 2: [0]})
        assert g.size == 3
        assert g.neighbours(0) == [1, 2]
        assert g.degree(0) == 2

    def test_edges_deduplicated(self):
        g = GraphTopology({0: [1], 1: [0]})
        assert g.edges() == [(0, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphTopology({})
        with pytest.raises(ValueError):
            GraphTopology({0: [7]})
        g = GraphTopology({0: []})
        with pytest.raises(ValueError):
            g.neighbours(9)
