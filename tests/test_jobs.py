"""Tests for the three-layer runtime split: the scheduling-policy layer,
the session/job layer (JobManager, fair-share admission, MachineReport)
and the job-agnostic mechanism layer underneath.

The bit-identical guarantee for the legacy single-job path is covered
implicitly by every pre-existing runtime/chaos test (their expectations
were written against the monolithic engine); this module covers what is
*new*: pluggable per-job policies, concurrent tenants, fair shares, and
per-job accounting.
"""

import pytest

from repro.apps import make_layered_dag
from repro.chaos import graph_signature
from repro.core import ComputeNode, ComputeNodeParams
from repro.core.runtime import (
    POLICIES,
    DistributionPolicy,
    EnergyAwarePolicy,
    ExecutionEngine,
    GreedyHardwarePolicy,
    JobManager,
    JobRegistry,
    JobState,
    LocalityPolicy,
    MachineReport,
    PolicyConfig,
    make_policy,
)
from repro.presets import JOB_PRESETS, compiled_suite, job_preset
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


@pytest.fixture(scope="module")
def compiled():
    return compiled_suite(max_variants=1)


def build_engine(compiled, workers=4, **kw):
    registry, library = compiled
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    engine = ExecutionEngine(
        node, registry, library, use_daemon=True, daemon_period_ns=100_000.0,
        **kw,
    )
    return sim, node, engine


def graph_for(workers, layers=4, width=8, seed=7):
    return make_layered_dag(
        layers=layers, width=width, num_workers=workers,
        functions=FUNCTIONS, seed=seed,
    )


# ----------------------------------------------------------------------
# policy layer
# ----------------------------------------------------------------------
class TestPolicyLayer:
    def test_registry_has_three_builtin_policies(self):
        assert set(POLICIES) == {"greedy-hw", "energy", "locality"}
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("round-robin")

    def test_distribution_policy_is_the_shared_config(self):
        # the old scheduler/distributor constant duplication collapsed
        # into one dataclass; the legacy name stays constructible
        assert DistributionPolicy is PolicyConfig
        cfg = DistributionPolicy(load_penalty_ns=1e9, data_affinity_only=True)
        assert cfg.load_penalty_ns == 1e9
        assert cfg.remote_hop_penalty_ns == 10.0   # ex-scheduler constant
        assert cfg.remote_noc_bytes_per_ns == 4.0  # ex-scheduler constant

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PolicyConfig(remote_noc_bytes_per_ns=0.0)
        with pytest.raises(ValueError):
            PolicyConfig(energy_ns_per_pj=-1.0)

    def test_policies_share_config_instance(self):
        cfg = PolicyConfig(load_penalty_ns=123.0)
        for cls in (GreedyHardwarePolicy, EnergyAwarePolicy, LocalityPolicy):
            assert cls(cfg).config is cfg

    def test_same_graph_every_policy_same_results(self, compiled):
        """Property: the same seeded workload completes identically under
        every built-in policy -- placement and makespan may differ, the
        task *results* (workload signature, full completion) may not."""
        outcomes = {}
        for name in sorted(POLICIES):
            sim, node, engine = build_engine(compiled, policy=make_policy(name))
            graph = graph_for(4, seed=13)
            report = engine.run_graph(graph)
            outcomes[name] = (graph_signature(graph), report)
        signatures = {sig for sig, _ in outcomes.values()}
        assert len(signatures) == 1          # identical workload ran
        for name, (_, report) in outcomes.items():
            assert report.tasks == 32, name
            assert report.sw_calls + report.hw_calls >= report.tasks, name
            assert report.tasks_unrecovered == 0, name
            assert report.makespan_ns > 0, name

    def test_policies_actually_differ_in_placement(self, compiled):
        """The plugability is real: locality placement pins tasks to
        their data home, which the greedy default does not."""
        results = {}
        for name in ("greedy-hw", "locality"):
            sim, node, engine = build_engine(compiled, policy=make_policy(name))
            report = engine.run_graph(graph_for(4, seed=13))
            results[name] = report.placement_locality
        assert results["locality"] == 1.0
        assert results["locality"] >= results["greedy-hw"]


# ----------------------------------------------------------------------
# session/job layer
# ----------------------------------------------------------------------
class TestJobManager:
    def test_three_concurrent_jobs_distinct_policies(self, compiled):
        sim, node, engine = build_engine(compiled)
        manager = JobManager(engine)
        handles = [
            manager.submit_job(graph_for(4, seed=1), policy="greedy-hw", priority=2),
            manager.submit_job(graph_for(4, seed=2), policy="energy"),
            manager.submit_job(graph_for(4, seed=3), policy="locality"),
        ]
        report = manager.run()

        assert isinstance(report, MachineReport)
        assert len(report.jobs) == 3
        assert report.tasks == 3 * 32
        for handle in handles:
            assert handle.state is JobState.DONE
            assert handle.report is not None
            assert handle.report.tasks == 32
            assert handle.report.availability_ok
            assert handle.latency_ns > 0
        # distinct policies were actually recorded per job
        assert [j.policy for j in report.jobs] == ["greedy-hw", "energy", "locality"]
        # the machine interleaved them: every job overlapped the others
        assert all(h.started_at == 0.0 for h in handles)
        assert report.makespan_ns >= max(h.latency_ns for h in handles)

    def test_per_job_accounting_sums_to_machine_totals(self, compiled):
        sim, node, engine = build_engine(compiled)
        manager = JobManager(engine)
        manager.submit_job(graph_for(4, seed=1), policy="greedy-hw")
        manager.submit_job(graph_for(4, seed=2), policy="locality")
        report = manager.run()

        assert report.sw_calls == sum(s.sw_chosen for s in engine.schedulers)
        assert report.hw_calls == sum(s.hw_chosen for s in engine.schedulers)
        # worker-side tenant accounting covers the same calls
        by_job = {}
        for w in node.workers:
            for job_id, calls in w.calls_by_job.items():
                by_job[job_id] = by_job.get(job_id, 0) + calls
        assert sum(by_job.values()) == report.sw_calls + report.hw_calls
        assert set(by_job) == {1, 2}
        # history records carry the job dimension
        assert set(engine.history.call_counts_by_job()) == {1, 2}
        # the shared fabric's arbitration is observable per tenant
        util = engine.unilogic.utilization_by_job()
        assert sum(util.values()) == report.hw_calls

    def test_machine_report_deterministic_for_fixed_seed(self, compiled):
        def one_run():
            sim, node, engine = build_engine(compiled)
            manager = JobManager(engine)
            for i, policy in enumerate(("greedy-hw", "energy", "locality")):
                manager.submit_job(
                    graph_for(4, seed=10 + i), policy=policy, priority=i + 1
                )
            return manager.run()

        a, b = one_run(), one_run()
        assert a.json() == b.json()
        assert a.makespan_ns == b.makespan_ns
        assert 0.0 < a.fairness_index() <= 1.0

    def test_fair_share_admission_respects_priorities(self, compiled):
        sim, node, engine = build_engine(compiled, workers=2)
        manager = JobManager(engine, slots_per_worker=2)   # 4 slots total
        hi = manager.submit_job(graph_for(2, width=12, seed=4), priority=3)
        lo = manager.submit_job(graph_for(2, width=12, seed=5), priority=1)
        manager.run()

        assert hi.share == 3 and lo.share == 1
        assert 0 < hi.peak_in_flight <= hi.share
        assert 0 < lo.peak_in_flight <= lo.share

    def test_priority_weighting_speeds_up_the_heavy_tenant(self, compiled):
        def latencies(p1, p2):
            sim, node, engine = build_engine(compiled, workers=2)
            manager = JobManager(engine, slots_per_worker=2)
            a = manager.submit_job(graph_for(2, width=10, seed=6), priority=p1)
            b = manager.submit_job(graph_for(2, width=10, seed=8), priority=p2)
            manager.run()
            return a.latency_ns, b.latency_ns

        fair_a, fair_b = latencies(1, 1)
        fast_a, slow_b = latencies(3, 1)
        # tripling job A's weight must not slow it down; its competitor
        # bears the cost (weighted fair share, not strict priority)
        assert fast_a <= fair_a
        assert slow_b >= fair_b

    def test_policy_argument_forms(self, compiled):
        sim, node, engine = build_engine(compiled, workers=2)
        manager = JobManager(engine)
        by_name = manager.submit_job(graph_for(2, seed=1), policy="energy")
        by_instance = manager.submit_job(
            graph_for(2, seed=2), policy=LocalityPolicy(engine.policy_config)
        )
        default = manager.submit_job(graph_for(2, seed=3))
        assert by_name.policy.name == "energy"
        assert by_instance.policy.name == "locality"
        assert default.policy is engine.default_policy
        manager.run()
        assert all(
            h.state is JobState.DONE for h in (by_name, by_instance, default)
        )

    def test_submit_validation(self, compiled):
        sim, node, engine = build_engine(compiled, workers=2)
        manager = JobManager(engine)
        with pytest.raises(ValueError, match="priority"):
            manager.submit_job(graph_for(2), priority=0)
        with pytest.raises(KeyError, match="unknown policy"):
            manager.submit_job(graph_for(2), policy="nope")
        with pytest.raises(ValueError):
            JobManager(engine, slots_per_worker=0)

    def test_dataflow_jobs_supported(self, compiled):
        sim, node, engine = build_engine(compiled, workers=2)
        manager = JobManager(engine)
        h = manager.submit_job(graph_for(2, seed=9), dataflow=True)
        report = manager.run()
        assert h.state is JobState.DONE
        assert report.job(h.job_id).report.tasks == 32

    def test_registry_defaults_and_direct_submission(self, compiled):
        # untagged mechanism-level submissions land on the implicit job 0
        sim, node, engine = build_engine(compiled, workers=2)
        engine.start()
        items = engine.submit_layer(graph_for(2, layers=1, seed=3).tasks)
        engine.stop()
        sim.run()
        assert all(i.job_id == 0 for i in items)
        assert engine.jobs.record(0).tasks_done == len(items)

    def test_registry_unknown_job_resolves_to_default_policy(self):
        registry = JobRegistry(GreedyHardwarePolicy())
        rec = registry.record(99)
        assert rec.policy is registry.default_policy
        assert registry.policy(99).name == "greedy-hw"


# ----------------------------------------------------------------------
# presets / CLI surface
# ----------------------------------------------------------------------
class TestJobPresets:
    def test_every_mix_has_three_plus_jobs_with_distinct_policies(self):
        for name, mix in JOB_PRESETS.items():
            assert len(mix.jobs) >= 3, name
            assert len({spec.policy for spec in mix.jobs}) >= 3, name

    def test_job_preset_lookup(self):
        assert job_preset("mini") is JOB_PRESETS["mini"]
        with pytest.raises(KeyError, match="unknown job preset"):
            job_preset("nope")

    def test_mini_mix_runs_end_to_end(self, compiled):
        mix = job_preset("mini")
        sim, node, engine = build_engine(compiled, workers=2)
        manager = JobManager(engine)
        for spec in mix.jobs:
            graph = make_layered_dag(
                layers=spec.layers, width=spec.width, num_workers=2,
                functions=FUNCTIONS, seed=spec.graph_seed,
            )
            manager.submit_job(
                graph, policy=spec.policy, priority=spec.priority,
                dataflow=spec.dataflow,
            )
        report = manager.run()
        assert report.availability_ok
        assert len(report.jobs) == len(mix.jobs)
        assert report.tasks == sum(s.layers * s.width for s in mix.jobs)
