"""Unit tests for the Virtualization block (fine-grain sharing)."""

import pytest

from repro.fabric import AcceleratorModule, Bitstream, ResourceVector, VirtualizedAccelerator
from repro.sim import Simulator, spawn


def make_module(ii=1, depth=8, lanes=1):
    return AcceleratorModule(
        name="m",
        function="f",
        resources=ResourceVector(luts=100),
        bitstream=Bitstream.synthesize("m", 2, 0.5),
        initiation_interval=ii,
        pipeline_depth=depth,
        parallel_lanes=lanes,
    )


def run_calls(accel, sim, callers, items):
    results = []

    def proc(tag):
        inv = yield from accel.call(tag, items)
        results.append(inv)

    for c in callers:
        spawn(sim, proc(c))
    sim.run()
    return results


def test_single_call_latency_matches_module_model():
    sim = Simulator()
    m = make_module()
    accel = VirtualizedAccelerator(sim, m, pipelined=True)
    res = run_calls(accel, sim, ["a"], items=100)
    assert res[0].latency_ns == pytest.approx(m.latency_ns(100))


def test_pipelined_mode_overlaps_calls():
    sim = Simulator()
    m = make_module(depth=100)  # deep pipeline: drain is expensive
    pipelined = VirtualizedAccelerator(sim, m, pipelined=True)
    run_calls(pipelined, sim, [f"c{i}" for i in range(4)], items=50)
    t_pipelined = sim.now

    sim2 = Simulator()
    exclusive = VirtualizedAccelerator(sim2, make_module(depth=100), pipelined=False)
    run_calls(exclusive, sim2, [f"c{i}" for i in range(4)], items=50)
    t_exclusive = sim2.now

    assert t_pipelined < t_exclusive


def test_pipelined_throughput_beats_exclusive():
    sim = Simulator()
    m = make_module(depth=64)
    a = VirtualizedAccelerator(sim, m, pipelined=True)
    run_calls(a, sim, [f"c{i}" for i in range(8)], items=32)
    sim2 = Simulator()
    b = VirtualizedAccelerator(sim2, make_module(depth=64), pipelined=False)
    run_calls(b, sim2, [f"c{i}" for i in range(8)], items=32)
    assert a.throughput_items_per_us() > b.throughput_items_per_us()


def test_items_and_energy_accounted():
    sim = Simulator()
    accel = VirtualizedAccelerator(sim, make_module())
    run_calls(accel, sim, ["a", "b"], items=10)
    assert accel.items_processed == 20
    assert accel.energy_pj > 0
    assert len(accel.completed) == 2


def test_invalid_items_rejected():
    sim = Simulator()
    accel = VirtualizedAccelerator(sim, make_module())

    def proc():
        yield from accel.call("x", 0)

    spawn(sim, proc())
    with pytest.raises(ValueError):
        sim.run()


def test_mean_latency_empty_is_zero():
    sim = Simulator()
    accel = VirtualizedAccelerator(sim, make_module())
    assert accel.mean_latency_ns() == 0.0
    assert accel.throughput_items_per_us() == 0.0


def test_invocation_records_caller():
    sim = Simulator()
    accel = VirtualizedAccelerator(sim, make_module())
    res = run_calls(accel, sim, ["vm1"], items=5)
    assert res[0].caller == "vm1"
    assert res[0].inv_id >= 0
