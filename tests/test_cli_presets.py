"""Unit tests for presets and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.presets import (
    board_node,
    chassis_node,
    compiled_suite,
    exascale_machine,
    hpc_worker,
    petascale_machine,
    standard_kernel_suite,
    zynq_worker,
)
from repro.presets import testbench_machine as _testbench_machine


class TestPresets:
    def test_worker_presets_differ(self):
        z, h = zynq_worker(), hpc_worker()
        assert h.cpu_cores > z.cpu_cores
        assert h.dram.bandwidth_gbps > z.dram.bandwidth_gbps
        assert h.fabric_regions > z.fabric_regions

    def test_node_presets(self):
        b = board_node()
        c = chassis_node()
        assert c.num_workers > b.num_workers
        assert c.intra_fanout is not None

    def test_machine_presets_scale(self):
        from repro.core import Machine
        from repro.sim import Simulator

        small = Machine(Simulator(), _testbench_machine())
        peta = Machine(Simulator(), petascale_machine())
        assert peta.total_workers > small.total_workers
        # exascale preset is structurally valid (don't build all 64 nodes)
        exa = exascale_machine()
        assert exa.num_nodes == 64
        product = 1
        for f in exa.inter_node_fanouts:
            product *= f
        assert product == 64

    def test_kernel_suite_complete(self):
        names = {k.name for k in standard_kernel_suite()}
        assert names == {
            "vecadd", "saxpy", "stencil5", "matmul", "fir32",
            "montecarlo", "cart_split",
        }

    def test_compiled_suite(self):
        registry, library = compiled_suite(max_variants=1)
        for kernel in standard_kernel_suite():
            assert kernel.name in registry
            assert kernel.name in library


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("info", "machine", "power", "demo"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.core" in out

    def test_machine(self, capsys):
        assert main(["machine", "--nodes", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "max worker-to-worker hop distance" in out

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "Tianhe-2" in out and "MW" in out

    def test_demo(self, capsys):
        assert main(["demo", "--workers", "2", "--layers", "2", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "NOPE"]) == 2
        out = capsys.readouterr().out
        assert "unknown experiment" in out
        assert "CLAIM-COMPRESS" in out

    def test_experiment_runs_bench(self):
        # the cheapest experiment end to end through the CLI wrapper
        assert main(["experiment", "claim-gw"]) == 0


class TestTelemetryCommands:
    def test_cli_preset_choices_match_registry(self):
        """The hardcoded argparse choices must track NODE_PRESETS."""
        from repro.cli import build_parser
        from repro.presets import NODE_PRESETS

        parser = build_parser()
        args = parser.parse_args(["trace", "mini"])
        assert args.preset == "mini"
        sub = next(
            a for a in parser._subparsers._group_actions[0].choices["trace"]._actions
            if a.dest == "preset"
        )
        assert sorted(sub.choices) == sorted(NODE_PRESETS)

    def test_trace_rejects_unknown_preset_before_running(self):
        with pytest.raises(SystemExit):
            main(["trace", "no-such-preset"])

    def test_trace_writes_valid_outputs(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace, validate_event

        trace = tmp_path / "t.json"
        events = tmp_path / "e.json"
        rc = main([
            "trace", "mini", "--layers", "2", "--width", "4",
            "--out", str(trace), "--events-out", str(events),
        ])
        assert rc == 0
        assert validate_chrome_trace(trace.read_text()) > 0
        for ev in json.loads(events.read_text()):
            validate_event(ev)

    def test_metrics_csv_to_stdout(self, capsys):
        rc = main(["metrics", "mini", "--layers", "2", "--width", "4",
                   "--format", "csv"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "," in l]
        assert lines[0] == "metric,value"
        # metric names are clean single-comma rows (link names sanitized)
        for line in lines[1:]:
            name, value = line.split(",")
            float(value)


class TestJobsCommand:
    def test_cli_job_preset_choices_match_registry(self):
        """The hardcoded argparse choices must track JOB_PRESETS."""
        from repro.cli import build_parser
        from repro.presets import JOB_PRESETS

        parser = build_parser()
        args = parser.parse_args(["jobs", "mini"])
        assert args.preset == "mini"
        sub = next(
            a for a in parser._subparsers._group_actions[0].choices["jobs"]._actions
            if a.dest == "preset"
        )
        assert sorted(sub.choices) == sorted(JOB_PRESETS)

    def test_jobs_rejects_unknown_preset_before_running(self):
        with pytest.raises(SystemExit):
            main(["jobs", "no-such-mix"])

    def test_jobs_writes_valid_machine_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "jobs.json"
        assert main(["jobs", "mini", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert len(report["jobs"]) == 3
        assert report["tasks"] == sum(j["tasks"] for j in report["jobs"])
        assert report["tasks_unrecovered"] == 0
        text = capsys.readouterr().out
        assert "fairness" in text and "greedy-hw" in text


class TestServeCommand:
    def test_cli_serve_preset_choices_match_registry(self):
        """The hardcoded argparse choices must track SERVING_PRESETS."""
        from repro.cli import build_parser
        from repro.presets import SERVING_PRESETS

        parser = build_parser()
        args = parser.parse_args(["serve", "--preset", "flash-crowd"])
        assert args.preset == "flash-crowd"
        sub = next(
            a for a in parser._subparsers._group_actions[0].choices["serve"]._actions
            if a.dest == "preset"
        )
        assert sorted(sub.choices) == sorted(SERVING_PRESETS)

    def test_serve_rejects_unknown_preset_before_running(self):
        with pytest.raises(SystemExit):
            main(["serve", "--preset", "no-such-scenario"])

    def test_serve_writes_valid_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "serve.json"
        assert main(["serve", "--preset", "steady", "--seed", "7",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["unrecovered"] == 0
        assert report["autoscaler"]["regions_configured"] >= 1
        for tenant in report["tenants"].values():
            for key in ("p50", "p95", "p99"):
                assert key in tenant["latency_ns"]
        text = capsys.readouterr().out
        assert "autoscaler" in text and "goodput" in text
