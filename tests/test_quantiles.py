"""Tests for the shared latency-statistics helpers in
``repro.telemetry.quantiles`` and their adoption by the histogram, the
execution history and the machine report (the former duplicated math)."""

import random

import pytest

from repro.sim.stats import Histogram
from repro.telemetry import (
    StreamingQuantile,
    histogram_percentile,
    latency_summary,
    mean,
    percentile,
)


class TestMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_accepts_any_iterable(self):
        assert mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_singleton(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_linear_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 25.0) == pytest.approx(1.75)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 5.0

    def test_does_not_mutate_input(self):
        data = [3.0, 1.0, 2.0]
        percentile(data, 50.0)
        assert data == [3.0, 1.0, 2.0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestHistogramPercentile:
    def test_empty_is_zero(self):
        assert histogram_percentile([0.0, 1.0], [0], 0, 0, 50.0) == 0.0

    def test_midpoint_convention(self):
        # two bins [0,10) and [10,20), one count each: p25 lands in the
        # first bin (midpoint 5), p75 in the second (midpoint 15)
        edges, counts = [0.0, 10.0, 20.0], [1, 1]
        assert histogram_percentile(edges, counts, 0, 0, 25.0) == 5.0
        assert histogram_percentile(edges, counts, 0, 0, 75.0) == 15.0

    def test_underflow_and_overflow(self):
        edges, counts = [0.0, 10.0], [0]
        assert histogram_percentile(edges, counts, 3, 0, 50.0) == 0.0
        assert histogram_percentile(edges, counts, 0, 3, 99.0) == 10.0

    def test_histogram_class_delegates(self):
        h = Histogram([float(e) for e in range(0, 110, 10)])
        values = [3.0, 14.0, 25.0, 47.0, 88.0, 150.0, -2.0]
        for v in values:
            h.record(v)
        for p in (10.0, 50.0, 90.0, 99.0):
            assert h.percentile(p) == histogram_percentile(
                h.edges, h.counts, h.underflow, h.overflow, p
            )


class TestStreamingQuantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingQuantile(0.0)
        with pytest.raises(ValueError):
            StreamingQuantile(1.0)

    def test_empty_is_zero(self):
        assert StreamingQuantile(0.5).value == 0.0

    def test_exact_below_six_samples(self):
        sq = StreamingQuantile(0.5)
        for v in (5.0, 1.0, 3.0):
            sq.record(v)
        assert sq.count == 3
        assert sq.value == percentile([5.0, 1.0, 3.0], 50.0)

    def test_deterministic(self):
        rng = random.Random("quantile-stream")
        stream = [rng.expovariate(1.0) for _ in range(500)]
        a, b = StreamingQuantile(0.99), StreamingQuantile(0.99)
        for v in stream:
            a.record(v)
            b.record(v)
        assert a.value == b.value

    def test_converges_near_exact(self):
        rng = random.Random(1234)
        stream = [rng.uniform(0.0, 1000.0) for _ in range(2000)]
        sq = StreamingQuantile(0.95)
        for v in stream:
            sq.record(v)
        exact = percentile(stream, 95.0)
        # P^2 is an estimator; on a well-behaved stream it should land
        # within a few percent of the exact sample percentile
        assert abs(sq.value - exact) / exact < 0.05

    def test_single_sample_is_that_sample(self):
        sq = StreamingQuantile(0.99)
        sq.record(42.0)
        assert sq.count == 1
        assert sq.value == 42.0

    def test_exact_to_estimator_handoff_at_small_n(self):
        # below the five-marker threshold the value is the exact sample
        # percentile; from the sixth sample on the P^2 markers take over
        # and must stay inside the observed range
        stream = [9.0, 2.0, 7.0, 4.0, 11.0]
        sq = StreamingQuantile(0.5)
        for i, v in enumerate(stream):
            sq.record(v)
            assert sq.value == percentile(stream[: i + 1], 50.0)
        sq.record(5.0)
        assert min(stream + [5.0]) <= sq.value <= max(stream + [5.0])


class TestLatencySummary:
    def test_empty_all_zero(self):
        s = latency_summary([])
        assert s == {
            "count": 0.0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_default_keys_and_values(self):
        values = [float(v) for v in range(1, 101)]
        s = latency_summary(values)
        assert s["count"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["max"] == 100.0
        assert s["p50"] == percentile(values, 50.0)
        assert s["p99"] == percentile(values, 99.0)

    def test_fractional_percentile_label(self):
        s = latency_summary([1.0, 2.0], percentiles=(99.9,))
        assert "p99_9" in s


class TestBurnRateWindows:
    """The sliding burn-rate windows the SLO alerter builds on: edge
    cases (empty, single sample) and replayed-stream determinism."""

    def make(self, window_ns=100.0, threshold=5.0):
        from repro.serving.alerts import _WindowState

        return _WindowState(window_ns, threshold)

    def test_empty_window_burn_is_zero(self):
        assert self.make().burn(budget=0.05) == 0.0

    def test_single_sample(self):
        w = self.make()
        w.observe(0.0, True)
        assert len(w.samples) == 1
        assert w.burn(budget=0.1) == pytest.approx(10.0)  # rate 1 / 0.1

    def test_boundary_sample_is_pruned(self):
        w = self.make(window_ns=100.0)
        w.observe(0.0, True)
        w.observe(100.0, False)          # ts - window == 0.0: pruned
        assert w.violations == 0
        assert len(w.samples) == 1

    def test_replayed_stream_is_deterministic(self):
        from repro.serving.alerts import BurnRateAlerter, BurnRatePolicy

        rng = random.Random("burn-replay")
        stream = [
            (float(i), "t", rng.uniform(0.0, 200.0), 100.0)
            for i in range(300)
        ]

        def run():
            a = BurnRateAlerter(BurnRatePolicy(
                target=0.9, fast_window_ns=20.0, fast_burn=5.0,
                slow_window_ns=120.0, slow_burn=2.0, min_completions=5,
            ))
            for ts, tenant, latency, slo in stream:
                a.observe(ts, tenant, latency, slo)
            return a.timeline

        first, second = run(), run()
        assert first == second
        assert any(e["event"] == "fire" for e in first)
        assert any(e["event"] == "clear" for e in first)


class TestSharedAdoption:
    """The former duplicates now route through the shared helpers."""

    def test_history_latency_summary(self):
        from repro.core.runtime import ExecutionHistory

        h = ExecutionHistory()
        for i, lat in enumerate((100.0, 200.0, 300.0)):
            h.record(function="saxpy", device="sw", worker=0, items=64,
                     latency_ns=lat, energy_pj=1.0, timestamp=float(i))
        s = h.latency_summary(function="saxpy")
        assert s == latency_summary([100.0, 200.0, 300.0])
        assert h.latency_summary(function="nope")["count"] == 0.0

    def test_history_mean_latency_matches_mean(self):
        from repro.core.runtime import ExecutionHistory

        h = ExecutionHistory()
        h.record(function="f", device="sw", worker=0, items=1,
                 latency_ns=10.0, energy_pj=1.0, timestamp=0.0)
        h.record(function="f", device="sw", worker=0, items=1,
                 latency_ns=30.0, energy_pj=3.0, timestamp=0.0)
        assert h.mean_latency("f", "sw") == pytest.approx(mean([10.0, 30.0]))
        assert h.mean_latency("f", "hw") is None   # empty stays None
