"""Unit tests for cluster-scope (NODE_GLOBAL) buffers."""

import numpy as np
import pytest

from repro.core import ComputeNodeParams, Machine, MachineParams
from repro.opencl import ClusterContext, DataScope
from repro.sim import Simulator


def make_cluster(nodes=4, workers=2):
    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=nodes, node=ComputeNodeParams(num_workers=workers)
        ),
    )
    return machine, ClusterContext(machine)


class TestClusterContext:
    def test_one_context_per_node(self):
        machine, cluster = make_cluster(3)
        assert len(cluster) == 3
        assert cluster.context(2).platform.node is machine.node(2)
        with pytest.raises(IndexError):
            cluster.context(9)

    def test_create_buffer_node_global_scope(self):
        _, cluster = make_cluster()
        buf = cluster.create_buffer(1, 4096, dtype=np.float32)
        assert buf.scope is DataScope.NODE_GLOBAL
        assert cluster.node_of(buf) == 1

    def test_node_of_foreign_buffer_rejected(self):
        _, a = make_cluster()
        _, b = make_cluster()
        buf = a.create_buffer(0, 1024)
        with pytest.raises(ValueError):
            b.node_of(buf)


class TestClusterCopy:
    def test_cross_node_copy_moves_data_and_costs_mpi(self):
        machine, cluster = make_cluster()
        src = cluster.create_buffer(0, 4096, dtype=np.float32)
        dst = cluster.create_buffer(3, 4096, dtype=np.float32)
        src.array[:] = 42.0
        lat, energy = cluster.copy(src, dst)
        np.testing.assert_allclose(dst.array, 42.0)
        assert lat > 0 and energy > 0
        assert cluster.inter_node_transfers == 1
        assert machine.ledger.total_pj("cluster.mpi") > 0

    def test_same_node_copy_stays_on_noc(self):
        machine, cluster = make_cluster()
        src = cluster.create_buffer(0, 4096, affinity_worker=0, dtype=np.float32)
        dst = cluster.create_buffer(0, 4096, affinity_worker=1, dtype=np.float32)
        lat, _ = cluster.copy(src, dst)
        assert cluster.inter_node_transfers == 0  # never left the node
        assert lat > 0

    def test_cross_node_costlier_than_intra_node(self):
        _, cluster = make_cluster()
        a0 = cluster.create_buffer(0, 8192, 0, dtype=np.float32)
        a1 = cluster.create_buffer(0, 8192, 1, dtype=np.float32)
        b = cluster.create_buffer(3, 8192, 0, dtype=np.float32)
        intra, _ = cluster.copy(a0, a1)
        inter, _ = cluster.copy(a0, b)
        assert inter > intra  # the hierarchy's cost cliff

    def test_size_mismatch_rejected(self):
        _, cluster = make_cluster()
        a = cluster.create_buffer(0, 1024)
        b = cluster.create_buffer(1, 2048)
        with pytest.raises(ValueError):
            cluster.copy(a, b)


class TestClusterCollectives:
    def test_broadcast_replicates_everywhere(self):
        _, cluster = make_cluster(4)
        src = cluster.create_buffer(1, 1024, dtype=np.float32)
        src.array[:] = 7.0
        replicas, result = cluster.broadcast(src)
        assert len(replicas) == 4
        assert replicas[1] is src
        for i, rep in enumerate(replicas):
            np.testing.assert_allclose(rep.array, 7.0)
            assert cluster.node_of(rep) == i
        assert result.rounds == 2  # binomial over 4 nodes
        assert result.bytes_moved == 3 * 1024

    def test_gather_sum(self):
        _, cluster = make_cluster(3)
        parts = []
        for n in range(3):
            buf = cluster.create_buffer(n, 1024, dtype=np.float32)
            buf.array[:] = float(n + 1)
            parts.append(buf)
        total, result = cluster.gather_sum(parts)
        np.testing.assert_allclose(total, 6.0)
        assert result.name == "allreduce"

    def test_gather_sum_validation(self):
        _, cluster = make_cluster(2)
        with pytest.raises(ValueError):
            cluster.gather_sum([])
        a = cluster.create_buffer(0, 1024, dtype=np.float32)
        b = cluster.create_buffer(1, 2048, dtype=np.float32)
        with pytest.raises(ValueError):
            cluster.gather_sum([a, b])
