"""Tests for the asyncio daemon shell and the synchronous client: NDJSON
over a unix socket, the minimal HTTP bridge (/metrics, /status, /rpc),
malformed-input replies over the wire, and clean shutdown."""

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.service import ServiceClient, ServiceSession
from repro.service.client import ServiceClientError
from repro.service.daemon import ServiceDaemon


@pytest.fixture
def daemon(tmp_path):
    """One live daemon on a unix socket and an OS-assigned HTTP port."""
    session = ServiceSession(
        telemetry=True, warm=False, snapshot_dir=str(tmp_path / "snaps")
    )
    sock = str(tmp_path / "repro.sock")
    d = ServiceDaemon(session, socket_path=sock, http_port=0)
    thread = threading.Thread(target=asyncio.run, args=(d.serve(),), daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if d.bound_http_port is not None:
            break
        time.sleep(0.02)
    assert d.bound_http_port is not None, "daemon did not come up"
    d.test_thread = thread
    d.test_socket_path = sock
    yield d
    if not session.closed:
        with ServiceClient(socket_path=sock) as client:
            client.command("shutdown")
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestUnixSocket:
    def test_scripted_session_over_the_socket(self, daemon):
        with ServiceClient(socket_path=daemon.test_socket_path) as client:
            reply = client.command("ping")
            assert reply["ok"] and reply["pong"]
            reply = client.command(
                "submit", kind="serving", preset="steady", seed=0
            )
            assert reply["ok"] and reply["key"] == "serving:steady:0#0"
            reply = client.command("step", windows=2)
            assert reply["ok"] and reply["now_ns"] == 200_000.0
            reply = client.command("metrics")
            assert reply["ok"] and "# TYPE" in reply["text"]
            reply = client.command("events")
            assert reply["ok"] and reply["cursor"] > 0
            reply = client.command("reconfigure", max_batch=4)
            assert reply["ok"] and reply["applied"]["max_batch"] == 4
            reply = client.command("drain")
            assert reply["ok"] and reply["drained"]
            reply = client.command("report")
            assert reply["ok"] and json.loads(reply["report"])["scenario"]

    def test_request_ids_ride_the_wire(self, daemon):
        with ServiceClient(socket_path=daemon.test_socket_path) as client:
            assert client.request({"cmd": "ping", "id": 41})["id"] == 41

    def test_malformed_lines_get_structured_error_replies(self, daemon):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10.0)
        raw.connect(daemon.test_socket_path)
        fh = raw.makefile("rb")
        try:
            for line, code in [
                (b"{not json\n", "bad-json"),
                (b"[]\n", "bad-frame"),
                (b'{"cmd": "warp"}\n', "unknown-command"),
            ]:
                raw.sendall(line)
                reply = json.loads(fh.readline())
                assert reply["ok"] is False and reply["error"] == code
            # the connection survives bad frames
            raw.sendall(b'{"cmd": "ping"}\n')
            assert json.loads(fh.readline())["ok"]
        finally:
            fh.close()
            raw.close()

    def test_client_validates_frames_before_sending(self, daemon):
        with ServiceClient(socket_path=daemon.test_socket_path) as client:
            from repro.service import ProtocolError

            with pytest.raises(ProtocolError):
                client.command("definitely-not-a-command")

    def test_client_script_helper_stops_after_shutdown(self, daemon):
        with ServiceClient(socket_path=daemon.test_socket_path) as client:
            replies = client.script([
                {"cmd": "ping"},
                {"cmd": "status"},
                {"cmd": "shutdown"},
                {"cmd": "ping"},  # never sent: the daemon is gone
            ])
        assert len(replies) == 3
        assert replies[2]["closed"]
        daemon.test_thread.join(timeout=10.0)
        assert not daemon.test_thread.is_alive()


class TestHttp:
    def test_rpc_bridge(self, daemon):
        with ServiceClient(port=daemon.bound_http_port) as client:
            reply = client.command("ping")
            assert reply["ok"] and reply["pong"]
            reply = client.command("submit", kind="jobs", preset="mini", seed=0)
            assert reply["ok"]
            reply = client.command("run")
            assert reply["ok"] and reply["state"] == "idle"

    def test_status_endpoint(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.bound_http_port)
        conn.request("GET", "/status")
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        conn.close()
        assert resp.status == 200
        assert payload["ok"] and payload["state"] == "idle"

    def test_metrics_is_503_while_idle_then_prometheus_text(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.bound_http_port)
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        body = resp.read().decode()
        conn.close()
        assert resp.status == 503 and "no-workload" in body

        with ServiceClient(socket_path=daemon.test_socket_path) as client:
            assert client.command(
                "submit", kind="serving", preset="steady", seed=0
            )["ok"]
            assert client.command("step", windows=1)["ok"]
        conn = http.client.HTTPConnection("127.0.0.1", daemon.bound_http_port)
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        body = resp.read().decode()
        conn.close()
        assert resp.status == 200
        assert resp.getheader("Content-Type", "").startswith("text/plain")
        assert "# TYPE" in body

    def test_unknown_path_is_404(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.bound_http_port)
        conn.request("GET", "/nope")
        resp = conn.getresponse()
        resp.read()
        conn.close()
        assert resp.status == 404


class TestClientErrors:
    def test_cannot_connect_is_a_client_error(self, tmp_path):
        client = ServiceClient(socket_path=str(tmp_path / "absent.sock"))
        with pytest.raises(ServiceClientError):
            client.command("ping")

    def test_needs_an_address(self):
        with pytest.raises(ValueError):
            ServiceClient()
