"""Unit tests for cross-node UNIMEM access with progressive translation."""

import pytest

from repro.core import ComputeNodeParams, Machine, MachineParams
from repro.sim import Simulator


def make_machine(nodes=4, fanouts=None, workers=2):
    return Machine(
        Simulator(),
        MachineParams(
            num_nodes=nodes,
            node=ComputeNodeParams(num_workers=workers),
            inter_node_fanouts=fanouts,
        ),
    )


class TestClusterTranslator:
    def test_depth_matches_hierarchy(self):
        flat = make_machine(4, fanouts=[4])
        deep = make_machine(8, fanouts=[2, 2, 2])
        assert len(deep.cluster_translator().steps) > len(
            flat.cluster_translator().steps
        )

    def test_local_address_free(self):
        machine = make_machine()
        tr = machine.cluster_translator()
        _, lat, applied = tr.translate(0x100)
        assert lat == 0.0 and applied == []

    def test_top_alias_costs_full_depth(self):
        machine = make_machine(8, fanouts=[2, 2, 2])
        tr = machine.cluster_translator()
        addr = len(tr.steps) * (1 << 30)
        _, lat, applied = tr.translate(addr)
        assert len(applied) == len(tr.steps)
        assert lat > 0


class TestCrossNodeAccess:
    def test_same_node_delegates_to_intra_fabric(self):
        from repro.interconnect import TransactionType

        machine = make_machine()
        lat, energy = machine.cross_node_access_cost(0, 0, 0, 1, 4096)
        intra, _ = machine.node(0).transfer_cost(
            0, 1, 4096, TransactionType.LOAD
        )
        # second call re-accounts, but the cost formula matches
        assert lat == pytest.approx(intra)

    def test_cross_node_costlier_than_intra(self):
        machine = make_machine()
        intra, _ = machine.cross_node_access_cost(0, 0, 0, 1, 4096)
        inter, _ = machine.cross_node_access_cost(0, 0, 3, 1, 4096)
        assert inter > intra

    def test_translation_overhead_grows_with_depth(self):
        shallow = make_machine(4, fanouts=[4])
        deep = make_machine(8, fanouts=[2, 2, 2])
        lat_s, _ = shallow.cross_node_access_cost(0, 0, 3, 0, 64)
        lat_d, _ = deep.cross_node_access_cost(0, 0, 7, 0, 64)
        # deeper machine: more translation steps and more tree hops
        assert lat_d > lat_s

    def test_energy_ledger_charged(self):
        machine = make_machine()
        machine.cross_node_access_cost(0, 0, 2, 1, 4096)
        assert machine.ledger.total_pj("cluster.unimem") > 0
