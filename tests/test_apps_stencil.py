"""Unit tests for the stencil workload and decomposition."""

import numpy as np
import pytest

from repro.apps import (
    StencilDecomposition,
    decompose_grid,
    halo_pairs,
    jacobi_reference,
    jacobi_step,
)


class TestJacobi:
    def test_step_preserves_boundary(self):
        g = jacobi_reference(8, 0)
        out = jacobi_step(g)
        np.testing.assert_array_equal(out[0, :], g[0, :])
        np.testing.assert_array_equal(out[-1, :], g[-1, :])

    def test_heat_diffuses_inward(self):
        g = jacobi_reference(16, 50)
        assert g[1, 8] > 0  # interior warmed by the hot edge
        assert g[1, 8] < 100.0

    def test_converges_toward_laplace(self):
        few = jacobi_reference(12, 5)
        many = jacobi_reference(12, 500)
        more = jacobi_step(many)
        # residual shrinks with iterations
        assert np.abs(more - many).max() < np.abs(jacobi_step(few) - few).max()

    def test_validation(self):
        with pytest.raises(ValueError):
            jacobi_step(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            jacobi_step(np.zeros(5))
        with pytest.raises(ValueError):
            jacobi_reference(2, 1)

    def test_deterministic(self):
        np.testing.assert_array_equal(jacobi_reference(10, 10), jacobi_reference(10, 10))


class TestDecomposition:
    def test_decompose_squarest(self):
        d = decompose_grid(64, 12)
        assert (d.py, d.px) == (3, 4)
        assert d.num_subdomains == 12

    def test_decompose_prime(self):
        d = decompose_grid(64, 7)
        assert (d.py, d.px) == (1, 7)

    def test_shapes_cover_grid(self):
        d = decompose_grid(65, 4)  # uneven split
        total = 0
        for i in range(d.num_subdomains):
            r, c = d.subdomain_shape(i)
            total += r * c
        assert total == 65 * 65

    def test_coords_roundtrip(self):
        d = decompose_grid(64, 6)
        for i in range(6):
            iy, ix = d.coords(i)
            assert d.index(iy, ix) == i

    def test_halo_bytes_axis_dependent(self):
        d = StencilDecomposition(n=64, py=2, px=2, elem_bytes=8)
        assert d.halo_bytes(0, 1) == 32 * 8  # vertical edge, 32 rows
        assert d.halo_bytes(0, 2) == 32 * 8  # horizontal edge, 32 cols

    def test_halo_bytes_nonneighbours_rejected(self):
        d = StencilDecomposition(n=64, py=2, px=2)
        with pytest.raises(ValueError):
            d.halo_bytes(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            StencilDecomposition(n=2, py=4, px=1)
        with pytest.raises(ValueError):
            decompose_grid(64, 0)

    def test_halo_pairs_count(self):
        d = StencilDecomposition(n=64, py=3, px=4)
        pairs = halo_pairs(d)
        # grid graph edges: py*(px-1) + (py-1)*px
        assert len(pairs) == 3 * 3 + 2 * 4
        # undirected, unique
        assert len({(a, b) for a, b, _ in pairs}) == len(pairs)
