"""Tests for degraded-mode serving: the brownout latch, priority-floor
shedding, deadline stretch, autoscaler/alerter coupling, and the
byte-identity of disabled-mode serving reports."""

import pytest

from repro.serving import (
    BROWNOUT,
    BrownoutController,
    BrownoutPolicy,
    BurnRateAlerter,
    run_serving_experiment,
)
from repro.sim import Simulator


class TestBrownoutPolicy:
    def test_defaults(self):
        policy = BrownoutPolicy()
        assert policy.priority_floor == 2
        assert policy.deadline_stretch == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(priority_floor=0)
        with pytest.raises(ValueError):
            BrownoutPolicy(deadline_stretch=0.5)


class TestBrownoutController:
    def _controller(self):
        sim = Simulator()
        return sim, BrownoutController(BrownoutPolicy(), sim)

    def test_enter_exit_latch(self):
        sim, ctrl = self._controller()
        assert not ctrl.active
        ctrl.enter("domain:rack0")
        assert ctrl.active and ctrl.reason == "domain:rack0"
        ctrl.exit()
        assert not ctrl.active and ctrl.reason is None
        assert [e["event"] for e in ctrl.timeline] == ["enter", "exit"]
        assert ctrl.entries == 1

    def test_nested_outages_are_one_brownout(self):
        sim, ctrl = self._controller()
        ctrl.enter("domain:blade0")
        ctrl.enter("domain:blade1")      # second concurrent outage
        assert ctrl.entries == 1         # still one degraded window
        ctrl.exit()
        assert ctrl.active               # blade1 still down
        ctrl.exit()
        assert not ctrl.active
        assert len(ctrl.timeline) == 2

    def test_spurious_exit_is_ignored(self):
        _, ctrl = self._controller()
        ctrl.exit()
        assert not ctrl.active and not ctrl.timeline

    def test_should_shed_respects_the_priority_floor(self):
        _, ctrl = self._controller()
        assert not ctrl.should_shed(1)          # healthy: never shed
        ctrl.enter("x")
        assert ctrl.should_shed(1)              # batch below the floor
        assert not ctrl.should_shed(2)          # interactive at the floor
        assert not ctrl.should_shed(3)

    def test_wait_stretch_only_while_degraded(self):
        _, ctrl = self._controller()
        assert ctrl.wait_stretch() == 1.0
        ctrl.enter("x")
        assert ctrl.wait_stretch() == 2.0
        ctrl.exit()
        assert ctrl.wait_stretch() == 1.0

    def test_degraded_ns_accumulates_sim_time(self):
        sim, ctrl = self._controller()
        sim.schedule(100.0, ctrl.enter, "x")
        sim.schedule(350.0, ctrl.exit)
        sim.run()
        assert ctrl.degraded_ns == 250.0
        assert ctrl.report_block()["degraded_ns"] == 250.0

    def test_open_window_counts_in_the_report(self):
        sim, ctrl = self._controller()
        sim.schedule(100.0, ctrl.enter, "x")
        sim.schedule(400.0, lambda: None)   # advance the clock, stay degraded
        sim.run()
        block = ctrl.report_block()
        assert block["active"] is True
        assert block["degraded_ns"] == 300.0
        assert ctrl.degraded_ns == 0.0      # closed-window total unchanged

    def test_listeners_see_every_transition(self):
        sim, ctrl = self._controller()
        seen = []
        ctrl.listeners.append(lambda active, reason, ts: seen.append((active, reason)))
        ctrl.enter("a")
        ctrl.enter("b")                      # nested: no transition
        ctrl.exit()
        ctrl.exit()
        assert seen == [(True, "a"), (False, "a")]


class TestAlerterCoupling:
    def test_note_degraded_lands_on_the_alert_timeline(self):
        alerter = BurnRateAlerter()
        alerter.note_degraded(True, "domain:rack0", 1_000.0)
        alerter.note_degraded(False, "domain:rack0", 5_000.0)
        events = [e for e in alerter.timeline if e["window"] == "degraded"]
        assert [e["event"] for e in events] == ["degraded-enter", "degraded-exit"]
        assert events[0]["tenant"] == "*"
        assert events[0]["ts"] == 1_000.0


KILL = ("rack0", 150_000.0, 120_000.0)


class TestDegradedServing:
    def test_brownout_sheds_batch_keeps_interactive(self):
        report = run_serving_experiment(
            "steady", seed=0, brownout=BrownoutPolicy(), domain_kill=KILL
        )
        block = report.degraded
        assert block["entries"] == 1
        assert block["shed"] > 0
        assert block["active"] is False
        assert block["degraded_ns"] == 120_000.0
        assert [e["event"] for e in block["timeline"]] == ["enter", "exit"]
        assert block["timeline"][0]["reason"] == "domain:rack0"
        # only the batch tenant (priority 1 < floor 2) was shed for
        # brownout; the interactive tier kept its admission path
        batch = report.tenants["batch"]
        interactive = report.tenants["interactive"]
        assert batch["shed"].get(BROWNOUT, 0) == block["shed"]
        assert BROWNOUT not in interactive.get("shed", {})
        assert report.chaos["domain"] == "rack0"

    def test_degraded_runs_are_seed_deterministic(self):
        a = run_serving_experiment(
            "steady", seed=3, brownout=BrownoutPolicy(), domain_kill=KILL
        )
        b = run_serving_experiment(
            "steady", seed=3, brownout=BrownoutPolicy(), domain_kill=KILL
        )
        assert a.json() == b.json()

    def test_priority_floor_one_sheds_nobody(self):
        report = run_serving_experiment(
            "steady",
            seed=0,
            brownout=BrownoutPolicy(priority_floor=1),
            domain_kill=KILL,
        )
        # the latch engaged but no tenant sits below floor 1
        assert report.degraded["entries"] == 1
        assert report.degraded["shed"] == 0


class TestDisabledParity:
    def test_no_policy_means_no_degraded_block(self):
        # even under a domain kill: without a BrownoutPolicy there is no
        # controller, no shedding, and no "degraded" key in the report
        report = run_serving_experiment("steady", seed=0, domain_kill=KILL)
        assert report.degraded == {}
        assert "degraded" not in report.to_dict()
        assert BROWNOUT not in report.tenants["batch"].get("shed", {})

    def test_plain_runs_stay_byte_identical(self):
        a = run_serving_experiment("steady", seed=0)
        b = run_serving_experiment("steady", seed=0)
        assert a.json(indent=2) == b.json(indent=2)
        assert "degraded" not in a.to_dict()

    def test_idle_brownout_policy_changes_no_counters(self):
        # policy armed but no outage: nothing shed, zero degraded time,
        # and the serving counters match the plain run exactly
        plain = run_serving_experiment("steady", seed=0)
        armed = run_serving_experiment(
            "steady", seed=0, brownout=BrownoutPolicy()
        )
        block = armed.degraded
        assert block["entries"] == 0 and block["shed"] == 0
        plain_dict = plain.to_dict()
        armed_dict = armed.to_dict()
        armed_dict.pop("degraded")
        assert armed_dict == plain_dict
