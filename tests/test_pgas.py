"""Unit + property tests for the PGAS layer (NUMA map, allocator, migration)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interconnect import build_tree
from repro.memory import PAGE_SIZE, AddressRange, UnimemSpace
from repro.pgas import (
    AllocationError,
    GlobalAllocator,
    MigrationPolicy,
    NumaDomain,
    NumaMap,
)
from repro.sim import Simulator

WINDOW = 64 * PAGE_SIZE


def make_numa(n=4, with_network=True):
    domains = [
        NumaDomain(i, ("w", i), AddressRange(i * WINDOW, WINDOW)) for i in range(n)
    ]
    net = None
    if with_network:
        sim = Simulator()
        net, workers = build_tree(sim, [2, (n + 1) // 2])
    return NumaMap(domains, net)


class TestNumaMap:
    def test_lookup(self):
        numa = make_numa()
        assert numa.domain(2).domain_id == 2
        with pytest.raises(KeyError):
            numa.domain(99)

    def test_domain_of_address(self):
        numa = make_numa()
        assert numa.domain_of_address(WINDOW + 5).domain_id == 1
        with pytest.raises(ValueError):
            numa.domain_of_address(100 * WINDOW)

    def test_distance_from_network(self):
        numa = make_numa(4)
        assert numa.distance(0, 0) == 0
        assert numa.distance(0, 1) == 2   # siblings under one switch
        assert numa.distance(0, 3) == 4   # across the root

    def test_distance_without_network_uniform(self):
        numa = make_numa(4, with_network=False)
        assert numa.distance(0, 3) == 1

    def test_nearest_sorted(self):
        numa = make_numa(4)
        order = [d.domain_id for d in numa.nearest_domains(0)]
        assert order[0] == 0
        assert order[1] == 1  # sibling before cross-tree

    def test_validation(self):
        with pytest.raises(ValueError):
            NumaMap([])
        d = NumaDomain(0, "w", AddressRange(0, WINDOW))
        with pytest.raises(ValueError):
            NumaMap([d, d])


class TestAllocator:
    def test_affinity_placement(self):
        alloc = GlobalAllocator(make_numa())
        a = alloc.allocate(100, affinity_domain=2)
        assert a.domain_id == 2
        assert a.range.base % PAGE_SIZE == 0
        assert a.size == PAGE_SIZE  # rounded up

    def test_spill_to_nearest(self):
        numa = make_numa(4)
        alloc = GlobalAllocator(numa)
        alloc.allocate(WINDOW, affinity_domain=0)      # fill domain 0
        spilled = alloc.allocate(PAGE_SIZE, affinity_domain=0)
        assert spilled.domain_id == 1                  # nearest with room
        assert alloc.spill_count == 1
        assert alloc.locality_fraction() == pytest.approx(0.5)

    def test_exhaustion_raises(self):
        numa = make_numa(2)
        alloc = GlobalAllocator(numa)
        alloc.allocate(WINDOW, 0)
        alloc.allocate(WINDOW, 1)
        with pytest.raises(AllocationError):
            alloc.allocate(PAGE_SIZE, 0)

    def test_free_and_reuse(self):
        numa = make_numa(1)
        alloc = GlobalAllocator(numa)
        a = alloc.allocate(WINDOW, 0)
        alloc.free(a)
        b = alloc.allocate(WINDOW, 0)  # whole window reusable after free
        assert b.range.base == a.range.base

    def test_double_free_rejected(self):
        alloc = GlobalAllocator(make_numa(1))
        a = alloc.allocate(100, 0)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_invalid_size(self):
        alloc = GlobalAllocator(make_numa(1))
        with pytest.raises(ValueError):
            alloc.allocate(0, 0)

    def test_striped_allocation(self):
        alloc = GlobalAllocator(make_numa(4))
        slices = alloc.allocate_striped(4 * PAGE_SIZE, [0, 1, 2, 3])
        assert len(slices) == 4
        assert sorted(s.domain_id for s in slices) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            alloc.allocate_striped(100, [])

    def test_coalescing(self):
        """Freeing adjacent blocks merges holes so a big allocation fits."""
        alloc = GlobalAllocator(make_numa(1))
        blocks = [alloc.allocate(WINDOW // 4, 0) for _ in range(4)]
        for b in blocks:
            alloc.free(b)
        big = alloc.allocate(WINDOW, 0)
        assert big.size == WINDOW

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_alloc_free_conservation(self, sizes_pages):
        alloc = GlobalAllocator(make_numa(2, with_network=False))
        total = alloc.free_bytes()
        live = []
        for pages in sizes_pages:
            try:
                live.append(alloc.allocate(pages * PAGE_SIZE, 0))
            except AllocationError:
                break
        held = sum(a.size for a in live)
        assert alloc.free_bytes() == total - held
        for a in live:
            alloc.free(a)
        assert alloc.free_bytes() == total


class TestMigration:
    def make(self, **kw):
        space = UnimemSpace(4, WINDOW)
        return space, MigrationPolicy(space, **kw)

    def test_migrates_hot_remote_page(self):
        space, pol = self.make(min_accesses=4)
        addr = space.map.global_address(0, 0)
        for _ in range(10):
            pol.record(node=3, addr=addr, size=8, is_write=False)
        migrated, _ = pol.step()
        assert migrated == 1
        assert space.page_home(addr) == 3

    def test_no_migration_below_min_accesses(self):
        space, pol = self.make(min_accesses=100)
        addr = space.map.global_address(0, 0)
        for _ in range(10):
            pol.record(3, addr, 8, False)
        assert pol.step() == (0, 0)
        assert space.page_home(addr) == 0

    def test_no_migration_when_home_dominates(self):
        space, pol = self.make(min_accesses=4)
        addr = space.map.global_address(0, 0)
        for _ in range(20):
            pol.record(0, addr, 8, False)
        pol.record(3, addr, 8, False)
        assert pol.step() == (0, 0)

    def test_readonly_sharing_replicates(self):
        space, pol = self.make(min_accesses=4, migrate_threshold=0.9)
        addr = space.map.global_address(0, 0)
        for node in (1, 2, 3):
            for _ in range(5):
                pol.record(node, addr, 8, False)
        _, replicated = pol.step()
        assert replicated == 3
        assert pol.has_replica(0, 1)

    def test_write_invalidates_replicas(self):
        space, pol = self.make(min_accesses=4, migrate_threshold=0.9)
        addr = space.map.global_address(0, 0)
        for node in (1, 2, 3):
            for _ in range(5):
                pol.record(node, addr, 8, False)
        pol.step()
        pol.record(1, addr, 8, True)
        assert not pol.has_replica(0, 1)

    def test_validation(self):
        space = UnimemSpace(2, WINDOW)
        with pytest.raises(ValueError):
            MigrationPolicy(space, migrate_threshold=0.0)
        with pytest.raises(ValueError):
            MigrationPolicy(space, min_accesses=0)
        pol = MigrationPolicy(space)
        with pytest.raises(ValueError):
            pol.record(0, 0, 0, False)

    def test_stats_accumulate(self):
        space, pol = self.make(min_accesses=1)
        addr = space.map.global_address(0, 0)
        pol.record(2, addr, 8, False)
        pol.step()
        assert pol.stats.pages_migrated == 1
        assert pol.stats.migration_bytes == PAGE_SIZE
