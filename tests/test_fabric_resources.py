"""Unit + property tests for ResourceVector."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric import ResourceVector

vec = st.builds(
    ResourceVector,
    luts=st.integers(0, 1000),
    ffs=st.integers(0, 1000),
    brams=st.integers(0, 50),
    dsps=st.integers(0, 50),
)


def test_add():
    a = ResourceVector(1, 2, 3, 4)
    b = ResourceVector(10, 20, 30, 40)
    assert a + b == ResourceVector(11, 22, 33, 44)


def test_scale():
    assert ResourceVector(1, 2, 3, 4) * 3 == ResourceVector(3, 6, 9, 12)
    assert 2 * ResourceVector(1, 0, 0, 0) == ResourceVector(2, 0, 0, 0)


def test_negative_rejected():
    with pytest.raises(ValueError):
        ResourceVector(luts=-1)
    with pytest.raises(ValueError):
        ResourceVector(1, 1, 1, 1) * -2


def test_fits_in():
    small = ResourceVector(10, 10, 1, 1)
    big = ResourceVector(100, 100, 10, 10)
    assert small.fits_in(big)
    assert not big.fits_in(small)
    assert small.fits_in(small)


def test_fits_in_binding_dimension():
    # plenty of LUTs but not enough BRAM
    need = ResourceVector(luts=1, brams=5)
    have = ResourceVector(luts=1000, brams=4)
    assert not need.fits_in(have)


def test_utilization_of():
    need = ResourceVector(luts=50, brams=2)
    have = ResourceVector(luts=100, brams=4, ffs=999, dsps=9)
    assert need.utilization_of(have) == pytest.approx(0.5)


def test_utilization_of_missing_resource_is_inf():
    need = ResourceVector(dsps=1)
    have = ResourceVector(luts=100)
    assert need.utilization_of(have) == float("inf")


def test_utilization_of_zero_demand():
    assert ResourceVector().utilization_of(ResourceVector(luts=10)) == 0.0
    assert ResourceVector().is_zero


def test_area_units_positive_and_monotone():
    a = ResourceVector(100, 100, 0, 0).area_units()
    b = ResourceVector(100, 100, 2, 0).area_units()
    assert 0 < a < b


@given(a=vec, b=vec)
def test_add_commutes(a, b):
    assert a + b == b + a


@given(a=vec, b=vec)
def test_fits_in_sum(a, b):
    assert a.fits_in(a + b)
    assert b.fits_in(a + b)


@given(a=vec, k=st.integers(0, 10))
def test_scale_matches_repeated_add(a, k):
    total = ResourceVector()
    for _ in range(k):
        total = total + a
    assert total == a * k
