"""Tests for machine warm starts: templated bring-up is byte-identical
to cold bring-up across all three batch harnesses, snapshot paths pin
the topology they were taken on, and the bench entry is registered."""

import json

import pytest

from repro.experiments import resolve_warm_start, run_jobs_experiment
from repro.serving import run_serving_experiment


class TestWarmEqualsCold:
    def test_serving_report_is_byte_identical(self):
        cold = run_serving_experiment("steady", seed=0).json(indent=2)
        warm = run_serving_experiment("steady", seed=0, warm_start=True).json(
            indent=2
        )
        assert warm == cold

    def test_jobs_report_is_byte_identical(self):
        cold = run_jobs_experiment("mini", seed=0).json(indent=2)
        warm = run_jobs_experiment("mini", seed=0, warm_start=True).json(indent=2)
        assert warm == cold

    def test_chaos_report_is_byte_identical(self):
        from repro.chaos import run_chaos_experiment
        from repro.presets import compiled_suite

        compiled = compiled_suite(max_variants=1)
        cold = run_chaos_experiment("mini", seed=0, compiled=compiled)
        warm = run_chaos_experiment(
            "mini", seed=0, compiled=compiled, warm_start=True
        )
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )


class TestSnapshotPinning:
    def write_snapshot(self, tmp_path, workload):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"workload": workload}))
        return str(path)

    def test_matching_node_preset_primes_the_cache(self, tmp_path):
        path = self.write_snapshot(tmp_path, {"kind": "service-session",
                                              "node": "mini"})
        assert resolve_warm_start(path, "mini") is True

    def test_nodes_list_is_also_consulted(self, tmp_path):
        path = self.write_snapshot(
            tmp_path, {"kind": "service-session", "nodes": ["board", "mini"]}
        )
        assert resolve_warm_start(path, "board") is True

    def test_mismatched_topology_is_an_error_not_a_cold_build(self, tmp_path):
        path = self.write_snapshot(tmp_path, {"kind": "service-session",
                                              "node": "board"})
        with pytest.raises(ValueError, match="refusing to warm-start"):
            resolve_warm_start(path, "mini")

    def test_snapshot_without_topology_is_rejected(self, tmp_path):
        path = self.write_snapshot(tmp_path, {"kind": "service-session"})
        with pytest.raises(ValueError, match="records no node preset"):
            resolve_warm_start(path, "mini")

    def test_bools_pass_through(self):
        assert resolve_warm_start(False, "mini") is False
        assert resolve_warm_start(True, "mini") is True

    def test_harnesses_accept_snapshot_paths(self, tmp_path):
        path = self.write_snapshot(tmp_path, {"kind": "service-session",
                                              "node": "mini"})
        cold = run_jobs_experiment("mini", seed=0).json(indent=2)
        warm = run_jobs_experiment("mini", seed=0, warm_start=path).json(indent=2)
        assert warm == cold
        with pytest.raises(ValueError):
            run_jobs_experiment("board", seed=0, warm_start=path)


class TestWarmBench:
    def test_warm_bench_is_registered_and_counts_the_same_workers(self):
        from repro.perf import BENCHMARKS, bench_exascale_build_warm

        assert BENCHMARKS["machine.exascale_build.warm"] is bench_exascale_build_warm
        # quick mode builds 1 + 4 + 16 nodes: 4 + 16 + 128 workers
        assert bench_exascale_build_warm(True) == 148
