"""Unit tests for the dual-stage SMMU."""

import pytest

from repro.memory import PAGE_SIZE, PageTable, Smmu, SmmuFault, TranslationRegime


def nested_smmu(tlb_entries=64):
    """Context 1: VA page 1 -> IPA page 10 -> PA page 100."""
    s1, s2 = PageTable("s1"), PageTable("s2")
    s1.map(1, 10)
    s2.map(10, 100)
    smmu = Smmu(tlb_entries=tlb_entries)
    smmu.attach_context(1, TranslationRegime.NESTED, stage1=s1, stage2=s2)
    return smmu


def test_nested_translation():
    smmu = nested_smmu()
    pa, lat = smmu.translate(1, PAGE_SIZE + 0x42)
    assert pa == 100 * PAGE_SIZE + 0x42
    assert lat == pytest.approx(2 * smmu.walk_latency_ns)  # two-stage walk


def test_tlb_hit_is_free_after_walk():
    smmu = nested_smmu()
    smmu.translate(1, PAGE_SIZE)
    pa, lat = smmu.translate(1, PAGE_SIZE + 8)
    assert lat == 0.0
    assert pa == 100 * PAGE_SIZE + 8
    assert smmu.stats.tlb_hits == 1 and smmu.stats.tlb_misses == 1


def test_stage1_only():
    s1 = PageTable()
    s1.map(0, 7)
    smmu = Smmu()
    smmu.attach_context(3, TranslationRegime.STAGE1_ONLY, stage1=s1)
    pa, lat = smmu.translate(3, 0x10)
    assert pa == 7 * PAGE_SIZE + 0x10
    assert lat == pytest.approx(smmu.walk_latency_ns)


def test_stage2_only():
    s2 = PageTable()
    s2.map(0, 9)
    smmu = Smmu()
    smmu.attach_context(4, TranslationRegime.STAGE2_ONLY, stage2=s2)
    pa, _ = smmu.translate(4, 0x20)
    assert pa == 9 * PAGE_SIZE + 0x20


def test_bypass_passes_through():
    smmu = Smmu()
    smmu.attach_context(9, TranslationRegime.BYPASS)
    pa, lat = smmu.translate(9, 0xDEAD000)
    assert pa == 0xDEAD000 and lat == 0.0


def test_unknown_context_faults():
    smmu = Smmu()
    with pytest.raises(SmmuFault):
        smmu.translate(99, 0)


def test_stage1_fault():
    smmu = nested_smmu()
    with pytest.raises(SmmuFault) as exc:
        smmu.translate(1, 5 * PAGE_SIZE)
    assert exc.value.stage == 1
    assert smmu.stats.faults == 1


def test_stage2_fault():
    s1, s2 = PageTable(), PageTable()
    s1.map(0, 10)  # IPA 10 unmapped in stage 2
    smmu = Smmu()
    smmu.attach_context(1, TranslationRegime.NESTED, stage1=s1, stage2=s2)
    with pytest.raises(SmmuFault) as exc:
        smmu.translate(1, 0)
    assert exc.value.stage == 2


def test_write_to_readonly_faults():
    s1 = PageTable()
    s1.map(0, 5, writable=False)
    smmu = Smmu()
    smmu.attach_context(1, TranslationRegime.STAGE1_ONLY, stage1=s1)
    pa, _ = smmu.translate(1, 0, is_write=False)
    assert pa == 5 * PAGE_SIZE
    with pytest.raises(SmmuFault):
        smmu.translate(1, 0, is_write=True)


def test_write_permission_checked_on_tlb_hit():
    s1 = PageTable()
    s1.map(0, 5, writable=False)
    smmu = Smmu()
    smmu.attach_context(1, TranslationRegime.STAGE1_ONLY, stage1=s1)
    smmu.translate(1, 0)  # fills TLB
    with pytest.raises(SmmuFault):
        smmu.translate(1, 4, is_write=True)


def test_tlb_eviction_lru():
    s1 = PageTable()
    for vpn in range(4):
        s1.map(vpn, vpn + 10)
    smmu = Smmu(tlb_entries=2)
    smmu.attach_context(1, TranslationRegime.STAGE1_ONLY, stage1=s1)
    smmu.translate(1, 0)             # vpn 0
    smmu.translate(1, PAGE_SIZE)     # vpn 1
    smmu.translate(1, 0)             # touch vpn 0
    smmu.translate(1, 2 * PAGE_SIZE) # evicts vpn 1
    assert smmu.tlb_occupancy == 2
    _, lat = smmu.translate(1, 0)
    assert lat == 0.0                # vpn 0 still cached
    _, lat = smmu.translate(1, PAGE_SIZE)
    assert lat > 0.0                 # vpn 1 had to re-walk


def test_invalidate_context_forces_rewalk():
    smmu = nested_smmu()
    smmu.translate(1, PAGE_SIZE)
    dropped = smmu.invalidate_context(1)
    assert dropped == 1
    _, lat = smmu.translate(1, PAGE_SIZE)
    assert lat > 0.0


def test_detach_context_then_fault():
    smmu = nested_smmu()
    smmu.translate(1, PAGE_SIZE)
    smmu.detach_context(1)
    with pytest.raises(SmmuFault):
        smmu.translate(1, PAGE_SIZE)


def test_attach_requires_tables():
    smmu = Smmu()
    with pytest.raises(ValueError):
        smmu.attach_context(1, TranslationRegime.NESTED, stage1=PageTable())
    with pytest.raises(ValueError):
        smmu.attach_context(1, TranslationRegime.STAGE1_ONLY)


def test_map_range():
    pt = PageTable()
    pt.map_range(0, 16 * PAGE_SIZE, 3 * PAGE_SIZE)
    assert len(pt) == 3
    assert pt.lookup(0) == (16, True)
    assert pt.lookup(2) == (18, True)
    with pytest.raises(ValueError):
        pt.map_range(5, 0, PAGE_SIZE)


def test_tlb_entries_validation():
    with pytest.raises(ValueError):
        Smmu(tlb_entries=0)
