"""Unit tests for module-library save/load."""

import json

import pytest

from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel, stencil_kernel


@pytest.fixture(scope="module")
def library():
    lib = ModuleLibrary()
    tool = HlsTool()
    tool.compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=2))
    tool.compile(stencil_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib


def test_save_writes_manifest_and_bitstreams(library, tmp_path):
    count = library.save(tmp_path)
    assert count == len(library)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert len(manifest) == count
    for entry in manifest:
        assert (tmp_path / entry["bitstream_file"]).exists()


def test_roundtrip_preserves_everything(library, tmp_path):
    library.save(tmp_path)
    loaded = ModuleLibrary.load(tmp_path)
    assert loaded.functions() == library.functions()
    assert len(loaded) == len(library)
    for function in library.functions():
        originals = {m.name: m for m in library.variants(function)}
        for module in loaded.variants(function):
            orig = originals[module.name]
            assert module.bitstream.data == orig.bitstream.data
            assert module.resources == orig.resources
            assert module.initiation_interval == orig.initiation_interval
            assert module.latency_ns(1000) == orig.latency_ns(1000)


def test_compressed_on_disk(library, tmp_path):
    library.save(tmp_path)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    for entry in manifest:
        on_disk = (tmp_path / entry["bitstream_file"]).stat().st_size
        raw = entry["frames"] * 404
        assert on_disk < raw  # stored compressed


def test_load_missing_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        ModuleLibrary.load(tmp_path)


def test_load_corrupt_bitstream_rejected(library, tmp_path):
    library.save(tmp_path)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    victim = tmp_path / manifest[0]["bitstream_file"]
    victim.write_bytes(victim.read_bytes()[:-10])  # truncate
    with pytest.raises(ValueError):
        ModuleLibrary.load(tmp_path)


def test_loaded_library_serves_runtime(library, tmp_path):
    """A reloaded library plugs straight into a Worker."""
    from repro.core import Worker
    from repro.sim import Simulator, spawn

    library.save(tmp_path)
    loaded = ModuleLibrary.load(tmp_path)
    sim = Simulator()
    worker = Worker(sim, 0)
    capacity = worker.fabric.regions[0].capacity
    module = loaded.best_variant("saxpy", capacity=capacity)
    out = {}

    def proc():
        out["region"] = yield from worker.load_module(module)
        out["latency"] = yield from worker.run_hardware("saxpy", 512)

    spawn(sim, proc())
    sim.run()
    assert out["region"] is not None
    assert out["latency"] > 0
