"""Cross-cutting property-based tests on core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import Bitstream, ResourceVector
from repro.hls import (
    HlsConfig,
    HlsEstimator,
    OpKind,
    SoftwareCostModel,
    saxpy_kernel,
    vecadd_kernel,
)
from repro.hls.ir import ArrayArg, Kernel
from repro.interconnect import Message, TransactionType, build_tree
from repro.mpi import CartTopology, Communicator
from repro.sim import Simulator, Timeout, spawn


# ---------------------------------------------------------------------------
# simulation kernel
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=50)
def test_sim_clock_monotone_under_any_schedule(delays):
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=20))
@settings(max_examples=50)
def test_sequential_process_time_is_sum(delays):
    sim = Simulator()

    def proc():
        for d in delays:
            yield Timeout(d)

    spawn(sim, proc())
    sim.run()
    assert sim.now == pytest.approx(math.fsum(delays))


# ---------------------------------------------------------------------------
# interconnect
# ---------------------------------------------------------------------------
@given(
    fanouts=st.lists(st.integers(2, 4), min_size=1, max_size=3),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_tree_routing_symmetric_and_triangle(fanouts, seed):
    sim = Simulator()
    net, workers = build_tree(sim, fanouts)
    import random

    rng = random.Random(seed)
    a, b, c = (rng.choice(workers) for _ in range(3))
    dab = net.hop_distance(a, b)
    assert dab == net.hop_distance(b, a)                     # symmetry
    assert dab <= net.hop_distance(a, c) + net.hop_distance(c, b)  # triangle
    assert net.hop_distance(a, a) == 0
    if a != b:
        assert dab >= 2  # leaves always route via a switch


@given(size=st.integers(0, 1 << 20))
@settings(max_examples=50)
def test_route_latency_nonnegative_and_monotone_in_size(size):
    sim = Simulator()
    net, workers = build_tree(sim, [2, 2])
    r = net.route(workers[0], workers[3])
    assert r.latency(size) >= 0
    assert r.latency(size + 64) > r.latency(size)
    assert r.energy(size) >= 0


# ---------------------------------------------------------------------------
# MPI collectives
# ---------------------------------------------------------------------------
@given(p=st.integers(1, 16), size=st.integers(0, 1 << 16))
@settings(max_examples=30, deadline=None)
def test_collective_costs_nonnegative_and_rounds_bounded(p, size):
    sim = Simulator()
    net, workers = build_tree(sim, [p]) if p > 1 else build_tree(sim, [1])
    comm = Communicator(net, workers[:p])
    for op in (comm.broadcast(0, size), comm.allreduce(size), comm.alltoall(size)):
        assert op.latency_ns >= 0
        assert op.energy_pj >= 0
    bcast = comm.broadcast(0, size)
    assert bcast.rounds <= max(1, math.ceil(math.log2(max(p, 2))))
    assert bcast.bytes_moved == (p - 1) * size


@given(
    dims=st.tuples(st.integers(1, 5), st.integers(1, 5)),
)
@settings(max_examples=50)
def test_cart_neighbour_relation_symmetric(dims):
    topo = CartTopology(dims)
    for rank in range(topo.size):
        for nb in topo.neighbours(rank):
            assert rank in topo.neighbours(nb)


# ---------------------------------------------------------------------------
# HLS estimator
# ---------------------------------------------------------------------------
op_kinds = st.sampled_from(list(OpKind))


@st.composite
def kernels(draw):
    n_ops = draw(st.integers(1, 4))
    ops = {}
    for _ in range(n_ops):
        ops[draw(op_kinds)] = draw(st.integers(1, 4))
    arrays = tuple(
        ArrayArg(f"a{i}", 4, reads_per_iter=draw(st.integers(0, 2)),
                 writes_per_iter=draw(st.integers(0, 1)),
                 footprint_elems=draw(st.integers(16, 4096)))
        for i in range(draw(st.integers(1, 3)))
    )
    rec = None
    if draw(st.booleans()):
        rec = (draw(st.integers(1, 4)), draw(st.integers(1, 8)))
    return Kernel(
        name="k",
        trip_counts=(draw(st.integers(4, 1024)),),
        ops=ops,
        arrays=arrays,
        recurrence=rec,
    )


@given(kernel=kernels(), unroll=st.sampled_from([1, 2, 4]), dup=st.sampled_from([1, 2]))
@settings(max_examples=50, deadline=None)
def test_estimator_invariants(kernel, unroll, dup):
    est = HlsEstimator()
    if unroll > kernel.inner_trip:
        return
    cfg = HlsConfig(pipeline=True, unroll=unroll, duplicate=dup)
    e = est.estimate(kernel, cfg)
    assert e.initiation_interval >= 1
    assert e.pipeline_depth >= 1
    assert e.clock_ns > 0
    assert e.resources.luts >= 0
    # recurrence lower bound respected
    if kernel.recurrence:
        distance, latency = kernel.recurrence
        assert e.initiation_interval >= math.ceil(latency / distance)
    # more datapath never shrinks resources
    wider = est.estimate(kernel, HlsConfig(pipeline=True, unroll=unroll, duplicate=dup * 2))
    assert wider.resources.area_units() > e.resources.area_units()
    # latency is monotone in items
    assert e.latency_ns(100) <= e.latency_ns(200)


@given(kernel=kernels(), items=st.integers(1, 100_000))
@settings(max_examples=50, deadline=None)
def test_software_cost_scales_linearly(kernel, items):
    sw = SoftwareCostModel()
    single = sw.latency_ns(kernel, 1)
    assert sw.latency_ns(kernel, items) == pytest.approx(single * items, rel=1e-9)


# ---------------------------------------------------------------------------
# bitstreams
# ---------------------------------------------------------------------------
@given(frames=st.integers(0, 60), fill=st.floats(0.0, 1.0), seed=st.integers(0, 50))
@settings(max_examples=50, deadline=None)
def test_bitstream_compress_roundtrip_any_density(frames, fill, seed):
    bs = Bitstream.synthesize("m", frames, fill, seed)
    comp = bs.compress()
    assert comp.decompress().data == bs.data
    if frames:
        assert comp.compression_ratio > 0


# ---------------------------------------------------------------------------
# resource vectors
# ---------------------------------------------------------------------------
vectors = st.builds(
    ResourceVector,
    luts=st.integers(0, 10_000),
    ffs=st.integers(0, 10_000),
    brams=st.integers(0, 100),
    dsps=st.integers(0, 100),
)


@given(a=vectors, b=vectors, c=vectors)
def test_fits_in_is_transitive(a, b, c):
    if a.fits_in(b) and b.fits_in(c):
        assert a.fits_in(c)


@given(a=vectors, b=vectors)
def test_area_subadditive_exactly(a, b):
    assert (a + b).area_units() == pytest.approx(a.area_units() + b.area_units())
