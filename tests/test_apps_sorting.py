"""Unit + property tests for distributed sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    choose_splitters,
    partition_data,
    plan_exchange,
    sample_sort,
)


class TestPartition:
    def test_covers_input(self):
        data = np.arange(103)
        shards = partition_data(data, 4)
        assert len(shards) == 4
        np.testing.assert_array_equal(np.concatenate(shards), data)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_data(np.arange(10), 0)
        with pytest.raises(ValueError):
            partition_data(np.zeros((2, 2)), 2)


class TestSplitters:
    def test_count_and_order(self):
        rng = np.random.default_rng(0)
        shards = partition_data(rng.normal(size=1000), 8)
        splitters = choose_splitters(shards, oversample=16, seed=1)
        assert len(splitters) == 7
        assert np.all(np.diff(splitters) >= 0)

    def test_single_partition_no_splitters(self):
        shards = partition_data(np.arange(10.0), 1)
        assert choose_splitters(shards).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_splitters([np.arange(4.0)], oversample=0)


class TestExchangePlan:
    def test_counts_conserve_elements(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=512)
        shards = partition_data(data, 4)
        splitters = choose_splitters(shards, seed=3)
        plan = plan_exchange(shards, splitters)
        assert plan.counts.sum() == 512
        assert plan.partitions == 4

    def test_exchange_bytes_exclude_diagonal(self):
        data = np.arange(100.0)  # already sorted: block split ~= buckets
        shards = partition_data(data, 4)
        splitters = np.array([24.5, 49.5, 74.5])
        plan = plan_exchange(shards, splitters)
        assert plan.total_exchange_bytes() == 0  # everything stays local

    def test_imbalance_near_one_for_uniform(self):
        rng = np.random.default_rng(4)
        shards = partition_data(rng.uniform(size=20_000), 8)
        plan = plan_exchange(shards, choose_splitters(shards, 64, seed=5))
        assert plan.imbalance() < 1.5


class TestSampleSort:
    def test_exactly_sorted(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=2000)
        result, plan = sample_sort(data, partitions=8, seed=7)
        np.testing.assert_array_equal(result, np.sort(data))

    def test_with_duplicates(self):
        data = np.array([3, 1, 3, 2, 2, 2, 1, 3] * 50, dtype=np.int64)
        result, _ = sample_sort(data, partitions=4)
        np.testing.assert_array_equal(result, np.sort(data))

    @given(
        n=st.integers(1, 500),
        p=st.integers(1, 8),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_sorts_any_input(self, n, p, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-1000, 1000, size=n).astype(np.float64)
        result, plan = sample_sort(data, partitions=p, seed=seed)
        np.testing.assert_array_equal(result, np.sort(data))
        assert plan.counts.sum() == n
