"""Integration: SEU detection (scrubber) feeding the recovery manager --
the complete resilience loop, detection through repair."""

import pytest

from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    FaultInjector,
    RecoveryManager,
    UnilogicDomain,
)
from repro.fabric import ConfigScrubber, ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def library():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib


def test_scrubber_detects_and_repairs_in_place(library):
    """A transient single-bit upset: the scrubber's frame rewrite is the
    whole repair -- no reconfiguration, no service interruption."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    unilogic = UnilogicDomain(node)
    worker = node.worker(0)
    module = library.best_variant("saxpy")
    scrubbed = {}

    def flow():
        region = yield from worker.load_module(module)
        scrub = ConfigScrubber(sim, worker.fabric)
        scrub.inject_upset(region.region_id, frame=1, bit=3)
        found = yield from scrub.scrub_pass()
        scrubbed["found"] = found
        # function still served after in-place repair
        yield from unilogic.invoke("saxpy", 1, 256)
        scrubbed["served"] = True

    spawn(sim, flow())
    sim.run()
    assert scrubbed["found"] == 1
    assert scrubbed["served"]


def test_scrubber_escalates_to_recovery_manager(library):
    """A persistent region fault: the scrubber's on_fault callback marks
    the region dead, and the recovery manager reloads the function on a
    healthy region -- detection-to-repair measured end to end."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    unilogic = UnilogicDomain(node)
    worker = node.worker(0)
    module = library.best_variant("saxpy")
    injector = FaultInjector(node)
    manager = RecoveryManager(node, unilogic, library, injector, check_period_ns=2000.0)

    def escalate(region, frame):
        # treat any scrub hit as a hard fault for this test
        if not injector.is_failed(worker.worker_id, region.region_id):
            injector.inject_region_fault(worker.worker_id, region.region_id)

    state = {}

    def flow():
        region = yield from worker.load_module(module)
        state["region"] = region
        scrub = ConfigScrubber(sim, worker.fabric, on_fault=escalate)
        scrub.inject_upset(region.region_id, frame=0)
        yield from scrub.scrub_pass()

    spawn(sim, flow())
    mgr = spawn(sim, manager.run())
    sim.run(until=100_000.0)
    manager.stop()
    sim.run()

    record = injector.records[0]
    assert record.function == "saxpy"
    assert record.recovered_at is not None
    # the function is hosted again, on a region other than the dead one
    hosts = unilogic.hosting_regions("saxpy")
    assert hosts
    host_worker, host_region = hosts[0]
    assert (host_worker, host_region.region_id) != (
        record.worker_id, record.region_id,
    )
    # total detection+repair is measured from the upset's perspective
    assert record.recovery_ns > 0
