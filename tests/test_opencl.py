"""Unit + integration tests for the OpenCL-style programming layer."""

import numpy as np
import pytest

from repro.core import ComputeNode, ComputeNodeParams
from repro.hls import saxpy_kernel, vecadd_kernel
from repro.opencl import (
    CommandQueue,
    Context,
    DataScope,
    DeviceType,
    DistributedCommandQueue,
    Platform,
    Program,
)
from repro.sim import Simulator


def make_platform(workers=4):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    return Platform(node)


def vecadd_program(n=1024):
    prog = Program([vecadd_kernel(n), saxpy_kernel(n)])

    def vecadd_impl(a, b, c):
        c.array[:] = a.array + b.array

    prog.set_host_impl("vecadd", vecadd_impl)
    return prog


class TestPlatformDevices:
    def test_two_devices_per_worker(self):
        plat = make_platform(4)
        assert len(plat.devices()) == 8
        assert len(plat.devices(DeviceType.CPU)) == 4
        assert len(plat.devices(DeviceType.FPGA)) == 4

    def test_device_lookup(self):
        plat = make_platform(2)
        d = plat.device(1, DeviceType.FPGA)
        assert d.worker_id == 1
        with pytest.raises(KeyError):
            plat.device(9, DeviceType.CPU)

    def test_compute_units(self):
        plat = make_platform(1)
        assert plat.device(0, DeviceType.CPU).compute_units == 4
        assert plat.device(0, DeviceType.FPGA).compute_units == 2


class TestContextBuffers:
    def test_buffer_allocation_and_home(self):
        ctx = Context(make_platform(4))
        buf = ctx.create_buffer(4096, affinity_worker=2, dtype=np.float32)
        assert buf.home_worker == 2
        assert buf.cacheable_owner == 2
        assert len(buf) == 1024

    def test_buffer_validation(self):
        ctx = Context(make_platform(2))
        with pytest.raises(ValueError):
            ctx.create_buffer(0)
        with pytest.raises(ValueError):
            ctx.create_buffer(5, dtype=np.float32)  # not multiple of 4

    def test_migrate_moves_cacheable_owner(self):
        ctx = Context(make_platform(4))
        buf = ctx.create_buffer(8192, affinity_worker=0)
        assert buf.cacheable_owner == 0
        pages = buf.migrate(3)
        assert pages == 2
        assert buf.cacheable_owner == 3
        assert buf.home_worker == 0  # backing DRAM does not move

    def test_release_all(self):
        plat = make_platform(2)
        ctx = Context(plat)
        ctx.create_buffer(4096)
        free_before = plat.node.allocator.free_bytes()
        ctx.release_all()
        assert plat.node.allocator.free_bytes() > free_before

    def test_empty_context_rejected(self):
        with pytest.raises(ValueError):
            Context(make_platform(1), devices=[])


class TestProgram:
    def test_kernel_handles(self):
        prog = vecadd_program()
        k = prog.kernel("vecadd")
        assert k.kernel_ir.name == "vecadd"
        with pytest.raises(KeyError):
            prog.kernel("nope")

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_enable_acceleration(self):
        prog = vecadd_program()
        n = prog.enable_acceleration("vecadd")
        assert n >= 1
        assert prog.is_accelerated("vecadd")
        # idempotent
        assert prog.enable_acceleration("vecadd") == n

    def test_host_impl_registration(self):
        prog = vecadd_program()
        assert prog.host_impl("vecadd") is not None
        assert prog.host_impl("saxpy") is None
        with pytest.raises(KeyError):
            prog.set_host_impl("missing", lambda: None)


class TestCommandQueue:
    def test_nd_range_on_cpu_computes_and_times(self):
        plat = make_platform(2)
        ctx = Context(plat)
        prog = vecadd_program(1024)
        a = ctx.create_buffer(4096, affinity_worker=0, dtype=np.float32)
        b = ctx.create_buffer(4096, affinity_worker=0, dtype=np.float32)
        c = ctx.create_buffer(4096, affinity_worker=0, dtype=np.float32)
        a.array[:] = 1.5
        b.array[:] = 2.5
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        ev = q.enqueue_nd_range(prog.kernel("vecadd").set_args(a, b, c), 1024)
        q.finish()
        assert ev.complete
        assert ev.result["device"] == "cpu"
        assert ev.duration_ns > 0
        np.testing.assert_allclose(c.array, 4.0)

    def test_nd_range_on_fpga_loads_on_demand(self):
        plat = make_platform(2)
        ctx = Context(plat)
        prog = vecadd_program(1024)
        prog.enable_acceleration("vecadd")
        a = ctx.create_buffer(4096, dtype=np.float32)
        b = ctx.create_buffer(4096, dtype=np.float32)
        c = ctx.create_buffer(4096, dtype=np.float32)
        q = CommandQueue(ctx, plat.device(0, DeviceType.FPGA))
        ev = q.enqueue_nd_range(prog.kernel("vecadd").set_args(a, b, c), 1024)
        q.finish()
        assert ev.result["device"] == "fpga"
        worker = plat.node.worker(0)
        assert worker.hosted_region("vecadd") is not None
        assert worker.reconfig.reconfigurations == 1
        # second call reuses the loaded module
        q.enqueue_nd_range(prog.kernel("vecadd").set_args(a, b, c), 1024)
        q.finish()
        assert worker.reconfig.reconfigurations == 1

    def test_fpga_without_acceleration_fails(self):
        plat = make_platform(1)
        ctx = Context(plat)
        prog = vecadd_program(64)
        a = ctx.create_buffer(256, dtype=np.float32)
        q = CommandQueue(ctx, plat.device(0, DeviceType.FPGA))
        ev = q.enqueue_nd_range(prog.kernel("vecadd").set_args(a, a, a), 64)
        with pytest.raises(LookupError):
            q.finish()

    def test_in_order_semantics(self):
        plat = make_platform(1)
        ctx = Context(plat)
        prog = vecadd_program(512)
        bufs = [ctx.create_buffer(2048, dtype=np.float32) for _ in range(3)]
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        e1 = q.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 512)
        e2 = q.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 512)
        q.finish()
        assert e2.started_at >= e1.ended_at

    def test_write_read_roundtrip(self):
        plat = make_platform(1)
        ctx = Context(plat)
        buf = ctx.create_buffer(1024, dtype=np.float32)
        data = np.arange(256, dtype=np.float32)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        q.enqueue_write(buf, data)
        ev = q.enqueue_read(buf)
        q.finish()
        np.testing.assert_array_equal(ev.result, data)

    def test_write_size_mismatch(self):
        plat = make_platform(1)
        ctx = Context(plat)
        buf = ctx.create_buffer(1024, dtype=np.float32)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        with pytest.raises(ValueError):
            q.enqueue_write(buf, np.zeros(10, dtype=np.float32))

    def test_copy_between_partitions_direct(self):
        """Extension #2: the copy crosses the NoC, not the host bridge."""
        plat = make_platform(4)
        ctx = Context(plat)
        src = ctx.create_buffer(8192, affinity_worker=0, dtype=np.float32)
        dst = ctx.create_buffer(8192, affinity_worker=3, dtype=np.float32)
        src.array[:] = 7.0
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        q.enqueue_copy(src, dst)
        q.finish()
        np.testing.assert_allclose(dst.array, 7.0)
        assert plat.node.network.total_link_bytes() > 0

    def test_migrate_command(self):
        plat = make_platform(4)
        ctx = Context(plat)
        buf = ctx.create_buffer(8192, affinity_worker=0)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        ev = q.enqueue_migrate(buf, 2)
        q.finish()
        assert ev.result == 2  # pages moved
        assert buf.cacheable_owner == 2

    def test_pgas_scope_remote_access_vs_device_copy(self):
        """PARTITION buffers are touched in place via UNIMEM;
        DEVICE buffers are copied over."""
        plat = make_platform(2)
        ctx = Context(plat)
        prog = vecadd_program(256)
        remote = ctx.create_buffer(
            1024, scope=DataScope.PARTITION, affinity_worker=1, dtype=np.float32
        )
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        q.enqueue_nd_range(prog.kernel("vecadd").set_args(remote, remote, remote), 256)
        q.finish()
        assert plat.node.unimem.remote_bytes > 0

    def test_event_profiling_fields(self):
        plat = make_platform(1)
        ctx = Context(plat)
        buf = ctx.create_buffer(1024, dtype=np.float32)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        ev = q.enqueue_read(buf)
        assert ev.queue_delay_ns is None
        q.finish()
        assert ev.queue_delay_ns >= 0
        assert ev.duration_ns > 0

    def test_marker(self):
        plat = make_platform(1)
        ctx = Context(plat)
        q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
        ev = q.enqueue_marker()
        q.finish()
        assert ev.complete

    def test_foreign_device_rejected(self):
        plat_a, plat_b = make_platform(1), make_platform(1)
        ctx = Context(plat_a)
        with pytest.raises(ValueError):
            CommandQueue(ctx, plat_b.devices()[0])


class TestDistributedQueue:
    def test_routes_to_data_home(self):
        plat = make_platform(4)
        ctx = Context(plat)
        prog = vecadd_program(512)
        q = DistributedCommandQueue(ctx)
        events = []
        for w in range(4):
            buf = ctx.create_buffer(2048, affinity_worker=w, dtype=np.float32)
            events.append(
                q.enqueue_nd_range(prog.kernel("vecadd").set_args(buf, buf, buf), 512)
            )
        q.finish()
        assert sorted(e.result["worker"] for e in events) == [0, 1, 2, 3]

    def test_accelerated_kernels_route_to_fpga_when_faster(self):
        plat = make_platform(2)
        ctx = Context(plat)
        from repro.hls import montecarlo_kernel

        prog = Program([montecarlo_kernel(4096, 8)])
        prog.enable_acceleration("montecarlo")
        buf = ctx.create_buffer(16384, affinity_worker=0, dtype=np.float32)
        q = DistributedCommandQueue(ctx)
        ev = q.enqueue_nd_range(prog.kernel("montecarlo").set_args(buf), 100_000)
        q.finish()
        assert ev.result["device"] == "fpga"
        assert q.routed_to_fpga == 1

    def test_parallel_queues_overlap(self):
        """Work routed to different Workers runs concurrently -- the whole
        point of distributed queues."""
        plat = make_platform(4)
        ctx = Context(plat)
        prog = vecadd_program(4096)
        q = DistributedCommandQueue(ctx)
        events = []
        for w in range(4):
            buf = ctx.create_buffer(16384, affinity_worker=w, dtype=np.float32)
            events.append(
                q.enqueue_nd_range(prog.kernel("vecadd").set_args(buf, buf, buf), 4096)
            )
        q.finish()
        makespan = max(e.ended_at for e in events)
        total_busy = sum(e.duration_ns for e in events)
        assert makespan < 0.75 * total_busy  # substantial overlap

    def test_queue_lookup_validation(self):
        plat = make_platform(1)
        q = DistributedCommandQueue(Context(plat))
        with pytest.raises(KeyError):
            q.queue_for(5, DeviceType.CPU)
