"""Unit tests for the SSD model and out-of-core cost helpers."""

import pytest

from repro.memory.ssd import (
    Ssd,
    SsdTiming,
    out_of_core_passes,
    out_of_core_sort_cost_ns,
)
from repro.sim import Simulator, spawn


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out["v"]


class TestSsd:
    def test_timing_validation(self):
        with pytest.raises(ValueError):
            SsdTiming(read_latency_ns=-1)
        with pytest.raises(ValueError):
            SsdTiming(read_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            SsdTiming(queue_depth=0)
        with pytest.raises(ValueError):
            SsdTiming(capacity_bytes=0)

    def test_read_write_asymmetry(self):
        ssd = Ssd(Simulator())
        size = 1 << 20
        # reads have higher first-byte latency; writes lower bandwidth
        assert ssd.read_cost_ns(64) > ssd.write_cost_ns(64)
        assert ssd.write_cost_ns(size) - ssd.timing.write_latency_ns > (
            ssd.read_cost_ns(size) - ssd.timing.read_latency_ns
        )

    def test_size_validation(self):
        ssd = Ssd(Simulator())
        with pytest.raises(ValueError):
            ssd.read_cost_ns(0)
        with pytest.raises(ValueError):
            ssd.write_cost_ns(-1)

    def test_process_accounts_bytes_and_energy(self):
        sim = Simulator()
        ssd = Ssd(sim)
        lat = run(sim, ssd.read(4096))
        assert lat == pytest.approx(ssd.read_cost_ns(4096))
        run(sim, ssd.write(1000))
        assert ssd.bytes_read == 4096
        assert ssd.bytes_written == 1000
        assert ssd.energy_pj > 0

    def test_queue_depth_limits_concurrency(self):
        sim = Simulator()
        ssd = Ssd(sim, SsdTiming(queue_depth=1))
        done = []

        def job():
            yield from ssd.read(1 << 20)
            done.append(sim.now)

        spawn(sim, job())
        spawn(sim, job())
        sim.run()
        assert done[1] == pytest.approx(2 * done[0])


class TestOutOfCore:
    def test_in_memory_free(self):
        assert out_of_core_passes(1 << 20, 1 << 30) == 0
        ssd = Ssd(Simulator())
        cost, passes = out_of_core_sort_cost_ns(ssd, 1 << 20, 1 << 30)
        assert cost == 0.0 and passes == 0

    def test_single_spill_pass(self):
        # 4 GiB of data, 1 GiB of memory: 4 runs, fan-in >> 4 -> one pass
        passes = out_of_core_passes(4 << 30, 1 << 30)
        assert passes == 1

    def test_multilevel_merge_for_tiny_memory(self):
        # 1 GiB data, 4 MiB memory: 256 runs, fan-in 4 -> several passes
        passes = out_of_core_passes(1 << 30, 4 << 20)
        assert passes >= 3

    def test_cost_scales_with_passes(self):
        ssd = Ssd(Simulator())
        one, p1 = out_of_core_sort_cost_ns(ssd, 4 << 30, 1 << 30)
        multi, p2 = out_of_core_sort_cost_ns(ssd, 1 << 30, 4 << 20)
        assert p2 > p1
        assert one / p1 == pytest.approx(
            ssd.read_cost_ns(4 << 30) + ssd.write_cost_ns(4 << 30)
        )

    def test_more_memory_never_more_passes(self):
        data = 8 << 30
        passes = [
            out_of_core_passes(data, mem)
            for mem in (64 << 20, 256 << 20, 1 << 30, 8 << 30)
        ]
        assert passes == sorted(passes, reverse=True)
        assert passes[-1] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            out_of_core_passes(0, 100)
        with pytest.raises(ValueError):
            out_of_core_passes(100, 0)
