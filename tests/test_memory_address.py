"""Unit + property tests for the global address map and ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import PAGE_SIZE, AddressRange, GlobalAddressMap


class TestAddressRange:
    def test_basic_fields(self):
        r = AddressRange(0x1000, 0x200)
        assert r.end == 0x1200
        assert r.contains(0x1000)
        assert r.contains(0x11FF)
        assert not r.contains(0x1200)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 10)
        with pytest.raises(ValueError):
            AddressRange(0, -10)

    def test_overlap(self):
        a = AddressRange(0, 100)
        b = AddressRange(50, 100)
        c = AddressRange(100, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_pages_single(self):
        r = AddressRange(10, 20)
        assert list(r.pages()) == [0]

    def test_pages_spanning(self):
        r = AddressRange(PAGE_SIZE - 1, 2)
        assert list(r.pages()) == [0, 1]

    def test_pages_empty(self):
        assert list(AddressRange(100, 0).pages()) == []

    def test_split_by_page_covers_range(self):
        r = AddressRange(100, 3 * PAGE_SIZE)
        parts = list(r.split_by_page())
        assert parts[0].base == 100
        assert sum(p.size for p in parts) == r.size
        assert parts[-1].end == r.end
        # each part stays within one page
        for p in parts:
            assert (p.base >> 12) == ((p.end - 1) >> 12)


class TestGlobalAddressMap:
    def test_worker_of_and_offset(self):
        amap = GlobalAddressMap(4, 1 << 20)
        addr = 3 * (1 << 20) + 0x123
        assert amap.worker_of(addr) == 3
        assert amap.local_offset(addr) == 0x123

    def test_global_address_roundtrip(self):
        amap = GlobalAddressMap(8, 1 << 20)
        g = amap.global_address(5, 0x456)
        assert amap.worker_of(g) == 5
        assert amap.local_offset(g) == 0x456

    def test_window(self):
        amap = GlobalAddressMap(2, 1 << 20)
        w = amap.window(1)
        assert w.base == 1 << 20
        assert w.size == 1 << 20

    def test_out_of_range_rejected(self):
        amap = GlobalAddressMap(2, 1 << 20)
        with pytest.raises(ValueError):
            amap.worker_of(2 << 20)
        with pytest.raises(ValueError):
            amap.worker_of(-1)
        with pytest.raises(ValueError):
            amap.global_address(2, 0)
        with pytest.raises(ValueError):
            amap.global_address(0, 1 << 20)
        with pytest.raises(ValueError):
            amap.window(5)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            GlobalAddressMap(0, 1 << 20)
        with pytest.raises(ValueError):
            GlobalAddressMap(4, 100)  # not page multiple

    def test_split_by_worker(self):
        amap = GlobalAddressMap(4, 1 << 20)
        rng = AddressRange((1 << 20) - 100, 200)
        parts = list(amap.split_by_worker(rng))
        assert [w for w, _ in parts] == [0, 1]
        assert parts[0][1].size == 100
        assert parts[1][1].size == 100

    @given(
        workers=st.integers(min_value=1, max_value=16),
        offset_pages=st.integers(min_value=0, max_value=255),
        inner=st.integers(min_value=0, max_value=PAGE_SIZE - 1),
    )
    def test_roundtrip_property(self, workers, offset_pages, inner):
        amap = GlobalAddressMap(workers, 256 * PAGE_SIZE)
        for w in range(workers):
            offset = offset_pages * PAGE_SIZE + inner
            g = amap.global_address(w, offset)
            assert amap.worker_of(g) == w
            assert amap.local_offset(g) == offset

    @given(
        base=st.integers(min_value=0, max_value=(1 << 22) - 1),
        size=st.integers(min_value=1, max_value=1 << 16),
    )
    def test_split_by_worker_partitions_exactly(self, base, size):
        amap = GlobalAddressMap(8, 1 << 20)
        size = min(size, amap.total_size - base)
        if size <= 0:
            return
        rng = AddressRange(base, size)
        parts = list(amap.split_by_worker(rng))
        assert sum(r.size for _, r in parts) == size
        # contiguous and ordered
        cursor = base
        for _, r in parts:
            assert r.base == cursor
            cursor = r.end
        assert cursor == rng.end
