"""Unit + property tests for UNIMEM space and the page registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    PAGE_SIZE,
    AddressRange,
    PageOwnershipError,
    PageRegistry,
    UnimemSpace,
)

WINDOW = 256 * PAGE_SIZE  # 1 MiB windows keep tests fast


class TestPageRegistry:
    def test_default_home_is_backing_worker(self):
        reg = PageRegistry()
        assert reg.cacheable_home(5, backing_worker=2) == 2

    def test_may_cache_only_home(self):
        reg = PageRegistry()
        assert reg.may_cache(0, 1, node=1)
        assert not reg.may_cache(0, 1, node=0)

    def test_move_home(self):
        reg = PageRegistry()
        reg.move_home(0, backing_worker=0, new_home=3)
        assert reg.cacheable_home(0, 0) == 3
        assert not reg.may_cache(0, 0, node=0)
        assert reg.home_moves == 1

    def test_move_home_noop_if_same(self):
        reg = PageRegistry()
        reg.move_home(0, 0, 0)
        assert reg.home_moves == 0

    def test_move_dirty_page_flushes(self):
        reg = PageRegistry()
        reg.record_access(0, 0, node=0, is_write=True)
        reg.move_home(0, 0, new_home=1)
        assert reg.flushes == 1
        assert not reg.lookup(0).dirty

    def test_record_access_tracks_remote_accessors(self):
        reg = PageRegistry()
        assert reg.record_access(0, 0, node=0, is_write=False) is True
        assert reg.record_access(0, 0, node=1, is_write=False) is False
        assert reg.record_access(0, 0, node=2, is_write=True) is False
        assert reg.pages_with_remote_traffic() == {0: 2}

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),   # page
                st.integers(0, 3),   # node
                st.booleans(),       # write
                st.booleans(),       # move home to this node first
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_single_cacheable_owner_invariant(self, ops):
        """At every step, at most one node is permitted to cache a page."""
        reg = PageRegistry()
        for page, node, write, move in ops:
            if move:
                reg.move_home(page, backing_worker=0, new_home=node)
            reg.record_access(page, 0, node, write)
            # the invariant: exactly one home; all cache permissions agree
            home = reg.cacheable_home(page, 0)
            allowed = [n for n in range(4) if reg.may_cache(page, 0, n)]
            assert allowed == [home]


class TestUnimemSpace:
    def test_local_access_plan(self):
        u = UnimemSpace(4, WINDOW)
        plan = u.plan_access(0, AddressRange(0x100, 64), is_write=False)
        assert plan.is_local
        assert plan.remote_bytes == 0
        assert plan.chunks[0][2] is True  # cacheable at home

    def test_remote_access_not_cacheable(self):
        u = UnimemSpace(4, WINDOW)
        addr = u.map.global_address(2, 0)
        plan = u.plan_access(0, AddressRange(addr, 64), is_write=False)
        assert not plan.is_local
        assert plan.remote_bytes == 64
        assert plan.chunks[0][2] is False  # node 0 may not cache worker 2's page

    def test_access_spanning_workers(self):
        u = UnimemSpace(4, WINDOW)
        rng = AddressRange(WINDOW - 32, 64)
        plan = u.plan_access(0, rng, is_write=True)
        workers = [w for w, _, __ in plan.chunks]
        assert workers == [0, 1]
        assert plan.remote_bytes == 32

    def test_rehome_makes_remote_page_cacheable(self):
        u = UnimemSpace(4, WINDOW)
        addr = u.map.global_address(3, 0)
        u.rehome_range(AddressRange(addr, PAGE_SIZE), new_home=0)
        plan = u.plan_access(0, AddressRange(addr, 64), is_write=False)
        assert plan.chunks[0][2] is True
        # and the backing worker itself may no longer cache it
        plan3 = u.plan_access(3, AddressRange(addr, 64), is_write=False)
        assert plan3.chunks[0][2] is False

    def test_rehome_invalid_node(self):
        u = UnimemSpace(2, WINDOW)
        with pytest.raises(PageOwnershipError):
            u.rehome_range(AddressRange(0, PAGE_SIZE), new_home=7)

    def test_out_of_space_rejected(self):
        u = UnimemSpace(2, WINDOW)
        with pytest.raises(ValueError):
            u.plan_access(0, AddressRange(2 * WINDOW - 8, 64), False)

    def test_traffic_summary(self):
        u = UnimemSpace(2, WINDOW)
        u.plan_access(0, AddressRange(0, 100), False)
        u.plan_access(0, AddressRange(WINDOW, 300), False)
        s = u.traffic_summary()
        assert s["local_bytes"] == 100
        assert s["remote_bytes"] == 300
        assert s["remote_fraction"] == pytest.approx(0.75)
        assert s["coherence_messages"] == 0.0

    def test_reset_traffic(self):
        u = UnimemSpace(2, WINDOW)
        u.plan_access(0, AddressRange(0, 100), False)
        u.reset_traffic()
        assert u.traffic_summary()["local_bytes"] == 0

    def test_page_home_lookup(self):
        u = UnimemSpace(4, WINDOW)
        addr = u.map.global_address(1, 0)
        assert u.page_home(addr) == 1
        u.rehome_range(AddressRange(addr, PAGE_SIZE), 2)
        assert u.page_home(addr) == 2

    @given(
        node=st.integers(0, 3),
        base=st.integers(0, 4 * 256 - 1),
        pages=st.integers(1, 8),
    )
    @settings(max_examples=50)
    def test_plan_partitions_range_exactly(self, node, base, pages):
        u = UnimemSpace(4, WINDOW)
        byte_base = base * PAGE_SIZE
        size = min(pages * PAGE_SIZE, u.map.total_size - byte_base)
        if size <= 0:
            return
        plan = u.plan_access(node, AddressRange(byte_base, size), False)
        assert sum(r.size for _, r, __ in plan.chunks) == size
        local = sum(r.size for w, r, __ in plan.chunks if w == node)
        assert local + plan.remote_bytes == size
