"""Unit tests for the kernel IR and the prebuilt kernel library."""

import pytest

from repro.hls import (
    ArrayArg,
    Kernel,
    OpKind,
    cart_split_kernel,
    fir_kernel,
    matmul_kernel,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
    vecadd_kernel,
)


class TestArrayArg:
    def test_accesses(self):
        a = ArrayArg("x", 4, reads_per_iter=2, writes_per_iter=1)
        assert a.accesses_per_iter == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayArg("x", elem_bytes=0)
        with pytest.raises(ValueError):
            ArrayArg("x", reads_per_iter=-1)
        with pytest.raises(ValueError):
            ArrayArg("x", footprint_elems=0)


class TestKernel:
    def test_trip_counts(self):
        k = Kernel("k", trip_counts=(10, 20), ops={OpKind.ADD: 1})
        assert k.inner_trip == 20
        assert k.outer_iterations == 10
        assert k.total_iterations == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            Kernel("k", trip_counts=())
        with pytest.raises(ValueError):
            Kernel("k", trip_counts=(0,))
        with pytest.raises(ValueError):
            Kernel("k", trip_counts=(4,), ops={OpKind.ADD: -1})
        with pytest.raises(ValueError):
            Kernel("k", trip_counts=(4,), recurrence=(0, 3))
        with pytest.raises(ValueError):
            Kernel(
                "k",
                trip_counts=(4,),
                arrays=(ArrayArg("a"), ArrayArg("a")),
            )

    def test_array_lookup(self):
        k = vecadd_kernel()
        assert k.array("a").name == "a"
        with pytest.raises(KeyError):
            k.array("nope")

    def test_ops_and_bytes_per_iteration(self):
        k = saxpy_kernel()
        assert k.ops_per_iteration() == 2
        assert k.bytes_per_iteration() == 3 * 4  # 2 reads + 1 write, fp32

    def test_arithmetic_intensity(self):
        low = vecadd_kernel()
        high = montecarlo_kernel()
        assert high.arithmetic_intensity() > low.arithmetic_intensity()


class TestKernelLibrary:
    @pytest.mark.parametrize(
        "factory",
        [
            vecadd_kernel,
            saxpy_kernel,
            matmul_kernel,
            stencil_kernel,
            fir_kernel,
            montecarlo_kernel,
            cart_split_kernel,
        ],
    )
    def test_all_kernels_wellformed(self, factory):
        k = factory()
        assert k.total_iterations > 0
        assert k.ops_per_iteration() > 0
        assert k.arrays  # every kernel touches memory
        assert k.description

    def test_matmul_has_recurrence(self):
        assert matmul_kernel().recurrence == (1, 3)

    def test_montecarlo_parallel(self):
        assert montecarlo_kernel().recurrence is None

    def test_stencil_validation(self):
        with pytest.raises(ValueError):
            stencil_kernel(points=2)

    def test_parametric_sizes(self):
        assert vecadd_kernel(128).inner_trip == 128
        assert matmul_kernel(8).total_iterations == 512
