"""Integration: defragmentation makes a large module placeable.

Section 4.3 lists "defragmenting the reconfigurable resources" among the
middleware's virtualization features; this test plays the scenario that
motivates it end to end on a fabric with uneven region sizes.
"""

import pytest

from repro.core import Worker, WorkerParams
from repro.core.middleware import PartialReconfigDriver
from repro.fabric import (
    AcceleratorModule,
    Bitstream,
    Fabric,
    Floorplanner,
    Placement,
    ReconfigurationController,
    ResourceVector,
    TileGrid,
)
from repro.sim import Simulator, spawn


def module_with(luts, name, function):
    return AcceleratorModule(
        name=name,
        function=function,
        resources=ResourceVector(luts=luts, ffs=luts),
        bitstream=Bitstream.synthesize(name, 4, 0.4, seed=hash(name) & 0xFF),
    )


def uneven_worker(sim):
    """One large region (20 columns) and two small ones (10 each)."""
    worker = Worker(sim, 0, WorkerParams(fabric_columns=40, fabric_rows=50,
                                         fabric_regions=3))
    grid = worker.floorplanner.grid
    placements = [
        Placement(0, 20, grid.span_resources(0, 20)),
        Placement(20, 10, grid.span_resources(20, 10)),
        Placement(30, 10, grid.span_resources(30, 10)),
    ]
    worker.fabric = Fabric(sim, placements, name=f"{worker.name}.fabric")
    worker.reconfig = ReconfigurationController(
        sim, worker.fabric, worker.params.config_port,
        use_compression=True, name=worker.name,
    )
    return worker


def run(sim, gen):
    out = {}

    def proc():
        out["v"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("v")


def test_defrag_consolidates_small_modules_to_free_large_region():
    sim = Simulator()
    worker = uneven_worker(sim)
    driver = PartialReconfigDriver(worker)
    regions = worker.fabric.regions
    large, small_a, small_b = regions

    # the pathological layout a naive first-fit produces: a tiny module
    # squatting in the only large region
    tiny = module_with(100, "tiny", "f_small")
    placed = run(sim, worker.load_module(tiny, large))
    assert placed is large

    # a module needing more than a small region has no free home now
    big = module_with(int(small_a.capacity.luts * 2), "big", "f_big")
    assert big.resources.fits_in(large.capacity)
    assert not big.resources.fits_in(small_a.capacity)
    assert not [r for r in worker.fabric.free_regions() if r.can_host(big)]

    # defragmentation relocates the tiny module into a small region...
    report = run(sim, driver.defragment())
    assert report.moves == 1
    assert report.largest_free_area_after > report.largest_free_area_before
    assert large.module is None

    # ...and the big module now loads without evicting anyone
    placed_big = run(sim, worker.load_module(big))
    assert placed_big is large
    assert sorted(worker.fabric.loaded_functions()) == ["f_big", "f_small"]
    # the move was a real partial reconfiguration (paid for on the port)
    assert worker.reconfig.reconfigurations == 3  # tiny, tiny-move, big
