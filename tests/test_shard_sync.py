"""Unit contracts of the sharded engine's sync/bridge/merge layers.

The deterministic tie-break is the heart of the byte-identity claim:
simultaneous cross-partition deliveries land in ``(deliver_ns, src_node,
seq)`` order no matter how nodes are grouped into partitions, zero
lookahead is rejected up front (a zero-latency inter-node link admits no
conservative window), and telemetry streams merge under the canonical
``(time_ns, node_id, seq)`` key.
"""

import math

import pytest

from repro.shard import (
    NodeCell,
    PartitionPlan,
    PartitionRuntime,
    ShardError,
    default_lookahead_ns,
    run_conservative,
    sort_messages,
)
from repro.shard.bridge import BridgeMessage, NodeBridge
from repro.sim import Simulator
from repro.telemetry.merge import merge_streams


# ----------------------------------------------------------------------
# partition plan
# ----------------------------------------------------------------------
def test_plan_partitions_nodes_contiguously():
    plan = PartitionPlan.build(8, 4)
    assert [list(plan.nodes_in(p)) for p in range(4)] == [
        [0, 1], [2, 3], [4, 5], [6, 7]
    ]
    for node in range(8):
        assert node in plan.nodes_in(plan.partition_of(node))


def test_plan_rejects_zero_lookahead():
    with pytest.raises(ShardError):
        PartitionPlan.build(2, 2, lookahead_ns=0.0)


def test_default_lookahead_is_inter_node_link_latency():
    assert default_lookahead_ns() > 0.0


def test_plan_rejects_more_partitions_than_nodes():
    with pytest.raises(ShardError):
        PartitionPlan.build(2, 4)


# ----------------------------------------------------------------------
# bridge ordering
# ----------------------------------------------------------------------
def test_bridge_rejects_sub_lookahead_latency():
    sim = Simulator()
    bridge = NodeBridge(0, sim, lookahead_ns=40.0)
    with pytest.raises(ShardError):
        bridge.send(1, "x", {}, latency_ns=39.0)


def test_sort_messages_breaks_ties_by_src_then_seq():
    msgs = [
        BridgeMessage(40.0, 2, 0, 9, "x", None),
        BridgeMessage(40.0, 1, 1, 9, "x", None),
        BridgeMessage(40.0, 1, 0, 9, "x", None),
        BridgeMessage(39.0, 3, 0, 9, "x", None),
    ]
    ordered = sort_messages(msgs)
    assert [(m.deliver_ns, m.src_node, m.seq) for m in ordered] == [
        (39.0, 3, 0), (40.0, 1, 0), (40.0, 1, 1), (40.0, 2, 0)
    ]


# ----------------------------------------------------------------------
# simultaneous cross-partition deliveries
# ----------------------------------------------------------------------
def _echo_cells(plan):
    """Two nodes; node 0 sends two messages and node 1 one self-message,
    all delivered at exactly t = lookahead on node 1."""
    arrivals = []
    cells = {}
    for node_id in (0, 1):
        sim = Simulator()
        cell = NodeCell(node_id, sim)
        gate = cell.gate(0.0)

        def send(cell=cell, gate=gate, node_id=node_id):
            if node_id == 0:
                cell.bridge.send(1, "probe", "a", plan.lookahead_ns)
                cell.bridge.send(1, "probe", "b", plan.lookahead_ns)
            else:
                cell.bridge.send(1, "probe", "self", plan.lookahead_ns)
            gate.next_send_ns = None

        sim.schedule_at(0.0, send)
        cell.on(
            "probe",
            lambda msg, sim=sim: arrivals.append(
                (sim.now, msg.src_node, msg.seq, msg.payload)
            ),
        )
        cell.fragment = dict
        cells[node_id] = cell
    return cells, arrivals


@pytest.mark.parametrize("partitions", [1, 2])
def test_simultaneous_deliveries_follow_canonical_order(partitions):
    plan = PartitionPlan.build(2, partitions)
    cells, arrivals = _echo_cells(plan)
    runtimes = [PartitionRuntime(p, plan) for p in range(partitions)]
    for node_id, cell in cells.items():
        runtimes[plan.partition_of(node_id)].add_cell(cell)
    stats = run_conservative(plan, runtimes)
    lam = plan.lookahead_ns
    # all three land at t = lookahead on node 1, ordered (src, seq)
    assert arrivals == [
        (lam, 0, 0, "a"), (lam, 0, 1, "b"), (lam, 1, 0, "self")
    ]
    assert stats.messages == 3


def test_stalled_send_gate_raises():
    plan = PartitionPlan.build(1, 1)
    sim = Simulator()
    cell = NodeCell(0, sim)
    cell.gate(0.0)              # claims a send at t=0 ...
    sim.schedule_at(1_000.0, lambda: None)   # ... but nothing fires there
    runtime = PartitionRuntime(0, plan)
    runtime.add_cell(cell)
    with pytest.raises(ShardError):
        run_conservative(plan, [runtime])


def test_unbounded_window_send_raises():
    plan = PartitionPlan.build(1, 1)
    sim = Simulator()
    cell = NodeCell(0, sim)
    runtime = PartitionRuntime(0, plan)
    runtime.add_cell(cell)
    # no gate registered, so the coordinator grants an infinite window;
    # a send inside it is a protocol violation, not silent corruption
    sim.schedule_at(5.0, lambda: cell.bridge.send(0, "x", {}, plan.lookahead_ns))
    with pytest.raises(ShardError):
        run_conservative(plan, [runtime])


def test_missing_handler_raises():
    plan = PartitionPlan.build(1, 1)
    sim = Simulator()
    cell = NodeCell(0, sim)
    gate = cell.gate(0.0)

    def send():
        cell.bridge.send(0, "unhandled", {}, plan.lookahead_ns)
        gate.next_send_ns = None

    sim.schedule_at(0.0, send)
    runtime = PartitionRuntime(0, plan)
    runtime.add_cell(cell)
    with pytest.raises(ShardError):
        run_conservative(plan, [runtime])


def test_pause_stops_before_boundary_events_fire():
    plan = PartitionPlan.build(1, 1)
    sim = Simulator()
    cell = NodeCell(0, sim)
    fired = []
    sim.schedule_at(10.0, lambda: fired.append(10.0))
    sim.schedule_at(100.0, lambda: fired.append(100.0))
    runtime = PartitionRuntime(0, plan)
    runtime.add_cell(cell)
    run_conservative(plan, [runtime], pause_at_ns=100.0)
    # strictly-below semantics: the event at the boundary did not fire
    assert fired == [10.0]


# ----------------------------------------------------------------------
# telemetry stream merge
# ----------------------------------------------------------------------
def test_merge_streams_canonical_tiebreak():
    merged = merge_streams({
        1: [(5.0, 0, "n1a"), (5.0, 1, "n1b")],
        0: [(5.0, 0, "n0a"), (7.0, 0, "n0b")],
    })
    assert merged == [
        (5.0, 0, 0, "n0a"),
        (5.0, 1, 0, "n1a"),
        (5.0, 1, 1, "n1b"),
        (7.0, 0, 0, "n0b"),
    ]


def test_merge_streams_rejects_unsorted_input():
    with pytest.raises(ValueError):
        merge_streams({0: [(5.0, 1, "x"), (5.0, 0, "y")]})
