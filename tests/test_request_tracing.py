"""Tests for request-scoped causal tracing and SLO burn-rate alerting:
the TraceContext propagation gateway -> batcher -> runtime, span-tree
structure, the critical-path analyzer's exact reconciliation, sampling
policy (head + always-on-violation), job-tag provenance through the
engine and chaos retries, Perfetto export of causal spans, and the
multi-window burn-rate alerter's deterministic fire/clear timeline."""

import json

import pytest

from repro.core import ComputeNode
from repro.core.runtime import ExecutionEngine
from repro.presets import (
    ServingScenario,
    TenantSpec,
    compiled_suite,
    node_preset,
    serving_preset,
)
from repro.serving import (
    STAGES,
    BurnRateAlerter,
    BurnRatePolicy,
    CriticalPathAnalyzer,
    ServingGateway,
    TraceConfig,
    run_serving_experiment,
)
from repro.sim import Simulator
from repro.telemetry import Telemetry, chrome_trace, validate_span_tree

US = 1_000.0
MS = 1_000_000.0


def traced_run(
    scenario,
    scenario_name="custom",
    seed=0,
    tracing=None,
    alerts=None,
    hub=False,
    fault_tolerance=None,
    crash=None,
):
    """Hand-wired serving run returning (gateway, report, telemetry)."""
    registry, library = compiled_suite(max_variants=2)
    sim = Simulator()
    telemetry = Telemetry(sim) if hub else None
    node = ComputeNode(sim, node_preset(scenario.node))
    if telemetry is not None:
        node.attach_telemetry(telemetry)
    engine = ExecutionEngine(
        node, registry, library, use_daemon=False, telemetry=telemetry,
        fault_tolerance=fault_tolerance,
    )
    gateway = ServingGateway(
        engine, scenario, seed=seed, scenario_name=scenario_name,
        telemetry=telemetry, tracing=tracing, alerts=alerts,
    )
    if crash is not None:
        from repro.chaos import ChaosController

        worker_id, at_ns, downtime_ns = crash
        controller = ChaosController(sim, seed=seed, telemetry=telemetry)
        controller.crash_worker(engine, worker_id, at_ns,
                                downtime_ns=downtime_ns)
        controller.arm()
    return gateway, gateway.run(), telemetry


# ----------------------------------------------------------------------
# config + analyzer units
# ----------------------------------------------------------------------
class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_every=0)
        with pytest.raises(ValueError):
            TraceConfig(top_k=-1)

    def test_defaults(self):
        cfg = TraceConfig()
        assert cfg.sample_every == 8
        assert cfg.sample_on_violation


class TestCriticalPathAnalyzer:
    def stages(self, **kw):
        base = {s: 0.0 for s in STAGES}
        base.update(kw)
        return base

    def test_breakdown_shares_sum_to_one(self):
        a = CriticalPathAnalyzer()
        a.record("t", "f", 0, self.stages(batch_wait=10.0, execute=30.0),
                 40.0, "head")
        a.record("t", "f", 1, self.stages(batch_wait=20.0, execute=20.0),
                 40.0, "head")
        b = a.breakdown()["t"]
        assert b["latency_total_ns"] == pytest.approx(80.0)
        assert sum(c["share"] for c in b["stages"].values()) == pytest.approx(1.0)
        assert b["stages"]["batch_wait"]["max_ns"] == 20.0
        assert b["stages"]["execute"]["mean_ns"] == pytest.approx(25.0)

    def test_dominant_stage_tie_breaks_earliest(self):
        a = CriticalPathAnalyzer()
        a.record("t", "f", 0, self.stages(batch_wait=5.0, execute=5.0),
                 10.0, "head")
        assert a.top_slowest()[0]["dominant_stage"] == "batch_wait"

    def test_top_slowest_stable_ranking(self):
        a = CriticalPathAnalyzer(top_k=2)
        for rid, lat in ((3, 10.0), (1, 30.0), (2, 30.0), (0, 5.0)):
            a.record("t", "f", rid, self.stages(execute=lat), lat, "head")
        rows = a.top_slowest()
        assert [r["request_id"] for r in rows] == [1, 2]  # ties by id


# ----------------------------------------------------------------------
# burn-rate alerter units
# ----------------------------------------------------------------------
class TestBurnRatePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRatePolicy(target=1.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(fast_window_ns=0.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(min_completions=0)
        with pytest.raises(ValueError):
            BurnRatePolicy(slo_scale=0.0)

    def test_budget(self):
        assert BurnRatePolicy(target=0.95).budget == pytest.approx(0.05)


class TestBurnRateAlerter:
    def policy(self):
        return BurnRatePolicy(
            target=0.9, fast_window_ns=100.0, fast_burn=5.0,
            slow_window_ns=1000.0, slow_burn=2.0, min_completions=4,
        )

    def test_fires_and_clears(self):
        a = BurnRateAlerter(self.policy())
        # 4 straight violations: rate 1.0 / budget 0.1 = burn 10 >= 5
        for i in range(4):
            a.observe(float(i), "t", latency_ns=100.0, slo_ns=10.0)
        assert a.is_burning("t", "fast")
        assert a.fired >= 1
        # a run of healthy completions inside the fast window clears it
        for i in range(4, 40):
            a.observe(float(i), "t", latency_ns=1.0, slo_ns=10.0)
        assert not a.is_burning("t", "fast")
        events = [e["event"] for e in a.timeline
                  if e["window"] == "fast"]
        assert events[0] == "fire" and "clear" in events

    def test_needs_min_completions(self):
        a = BurnRateAlerter(self.policy())
        for i in range(3):                       # one short of the floor
            a.observe(float(i), "t", latency_ns=100.0, slo_ns=10.0)
        assert not a.is_burning()

    def test_old_samples_fall_out_of_the_window(self):
        a = BurnRateAlerter(self.policy())
        for i in range(4):
            a.observe(float(i), "t", latency_ns=100.0, slo_ns=10.0)
        # 200 ns later the fast window (100 ns) has forgotten them all
        for i in range(4):
            a.observe(200.0 + i, "t", latency_ns=1.0, slo_ns=10.0)
        assert not a.is_burning("t", "fast")

    def test_slo_scale_tightens_the_objective(self):
        tight = BurnRatePolicy(
            target=0.9, min_completions=1, fast_burn=1.0, slo_scale=0.1,
        )
        a = BurnRateAlerter(tight)
        # latency is within the contractual SLO but past 10% of it
        a.observe(0.0, "t", latency_ns=50.0, slo_ns=100.0)
        assert a.is_burning("t")

    def test_is_burning_filters(self):
        a = BurnRateAlerter(self.policy())
        for i in range(4):
            a.observe(float(i), "t1", latency_ns=100.0, slo_ns=10.0)
        assert a.is_burning("t1")
        assert not a.is_burning("t2")
        assert a.is_burning(window="fast")
        assert ("t1", "fast") in a.active()

    def test_report_block_shape(self):
        a = BurnRateAlerter(self.policy())
        a.observe(0.0, "t", latency_ns=1.0, slo_ns=10.0)
        block = a.report_block()
        assert block["observed"] == 1
        assert block["fired"] == 0
        assert block["policy"]["target"] == 0.9
        assert block["timeline"] == []


# ----------------------------------------------------------------------
# end-to-end traced serving run
# ----------------------------------------------------------------------
class TestTracedServingRun:
    @pytest.fixture(scope="class")
    def run(self):
        return traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            tracing=TraceConfig(sample_every=1),
        )

    def test_every_request_yields_a_complete_span_tree(self, run):
        gateway, report, _ = run
        sink = gateway.request_tracer.tracer
        # structural acceptance: every offered request (sample_every=1)
        # became a well-formed tree -- one root, parents resolve
        # in-trace, no cycles, every span closed
        assert validate_span_tree(sink.spans) == report.offered
        assert report.tracing["sampled_traces"] == report.offered

    def test_completed_trees_have_all_stages(self, run):
        gateway, report, _ = run
        sink = gateway.request_tracer.tracer
        completed = 0
        for tid in sink.trace_ids():
            spans = sink.trace_spans(tid)
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1
            kinds = {s.kind for s in spans}
            if roots[0].attrs["outcome"] == "completed":
                completed += 1
                assert {"request", "admission", "batch.wait",
                        "sched.queue", "execute"} <= kinds
            else:
                assert kinds == {"request", "admission"}
        assert completed == report.completed

    def test_stage_spans_tile_the_request_exactly(self, run):
        gateway, _, _ = run
        sink = gateway.request_tracer.tracer
        for tid in sink.trace_ids():
            spans = sink.trace_spans(tid)
            root = next(s for s in spans if s.parent_id is None)
            if root.attrs["outcome"] != "completed":
                continue
            stages = {s.kind: s for s in spans if s.parent_id == root.span_id}
            # the three interval stages tile [arrived, completed]: no
            # gaps, no overlap, sum == end-to-end latency
            assert stages["batch.wait"].start == root.start
            assert stages["batch.wait"].end == stages["sched.queue"].start
            assert stages["sched.queue"].end == stages["execute"].start
            assert stages["execute"].end == root.end
            total = sum(stages[k].duration
                        for k in ("batch.wait", "sched.queue", "execute"))
            assert total == pytest.approx(root.duration, rel=1e-9)

    def test_breakdown_reconciles_with_slo_tracker(self, run):
        _, report, _ = run
        # the analyzer's per-tenant latency total must agree with the
        # independently-kept SLOTracker summary (mean * count)
        for tenant, block in report.tracing["breakdown"].items():
            lat = report.tenants[tenant]["latency_ns"]
            assert block["latency_total_ns"] == pytest.approx(
                lat["mean"] * lat["count"], rel=1e-6
            )
            stage_sum = sum(
                c["total_ns"] for c in block["stages"].values()
            )
            assert stage_sum == pytest.approx(
                block["latency_total_ns"], rel=1e-9
            )

    def test_analyzer_covers_every_completion(self, run):
        _, report, _ = run
        tr = report.tracing
        assert tr["requests_analyzed"] == report.completed
        assert tr["sample_every"] == 1
        assert tr["spans"] > 0
        for row in tr["top_slowest"]:
            assert row["dominant_stage"] in STAGES
            assert sum(row["stages"].values()) == pytest.approx(
                row["latency_ns"], rel=1e-9
            )

    def test_tracing_block_is_deterministic(self, run):
        _, report, _ = run
        _, replay, _ = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            tracing=TraceConfig(sample_every=1),
        )
        assert json.dumps(report.tracing, sort_keys=True) == \
            json.dumps(replay.tracing, sort_keys=True)

    def test_tracing_does_not_perturb_the_run(self, run):
        _, report, _ = run
        plain = run_serving_experiment(preset="steady", seed=0)
        traced = json.loads(report.json())
        traced.pop("tracing")
        assert "alerts" not in traced
        assert json.dumps(traced, sort_keys=True) == plain.json()


class TestSamplingPolicy:
    def test_head_sampling_is_modular(self):
        gateway, report, _ = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            tracing=TraceConfig(sample_every=8),
        )
        sink = gateway.request_tracer.tracer
        for tid in sink.trace_ids():
            root = next(s for s in sink.trace_spans(tid)
                        if s.parent_id is None)
            if root.attrs["sampled"] == "head":
                assert tid % 8 == 0
        assert 0 < report.tracing["sampled_traces"] < report.offered

    def test_violators_are_always_traced(self):
        # a tenant whose SLO no completion can meet: with 1-in-1000 head
        # sampling nearly every trace must arrive via the violation path
        scenario = ServingScenario(
            node="mini",
            tenants=(
                TenantSpec(name="t", requests=30, rate_rps=100_000.0,
                           slo_ns=1.0),
            ),
        )
        gateway, report, _ = traced_run(
            scenario, tracing=TraceConfig(sample_every=1000),
        )
        tr = report.tracing
        assert tr["violation_upgrades"] == report.completed - 1  # id 0 is head
        assert tr["sampled_traces"] >= report.completed
        sink = gateway.request_tracer.tracer
        hows = {
            next(s for s in sink.trace_spans(tid)
                 if s.parent_id is None).attrs["sampled"]
            for tid in sink.trace_ids()
        }
        assert "slo" in hows

    def test_violation_sampling_can_be_disabled(self):
        scenario = ServingScenario(
            node="mini",
            tenants=(
                TenantSpec(name="t", requests=30, rate_rps=100_000.0,
                           slo_ns=1.0),
            ),
        )
        _, report, _ = traced_run(
            scenario,
            tracing=TraceConfig(sample_every=1000,
                                sample_on_violation=False),
        )
        assert report.tracing["violation_upgrades"] == 0
        # the breakdown still covers everyone: sampling only gates spans
        assert report.tracing["requests_analyzed"] == report.completed


# ----------------------------------------------------------------------
# provenance tags through the engine + chaos
# ----------------------------------------------------------------------
class TestTagPropagation:
    def test_scheduler_events_carry_request_ids(self):
        gateway, report, hub = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            tracing=TraceConfig(sample_every=4), hub=True,
        )
        decisions = [e for e in hub.events
                     if e.kind == "scheduler.decision"]
        assert decisions
        tagged = [e for e in decisions if e.attrs.get("requests")]
        assert len(tagged) == len(decisions)
        seen = {rid for e in tagged for rid in e.attrs["requests"]}
        batches = [e for e in hub.events if e.kind == "serve.batch"]
        assert batches and all(e.attrs.get("requests") for e in batches)
        from_batches = {rid for e in batches for rid in e.attrs["requests"]}
        assert seen == from_batches          # same requests, both layers

    def test_untraced_events_carry_no_request_tags(self):
        _, _, hub = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            hub=True,
        )
        decisions = [e for e in hub.events
                     if e.kind == "scheduler.decision"]
        assert decisions
        assert not any("requests" in e.attrs for e in decisions)

    def test_chaos_retry_events_carry_request_ids(self):
        from repro.core.runtime import FaultTolerancePolicy

        gateway, report, hub = traced_run(
            serving_preset("flash-crowd"), scenario_name="flash-crowd",
            seed=7, tracing=TraceConfig(sample_every=1), hub=True,
            fault_tolerance=FaultTolerancePolicy(
                heartbeat_period_ns=10_000.0, miss_threshold=2),
            crash=(1, 400_000.0, 600_000.0),
        )
        assert report.machine["tasks_retried"] >= 1
        retries = [e for e in hub.events if e.kind == "runtime.task_retry"]
        assert retries
        assert all(e.attrs.get("requests") for e in retries)
        # the retried requests surface in their span trees too
        retried_ids = {rid for e in retries for rid in e.attrs["requests"]}
        sink = gateway.request_tracer.tracer
        retry_spans = [
            s for tid in sink.trace_ids() for s in sink.trace_spans(tid)
            if s.kind == "retry"
        ]
        assert retry_spans
        assert {s.trace_id for s in retry_spans} <= retried_ids


# ----------------------------------------------------------------------
# Perfetto export of causal spans
# ----------------------------------------------------------------------
class TestPerfettoExport:
    def test_causal_spans_and_process_metadata(self):
        _, _, hub = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
            tracing=TraceConfig(sample_every=8), hub=True,
        )
        trace = chrome_trace(hub, include_events=False)
        events = trace["traceEvents"]
        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"serve", "node0"} <= procs
        causal = [e for e in events
                  if e["ph"] == "X" and e.get("cat") == "trace"]
        assert causal
        for e in causal:
            assert "trace_id" in e["args"] and "span_id" in e["args"]
        # runtime lane spans stay in the "sim" category, untagged
        assert any(e.get("cat") == "sim" for e in events
                   if e["ph"] == "X")


# ----------------------------------------------------------------------
# burn-rate alerting end to end
# ----------------------------------------------------------------------
class TestAlertsEndToEnd:
    @pytest.fixture(scope="class")
    def flash(self):
        policy = BurnRatePolicy(slo_scale=0.1)
        return run_serving_experiment(
            preset="flash-crowd", seed=0, alerts=policy,
        )

    def test_alerts_fire_on_the_flash_crowd(self, flash):
        al = flash.alerts
        assert al["fired"] >= 1
        assert al["observed"] == flash.completed
        events = {e["event"] for e in al["timeline"]}
        assert "fire" in events
        for e in al["timeline"]:
            assert e["window"] in ("fast", "slow")
            assert e["burn"] > 0.0

    def test_alert_timeline_replays_identically(self, flash):
        replay = run_serving_experiment(
            preset="flash-crowd", seed=0,
            alerts=BurnRatePolicy(slo_scale=0.1),
        )
        assert json.dumps(flash.alerts, sort_keys=True) == \
            json.dumps(replay.alerts, sort_keys=True)

    def test_alerting_does_not_perturb_the_run(self, flash):
        plain = run_serving_experiment(preset="flash-crowd", seed=0)
        core = json.loads(flash.json())
        core.pop("alerts")
        assert json.dumps(core, sort_keys=True) == plain.json()

    def test_autoscaler_opts_into_alert_pressure(self):
        gateway, _, _ = traced_run(
            serving_preset("steady"), scenario_name="steady", seed=0,
        )

        class Firing:
            def is_burning(self):
                return True

        auto = gateway.autoscaler
        assert not auto._slo_pressure()          # stock steady: no pressure
        auto.alert_source = Firing()
        assert auto._slo_pressure()              # the opt-in hook works
