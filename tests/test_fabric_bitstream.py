"""Unit + property tests for bitstreams and RLE compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import (
    Bitstream,
    compress_rle,
    decompress_rle,
    synthesize_config_data,
)
from repro.fabric.bitstream import FRAME_BYTES


class TestRle:
    def test_roundtrip_simple(self):
        data = b"\x00" * 100 + b"abc" + b"\x07" * 50
        assert decompress_rle(compress_rle(data)) == data

    def test_zero_run_shrinks(self):
        data = b"\x00" * 1000
        assert len(compress_rle(data)) < 20

    def test_literal_zero_escaped(self):
        data = b"a\x00b"
        comp = compress_rle(data)
        assert decompress_rle(comp) == data

    def test_empty(self):
        assert compress_rle(b"") == b""
        assert decompress_rle(b"") == b""

    def test_truncated_stream_rejected(self):
        with pytest.raises(ValueError):
            decompress_rle(b"\x00")
        with pytest.raises(ValueError):
            decompress_rle(b"\x00\x05")

    @given(st.binary(max_size=2000))
    @settings(max_examples=100)
    def test_roundtrip_property(self, data):
        assert decompress_rle(compress_rle(data)) == data

    @given(st.binary(max_size=2000))
    @settings(max_examples=50)
    def test_bounded_expansion(self, data):
        # worst case: every byte is a literal 0x00 -> 2x
        assert len(compress_rle(data)) <= 2 * len(data) + 3


class TestSynthesize:
    def test_size(self):
        data = synthesize_config_data(10, 0.5)
        assert len(data) == 10 * FRAME_BYTES

    def test_deterministic(self):
        assert synthesize_config_data(5, 0.4, seed=7) == synthesize_config_data(5, 0.4, seed=7)
        assert synthesize_config_data(5, 0.4, seed=7) != synthesize_config_data(5, 0.4, seed=8)

    def test_sparse_compresses_better_than_dense(self):
        sparse = synthesize_config_data(50, 0.1)
        dense = synthesize_config_data(50, 0.9)
        assert len(compress_rle(sparse)) < len(compress_rle(dense))

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_config_data(-1, 0.5)
        with pytest.raises(ValueError):
            synthesize_config_data(1, 1.5)


class TestBitstream:
    def test_synthesize_and_size(self):
        bs = Bitstream.synthesize("mod", frames=8, fill_fraction=0.5)
        assert bs.size_bytes == 8 * FRAME_BYTES
        assert bs.frames == 8

    def test_data_length_checked(self):
        with pytest.raises(ValueError):
            Bitstream("m", frames=2, data=b"short")

    def test_compress_roundtrip(self):
        bs = Bitstream.synthesize("mod", frames=10, fill_fraction=0.3)
        comp = bs.compress()
        assert comp.compression_ratio > 1.0
        restored = comp.decompress()
        assert restored.data == bs.data

    def test_compression_ratio_tracks_sparsity(self):
        sparse = Bitstream.synthesize("s", 20, 0.1).compress()
        dense = Bitstream.synthesize("d", 20, 0.95).compress()
        assert sparse.compression_ratio > dense.compression_ratio
        assert sparse.compression_ratio > 3.0  # sparse bitstreams win big

    def test_unique_ids(self):
        a = Bitstream.synthesize("a", 1, 0.5)
        b = Bitstream.synthesize("b", 1, 0.5)
        assert a.bitstream_id != b.bitstream_id
