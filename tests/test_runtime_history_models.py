"""Unit tests for execution history and prediction models."""

import numpy as np
import pytest

from repro.core.runtime import (
    DeviceSelector,
    ExecutionHistory,
    ExecutionRecord,
    KnnPredictor,
    LinearModel,
    PcaRegressor,
    kernel_features,
)


def rec(function="f", device="sw", items=100, latency=1000.0, t=0.0, worker=0, energy=10.0):
    return ExecutionRecord(
        function=function,
        device=device,
        worker=worker,
        items=items,
        latency_ns=latency,
        energy_pj=energy,
        timestamp=t,
    )


class TestHistory:
    def test_append_and_query(self):
        h = ExecutionHistory()
        h.append(rec("a", "sw", t=1.0))
        h.append(rec("a", "hw", t=2.0))
        h.append(rec("b", "sw", t=3.0))
        assert len(h) == 3
        assert len(h.records("a")) == 2
        assert len(h.records("a", "hw")) == 1
        assert len(h.records(since=2.5)) == 1
        assert h.functions() == ["a", "b"]

    def test_capacity_evicts_oldest(self):
        h = ExecutionHistory(capacity=2)
        for i in range(5):
            h.append(rec(items=i + 1))
        assert len(h) == 2
        assert h.records()[0].items == 4

    def test_call_counts_and_hotness(self):
        h = ExecutionHistory()
        for _ in range(3):
            h.append(rec("hot", latency=100.0))
        h.append(rec("cold", latency=1.0))
        assert h.call_counts() == {"hot": 3, "cold": 1}
        assert h.total_time_by_function()["hot"] == 300.0

    def test_mean_latency(self):
        h = ExecutionHistory()
        h.append(rec("f", "sw", latency=100.0))
        h.append(rec("f", "sw", latency=300.0))
        assert h.mean_latency("f", "sw") == 200.0
        assert h.mean_latency("missing") is None

    def test_save_load_roundtrip(self, tmp_path):
        h = ExecutionHistory()
        h.append(rec("a", "hw", items=7, latency=42.0, t=5.0))
        path = tmp_path / "history.json"
        h.save(path)
        loaded = ExecutionHistory.load(path)
        assert len(loaded) == 1
        assert loaded.records()[0] == h.records()[0]

    def test_record_validation(self):
        with pytest.raises(ValueError):
            rec(device="gpu")
        with pytest.raises(ValueError):
            rec(items=0)
        with pytest.raises(ValueError):
            ExecutionHistory(capacity=0)


class TestModels:
    def make_linear_data(self, slope=3.0, intercept=50.0, n=30):
        rng = np.random.default_rng(0)
        items = rng.integers(10, 10000, size=n)
        x = np.array([kernel_features(int(i)) for i in items])
        y = slope * items + intercept + rng.normal(0, 1.0, size=n)
        return x, y, items

    def test_kernel_features_validation(self):
        with pytest.raises(ValueError):
            kernel_features(0)
        f = kernel_features(100, 400, 400)
        assert f.shape == (4,)
        assert f[2] == 800.0

    def test_linear_model_recovers_trend(self):
        x, y, items = self.make_linear_data()
        m = LinearModel().fit(x, y)
        pred = m.predict_one(kernel_features(5000))
        assert pred == pytest.approx(3.0 * 5000 + 50.0, rel=0.05)

    def test_linear_model_validation(self):
        with pytest.raises(ValueError):
            LinearModel(alpha=-1)
        m = LinearModel()
        with pytest.raises(RuntimeError):
            m.predict_one(kernel_features(10))
        with pytest.raises(ValueError):
            m.fit(np.zeros((1, 4)), np.zeros(1))  # too few samples

    def test_pca_regressor(self):
        x, y, _ = self.make_linear_data()
        m = PcaRegressor(components=2).fit(x, y)
        pred = m.predict_one(kernel_features(5000))
        assert pred == pytest.approx(3.0 * 5000 + 50.0, rel=0.10)
        with pytest.raises(ValueError):
            PcaRegressor(components=0)
        with pytest.raises(RuntimeError):
            PcaRegressor().predict_one(kernel_features(10))

    def test_knn_interpolates(self):
        x = np.array([kernel_features(i) for i in (10, 20, 30)])
        y = np.array([100.0, 200.0, 300.0])
        m = KnnPredictor(k=1).fit(x, y)
        assert m.predict_one(kernel_features(21)) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            KnnPredictor(k=0)


class TestDeviceSelector:
    def filled_history(self, sw_slope=10.0, hw_slope=1.0, n=20):
        h = ExecutionHistory()
        rng = np.random.default_rng(1)
        for _ in range(n):
            items = int(rng.integers(100, 10000))
            h.append(rec("f", "sw", items=items, latency=sw_slope * items + 500))
            h.append(rec("f", "hw", items=items, latency=hw_slope * items + 2000))
        return h

    def test_abstains_when_cold(self):
        sel = DeviceSelector(min_samples=5)
        sel.train(ExecutionHistory())
        assert sel.choose_device("f", 100) is None
        assert sel.predict_latency("f", "sw", 100) is None

    def test_chooses_hw_for_large_calls(self):
        sel = DeviceSelector(min_samples=5)
        sel.train(self.filled_history())
        assert sel.choose_device("f", 50000) == "hw"

    def test_chooses_sw_for_tiny_calls(self):
        # hw has a big fixed overhead (2000) vs sw (500)
        sel = DeviceSelector(min_samples=5)
        sel.train(self.filled_history())
        assert sel.choose_device("f", 10) == "sw"

    def test_prediction_accuracy(self):
        sel = DeviceSelector(min_samples=5)
        sel.train(self.filled_history())
        pred = sel.predict_latency("f", "sw", 4000)
        assert pred == pytest.approx(10.0 * 4000 + 500, rel=0.10)

    def test_pca_variant_trains(self):
        sel = DeviceSelector(min_samples=5, use_pca=True)
        trained = sel.train(self.filled_history())
        assert trained == 4  # latency+energy x two devices
        # query inside the training range (PCA+log extrapolates poorly)
        assert sel.choose_device("f", 9000) == "hw"

    def test_energy_weight_validation(self):
        sel = DeviceSelector()
        sel.train(self.filled_history())
        with pytest.raises(ValueError):
            sel.choose_device("f", 100, energy_weight=2.0)

    def test_sample_counts(self):
        sel = DeviceSelector(min_samples=5)
        sel.train(self.filled_history(n=7))
        assert sel.sample_counts("f") == {"sw": 7, "hw": 7}
        assert sel.sample_counts("missing") == {"sw": 0, "hw": 0}

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            DeviceSelector(min_samples=1)
