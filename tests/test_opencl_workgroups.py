"""Tests for work-group parallel ND-range execution on CPU devices."""

import numpy as np
import pytest

from repro.core import ComputeNode, ComputeNodeParams, WorkerParams
from repro.hls import saxpy_kernel
from repro.opencl import CommandQueue, Context, DeviceType, Platform, Program
from repro.sim import Simulator


def setup(cores=4):
    node = ComputeNode(
        Simulator(),
        ComputeNodeParams(num_workers=1, worker=WorkerParams(cpu_cores=cores)),
    )
    plat = Platform(node)
    ctx = Context(plat)
    prog = Program([saxpy_kernel(8192)])
    prog.set_host_impl("saxpy", lambda x, y: y.array.__iadd__(2.0 * x.array))
    bufs = (
        ctx.create_buffer(4 * 8192, dtype=np.float32),
        ctx.create_buffer(4 * 8192, dtype=np.float32),
    )
    q = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
    return plat, prog, bufs, q


def run_with_groups(groups):
    plat, prog, bufs, q = setup()
    ev = q.enqueue_nd_range(
        prog.kernel("saxpy").set_args(*bufs), 8192, work_groups=groups
    )
    q.finish()
    return ev.duration_ns


def test_work_groups_speed_up_on_multicore():
    single = run_with_groups(None)
    quad = run_with_groups(4)
    assert quad == pytest.approx(single / 4, rel=0.05)


def test_work_groups_bounded_by_cores():
    # 16 groups on 4 cores: only a 4x win
    quad = run_with_groups(4)
    sixteen = run_with_groups(16)
    assert sixteen == pytest.approx(quad, rel=0.1)


def test_one_group_equals_default():
    assert run_with_groups(1) == run_with_groups(None)


def test_groups_capped_by_global_size():
    plat, prog, bufs, q = setup()
    ev = q.enqueue_nd_range(
        prog.kernel("saxpy").set_args(*bufs), 2, work_groups=100
    )
    q.finish()
    assert ev.complete  # 2 groups of 1 item, not 100 empty ones


def test_validation():
    plat, prog, bufs, q = setup()
    with pytest.raises(ValueError):
        q.enqueue_nd_range(prog.kernel("saxpy").set_args(*bufs), 64, work_groups=0)


def test_functional_result_unaffected():
    plat, prog, bufs, q = setup()
    x, y = bufs
    x.array[:] = 1.0
    q.enqueue_nd_range(prog.kernel("saxpy").set_args(x, y), 8192, work_groups=4)
    q.finish()
    np.testing.assert_allclose(y.array, 2.0)
