"""Unit tests for ComputeNode, UNIMEM transactions and UNILOGIC sharing."""

import pytest

from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    Machine,
    MachineParams,
    UnilogicDomain,
)
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.memory import AddressRange
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def saxpy_module():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib.best_variant("saxpy")


def run(sim, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("value")


class TestComputeNode:
    def test_construction(self):
        node = ComputeNode(Simulator(), ComputeNodeParams(num_workers=4))
        assert len(node) == 4
        assert len(node.endpoints) == 4
        assert node.unimem.num_workers == 4
        assert len(node.numa) == 4

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ComputeNodeParams(num_workers=0)
        with pytest.raises(ValueError):
            ComputeNodeParams(dram_window=0)

    def test_hop_distance_symmetric(self):
        node = ComputeNode(Simulator(), ComputeNodeParams(num_workers=4))
        assert node.hop_distance(0, 0) == 0
        assert node.hop_distance(0, 3) == node.hop_distance(3, 0) == 2

    def test_two_level_intra_fanout(self):
        node = ComputeNode(
            Simulator(), ComputeNodeParams(num_workers=8, intra_fanout=4)
        )
        assert node.hop_distance(0, 1) == 2   # same L0 switch
        assert node.hop_distance(0, 7) == 4   # across the node root

    def test_transfer_cost_zero_local(self):
        node = ComputeNode(Simulator(), ComputeNodeParams(num_workers=2))
        assert node.transfer_cost(1, 1, 4096) == (0.0, 0.0)

    def test_transfer_charges_ledger(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        run(sim, node.transfer(0, 1, 4096))
        assert node.ledger.total_pj(f"{node.name}.noc") > 0

    def test_remote_access_local_vs_remote(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        local = run(sim, node.remote_access(0, AddressRange(0, 4096), False))
        remote_base = node.unimem.map.global_address(1, 0)
        remote = run(
            sim, node.remote_access(0, AddressRange(remote_base, 4096), False)
        )
        assert remote > local  # NoC + remote DRAM vs local DRAM only
        assert node.unimem.remote_bytes == 4096

    def test_fabric_summary(self):
        node = ComputeNode(Simulator(), ComputeNodeParams(num_workers=2))
        s = node.fabric_summary()
        assert s["workers"] == 2
        assert s["reconfigurations"] == 0


class TestUnilogic:
    def make(self, workers=4):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
        return sim, node, UnilogicDomain(node)

    def test_no_region_raises(self):
        sim, node, uni = self.make()

        def proc():
            yield from uni.invoke("saxpy", 0, 100)

        spawn(sim, proc())
        with pytest.raises(LookupError):
            sim.run()

    def test_local_invocation(self, saxpy_module):
        sim, node, uni = self.make()
        run(sim, node.worker(0).load_module(saxpy_module))
        acc = run(sim, uni.invoke("saxpy", caller_worker=0, items=256, data_worker=0))
        assert acc.host_worker == 0
        assert not acc.remote_control and not acc.remote_data
        assert acc.latency_ns > saxpy_module.latency_ns(256)  # + data stream

    def test_remote_invocation_any_worker_can_call(self, saxpy_module):
        """The UNILOGIC headline: Workers invoke blocks they do not own."""
        sim, node, uni = self.make()
        run(sim, node.worker(3).load_module(saxpy_module))
        acc = run(sim, uni.invoke("saxpy", caller_worker=0, items=256, data_worker=3))
        assert acc.host_worker == 3
        assert acc.remote_control       # caller 0 -> host 3 registers
        assert not acc.remote_data      # data already at the host
        assert uni.remote_invocations == 1

    def test_remote_data_slower_than_local(self, saxpy_module):
        """ACE vs ACE-lite: a block far from the data pays per-touch NoC
        traffic and 'would not be as efficient as a local one'."""
        sim, node, uni = self.make()
        run(sim, node.worker(0).load_module(saxpy_module))
        local = run(sim, uni.invoke("saxpy", 0, 4096, data_worker=0, reuse_turns=2.0))
        remote = run(sim, uni.invoke("saxpy", 0, 4096, data_worker=1, reuse_turns=2.0))
        assert remote.latency_ns > local.latency_ns
        assert remote.remote_data

    def test_remote_gap_grows_with_reuse(self, saxpy_module):
        sim, node, uni = self.make()
        run(sim, node.worker(0).load_module(saxpy_module))

        def gap(reuse):
            local = run(sim, uni.invoke("saxpy", 0, 2048, data_worker=0, reuse_turns=reuse))
            remote = run(sim, uni.invoke("saxpy", 0, 2048, data_worker=1, reuse_turns=reuse))
            return remote.latency_ns - local.latency_ns

        assert gap(4.0) > gap(0.0)

    def test_nearest_region_prefers_data_locality(self, saxpy_module):
        sim, node, uni = self.make()
        run(sim, node.worker(0).load_module(saxpy_module))
        run(sim, node.worker(2).load_module(saxpy_module))
        host, _ = uni.nearest_region("saxpy", near_worker=2)
        assert host == 2
        host, _ = uni.nearest_region("saxpy", near_worker=0)
        assert host == 0

    def test_invoke_validation(self, saxpy_module):
        sim, node, uni = self.make()
        run(sim, node.worker(0).load_module(saxpy_module))

        def bad_items():
            yield from uni.invoke("saxpy", 0, 0)

        spawn(sim, bad_items())
        with pytest.raises(ValueError):
            sim.run()

    def test_utilization_by_worker(self, saxpy_module):
        sim, node, uni = self.make()
        run(sim, node.worker(1).load_module(saxpy_module))
        run(sim, uni.invoke("saxpy", 0, 128))
        run(sim, uni.invoke("saxpy", 2, 128))
        util = uni.utilization_by_worker()
        assert util[1] == 2
        assert util[0] == util[2] == util[3] == 0


class TestMachine:
    def test_construction_and_hops(self):
        machine = Machine(
            Simulator(),
            MachineParams(
                num_nodes=4,
                node=ComputeNodeParams(num_workers=4),
                inter_node_fanouts=[2, 2],
            ),
        )
        assert len(machine) == 4
        assert machine.total_workers == 16
        # intra diameter 2 + inter diameter 4
        assert machine.max_hop_distance() == 6

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            MachineParams(num_nodes=4, inter_node_fanouts=[3])
        with pytest.raises(ValueError):
            MachineParams(num_nodes=0)

    def test_world_communicator(self):
        machine = Machine(Simulator(), MachineParams(num_nodes=4))
        r = machine.world.allreduce(1024)
        assert r.rounds == 2

    def test_deeper_hierarchy_more_hops(self):
        """Section 2: petascale ~5 hops, exascale pushes to 6-7."""
        small = Machine(
            Simulator(),
            MachineParams(num_nodes=2, node=ComputeNodeParams(num_workers=4)),
        )
        big = Machine(
            Simulator(),
            MachineParams(
                num_nodes=8,
                node=ComputeNodeParams(num_workers=4),
                inter_node_fanouts=[2, 2, 2],
            ),
        )
        assert big.max_hop_distance() > small.max_hop_distance()
