"""Unit tests for statistics helpers."""

import pytest

from repro.sim import Counter, Histogram, Monitor, Simulator, StatRegistry, TimeWeighted


def test_counter_accumulates():
    c = Counter("bytes")
    c.add(10)
    c.add(5)
    assert c.value == 15
    assert c.events == 2
    c.reset()
    assert c.value == 0


def test_monitor_summary():
    m = Monitor("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        m.record(v)
    assert m.count == 4
    assert m.mean == pytest.approx(2.5)
    assert m.minimum == 1.0
    assert m.maximum == 4.0
    assert m.total == 10.0
    assert m.stdev == pytest.approx(1.1180339887, rel=1e-6)
    s = m.summary()
    assert s["count"] == 4.0


def test_monitor_empty():
    m = Monitor()
    assert m.mean == 0.0
    assert m.variance == 0.0
    assert m.minimum == 0.0 and m.maximum == 0.0


def test_time_weighted_average():
    sim = Simulator()
    g = TimeWeighted(sim, initial=0.0)
    sim.schedule(10.0, g.set, 4.0)
    sim.run()
    sim.run(until=20.0)
    # 0 for [0,10), 4 for [10,20) -> average 2
    assert g.time_average() == pytest.approx(2.0)
    assert g.maximum == 4.0


def test_time_weighted_add():
    sim = Simulator()
    g = TimeWeighted(sim, initial=1.0)
    g.add(2.0)
    assert g.value == 3.0


def test_histogram_bins_and_percentile():
    h = Histogram([0.0, 10.0, 20.0, 30.0])
    for v in [1, 5, 11, 15, 25]:
        h.record(v)
    assert h.counts == [2, 2, 1]
    assert h.underflow == 0 and h.overflow == 0
    assert h.percentile(50) in (5.0, 15.0)
    assert h.count == 5


def test_histogram_under_overflow():
    h = Histogram([0.0, 1.0])
    h.record(-5)
    h.record(10)
    assert h.underflow == 1
    assert h.overflow == 1


def test_histogram_invalid_edges():
    with pytest.raises(ValueError):
        Histogram([3.0, 1.0])
    with pytest.raises(ValueError):
        Histogram([1.0])


def test_histogram_percentile_bounds():
    h = Histogram([0.0, 1.0])
    with pytest.raises(ValueError):
        h.percentile(150)
    assert h.percentile(50) == 0.0  # empty


def test_registry_reuses_instances():
    sim = Simulator()
    reg = StatRegistry(sim)
    assert reg.counter("a") is reg.counter("a")
    assert reg.monitor("m") is reg.monitor("m")
    assert reg.gauge("g") is reg.gauge("g")


def test_registry_snapshot():
    sim = Simulator()
    reg = StatRegistry(sim)
    reg.counter("traffic").add(100)
    reg.monitor("lat").record(5.0)
    reg.gauge("depth").set(2.0)
    snap = reg.snapshot()
    assert snap["counter.traffic"] == 100
    assert snap["monitor.lat.mean"] == 5.0
    assert "gauge.depth.avg" in snap
