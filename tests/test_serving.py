"""Tests for the serving layer: requests, arrivals, admission control,
dynamic batching, SLO tracking, the autoscaler and the end-to-end
gateway (determinism, shedding under a flash crowd, elastic
reconfiguration, and the chaos-overlaid recovery story)."""

from types import SimpleNamespace

import pytest

from repro.presets import SERVING_PRESETS, TenantSpec, serving_preset
from repro.serving import (
    OK,
    QUEUE_FULL,
    RATE_LIMIT,
    AdmissionController,
    DynamicBatcher,
    Request,
    SLOTracker,
    TokenBucket,
    arrival_process,
    run_serving_experiment,
    shape_class,
)
from repro.sim import Simulator, spawn

US = 1_000.0
MS = 1_000_000.0


def make_request(rid=0, tenant="t", function="saxpy", items=100, at=0.0):
    return Request(request_id=rid, tenant=tenant, function=function,
                   items=items, arrived_at=at)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
class TestRequests:
    def test_shape_class_is_power_of_two_bucket(self):
        assert shape_class(1) == 1
        assert shape_class(2) == 2
        assert shape_class(3) == 4
        assert shape_class(1024) == 1024
        assert shape_class(1025) == 2048
        with pytest.raises(ValueError):
            shape_class(0)

    def test_batch_key_groups_compatible_requests(self):
        a = make_request(0, items=700)
        b = make_request(1, items=900)       # same 1024 shape class
        c = make_request(2, items=1100)      # 2048 class
        assert a.batch_key == b.batch_key
        assert a.batch_key != c.batch_key

    def test_latency_zero_while_in_flight(self):
        r = make_request(at=10.0)
        assert r.latency_ns == 0.0
        r.completed_at = 150.0
        assert r.latency_ns == 140.0

    def test_items_validated(self):
        with pytest.raises(ValueError):
            make_request(items=0)


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_deny(self):
        b = TokenBucket(rate_rps=1e6, burst=2)      # 1 token per us
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)                  # bucket drained

    def test_refills_with_time(self):
        b = TokenBucket(rate_rps=1e6, burst=1)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)
        assert b.try_take(1.0 * US)                 # one us -> one token

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate_rps=1e6, burst=2)
        b.try_take(0.0)
        b.try_take(0.0)
        # a long quiet spell cannot bank more than `burst` tokens
        assert b.try_take(1.0 * MS)
        assert b.try_take(1.0 * MS)
        assert not b.try_take(1.0 * MS)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0)


class TestAdmission:
    def make(self, max_backlog=4, rate_rps=1e6, burst=2):
        ac = AdmissionController(max_backlog=max_backlog)
        ac.configure_tenant("t", rate_rps, burst)
        return ac

    def test_admits_within_limits(self):
        ac = self.make()
        v = ac.admit(make_request(), 0.0, backlog=0)
        assert v.accepted and v.reason == OK

    def test_rate_limit_shed(self):
        ac = self.make(burst=1)
        assert ac.admit(make_request(0), 0.0, 0).accepted
        v = ac.admit(make_request(1), 0.0, 0)
        assert not v.accepted and v.reason == RATE_LIMIT

    def test_queue_full_takes_precedence_and_spends_no_token(self):
        ac = self.make(max_backlog=2, burst=1)
        v = ac.admit(make_request(), 0.0, backlog=2)
        assert not v.accepted and v.reason == QUEUE_FULL
        # the token survived the backlog shed
        assert ac.admit(make_request(), 0.0, backlog=0).accepted

    def test_unconfigured_tenant_only_backlog_gated(self):
        ac = AdmissionController(max_backlog=1)
        r = make_request(tenant="ghost")
        assert ac.admit(r, 0.0, 0).accepted
        assert not ac.admit(r, 0.0, 1).accepted

    def test_verdict_counters(self):
        ac = self.make(max_backlog=2, burst=1)
        ac.admit(make_request(), 0.0, 0)            # ok
        ac.admit(make_request(), 0.0, 0)            # rate-limit
        ac.admit(make_request(), 0.0, 2)            # queue-full
        assert ac.verdicts == {OK: 1, RATE_LIMIT: 1, QUEUE_FULL: 1}


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
class StubGateway:
    """Just enough gateway for the batcher and arrival tests."""

    def __init__(self, sim):
        self.sim = sim
        self.batches = []
        self.offered = []
        self.finished = []
        self._ids = iter(range(10_000))

    def dispatch_batch(self, key, batch):
        self.batches.append((self.sim.now, key, list(batch)))

    def next_request_id(self):
        return next(self._ids)

    def offer(self, request):
        self.offered.append((self.sim.now, request))

    def arrivals_finished(self, tenant):
        self.finished.append(tenant)


class TestDynamicBatcher:
    def make(self, max_batch=3, max_wait_ns=100.0):
        sim = Simulator()
        gw = StubGateway(sim)
        return sim, gw, DynamicBatcher(gw, max_batch=max_batch,
                                       max_wait_ns=max_wait_ns)

    def test_flush_at_max_batch(self):
        sim, gw, b = self.make()
        for i in range(3):
            b.add(make_request(i))
        assert len(gw.batches) == 1
        assert [r.request_id for r in gw.batches[0][2]] == [0, 1, 2]
        assert b.flushes_full == 1 and b.flushes_timeout == 0
        assert b.pending() == 0

    def test_flush_on_timeout(self):
        sim, gw, b = self.make(max_wait_ns=100.0)
        b.add(make_request(0))
        sim.run()
        assert len(gw.batches) == 1
        assert gw.batches[0][0] == pytest.approx(100.0)   # waited max_wait
        assert b.flushes_timeout == 1

    def test_stale_timer_is_noop(self):
        """A full flush must not be double-flushed by its old timer."""
        sim, gw, b = self.make(max_batch=2, max_wait_ns=100.0)
        b.add(make_request(0))
        b.add(make_request(1))                            # full flush now
        b.add(make_request(2))                            # new bucket
        sim.run()                                         # old timer fires
        assert b.batches_flushed == 2
        assert [len(batch) for _, _, batch in gw.batches] == [2, 1]

    def test_incompatible_requests_do_not_share_batches(self):
        sim, gw, b = self.make(max_batch=2)
        b.add(make_request(0, function="saxpy"))
        b.add(make_request(1, function="fir32"))
        b.add(make_request(2, tenant="other"))
        assert not gw.batches and b.pending() == 3
        b.flush_all()
        assert len(gw.batches) == 3

    def test_batched_at_stamped(self):
        sim, gw, b = self.make()
        b.add(make_request(0))
        b.flush_all()
        assert gw.batches[0][2][0].batched_at == sim.now

    def test_mean_batch_size(self):
        sim, gw, b = self.make(max_batch=2)
        for i in range(4):
            b.add(make_request(i))
        assert b.mean_batch_size == pytest.approx(2.0)


# ----------------------------------------------------------------------
# arrivals
# ----------------------------------------------------------------------
class TestArrivals:
    def run_stream(self, spec, seed=7):
        sim = Simulator()
        gw = StubGateway(sim)
        spawn(sim, arrival_process(gw, spec, seed))
        sim.run()
        return gw

    def test_poisson_count_and_determinism(self):
        spec = TenantSpec(name="t", arrival="poisson", rate_rps=1e6,
                          requests=50)
        a = self.run_stream(spec, seed=7)
        b = self.run_stream(spec, seed=7)
        assert len(a.offered) == 50
        assert a.finished == ["t"]
        assert [(t, r.function, r.items) for t, r in a.offered] == \
               [(t, r.function, r.items) for t, r in b.offered]

    def test_different_seeds_differ(self):
        spec = TenantSpec(name="t", arrival="poisson", rate_rps=1e6,
                          requests=50)
        a = self.run_stream(spec, seed=7)
        b = self.run_stream(spec, seed=8)
        assert [t for t, _ in a.offered] != [t for t, _ in b.offered]

    def test_trace_replay_is_exact(self):
        spec = TenantSpec(name="t", arrival="trace",
                          trace_offsets_ns=(0.0, 10.0, 10.0, 250.0),
                          requests=4)
        gw = self.run_stream(spec)
        assert [t for t, _ in gw.offered] == [0.0, 10.0, 10.0, 250.0]

    def test_bursty_and_diurnal_emit_budget(self):
        for kind in ("bursty", "diurnal"):
            spec = TenantSpec(name="t", arrival=kind, rate_rps=1e6,
                              requests=40)
            assert len(self.run_stream(spec).offered) == 40

    def test_unknown_kind_raises(self):
        spec = TenantSpec.__new__(TenantSpec)   # dodge __post_init__
        object.__setattr__(spec, "name", "t")
        object.__setattr__(spec, "arrival", "fractal")
        sim = Simulator()
        with pytest.raises(KeyError, match="fractal"):
            next(iter(arrival_process(StubGateway(sim), spec, 0)))


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------
class TestSLOTracker:
    def test_goodput_counts_only_within_slo(self):
        tr = SLOTracker()
        tr.configure_tenant("t", slo_ns=100.0)
        for rid, latency in enumerate((50.0, 80.0, 300.0)):
            r = make_request(rid, at=0.0)
            tr.note_offered(r)
            tr.note_admitted(r)
            r.completed_at = latency
            tr.note_completed(r)
        t = tr.tenant("t")
        assert t.completed == 3
        assert t.completed_within_slo == 2
        s = t.summary(horizon_ns=1e9)
        assert s["throughput_rps"] == pytest.approx(3.0)
        assert s["goodput_rps"] == pytest.approx(2.0)
        assert s["slo_attainment"] == pytest.approx(2.0 / 3.0)
        assert s["latency_ns"]["count"] == 3.0

    def test_shed_accounting(self):
        tr = SLOTracker()
        tr.configure_tenant("t", slo_ns=100.0)
        for rid in range(4):
            tr.note_offered(make_request(rid))
        tr.note_shed(make_request(0), RATE_LIMIT)
        tr.note_shed(make_request(1), QUEUE_FULL)
        t = tr.tenant("t")
        assert t.shed_total == 2
        assert t.shed_rate == pytest.approx(0.5)
        assert t.summary(1e9)["shed"] == {QUEUE_FULL: 1, RATE_LIMIT: 1}

    def test_observe_rebuilds_from_events(self):
        """The telemetry adapter folds serve.* events into the same
        counters the live gateway hooks produce."""
        live = SLOTracker()
        live.configure_tenant("t", slo_ns=100.0)
        events = []
        for rid, latency in enumerate((40.0, 250.0)):
            r = make_request(rid)
            live.note_offered(r)
            live.note_admitted(r)
            r.completed_at = latency
            live.note_completed(r)
            events += [
                SimpleNamespace(kind="serve.request", attrs={"tenant": "t"}),
                SimpleNamespace(kind="serve.admit", attrs={"tenant": "t"}),
                SimpleNamespace(kind="serve.complete",
                                attrs={"tenant": "t", "latency_ns": latency}),
            ]
        live.note_offered(make_request(9))
        live.note_shed(make_request(9), RATE_LIMIT)
        events += [
            SimpleNamespace(kind="serve.request", attrs={"tenant": "t"}),
            SimpleNamespace(kind="serve.shed",
                            attrs={"tenant": "t", "reason": RATE_LIMIT}),
        ]
        rebuilt = SLOTracker()
        rebuilt.configure_tenant("t", slo_ns=100.0)
        for ev in events:
            rebuilt.observe(ev)
        assert rebuilt.summary(1e9) == live.summary(1e9)

    def test_unconfigured_tenant_gets_unbounded_slo(self):
        tr = SLOTracker()
        r = make_request(tenant="ghost")
        tr.note_offered(r)
        assert tr.tenant("ghost").slo_ns == float("inf")


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------
class TestServingPresets:
    def test_registry_names(self):
        assert set(SERVING_PRESETS) == {"steady", "flash-crowd", "diurnal"}

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown serving preset"):
            serving_preset("tsunami")

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate_rps=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", arrival="nope")
        with pytest.raises(ValueError):
            TenantSpec(name="t", items_range=(10, 5))


# ----------------------------------------------------------------------
# end to end
# ----------------------------------------------------------------------
class TestServingEndToEnd:
    @pytest.fixture(scope="class")
    def steady(self):
        return run_serving_experiment(preset="steady", seed=7)

    def test_accounting_closes(self, steady):
        r = steady
        assert r.offered == r.admitted + r.shed
        assert r.completed == r.admitted          # everything admitted ran
        assert r.unrecovered == 0
        assert r.batches > 0
        assert r.mean_batch_size >= 1.0
        # drain-time flush_all accounts for any remainder
        assert r.batches >= r.flushes_full + r.flushes_timeout
        assert r.horizon_ns > 0

    def test_autoscaler_reconfigures_under_load(self, steady):
        a = steady.autoscaler
        assert a["regions_configured"] >= 1       # the acceptance bar
        assert a["evaluations"] > 0
        assert a["actions"], "every load/evict/replica must leave a record"
        assert steady.machine["hw_calls"] > 0     # the loads actually ran

    def test_tenant_metrics_present(self, steady):
        for name, t in steady.tenants.items():
            lat = t["latency_ns"]
            for key in ("p50", "p95", "p99", "mean", "count", "max"):
                assert key in lat
            if t["completed"]:
                assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
                assert t["goodput_rps"] > 0
            assert 0.0 <= t["shed_rate"] <= 1.0

    def test_seeded_runs_are_byte_identical(self):
        a = run_serving_experiment(preset="steady", seed=3)
        b = run_serving_experiment(preset="steady", seed=3)
        assert a.json() == b.json()

    def test_seeds_change_the_run(self, steady):
        other = run_serving_experiment(preset="steady", seed=8)
        assert other.json() != steady.json()

    def test_flash_crowd_sheds_but_recovers(self):
        r = run_serving_experiment(preset="flash-crowd", seed=7)
        assert r.shed > 0                         # the crowd overwhelmed it
        assert r.admission_verdicts[RATE_LIMIT] + \
            r.admission_verdicts[QUEUE_FULL] == r.shed
        assert r.unrecovered == 0                 # everything admitted ran
        interactive = r.tenants["interactive"]
        assert interactive["shed_rate"] > 0.1
        # elastic response: the autoscaler reshaped the fabric
        assert r.autoscaler["regions_configured"] >= 1
        assert r.autoscaler["replicas"] >= 1

    def test_report_json_is_canonical(self, steady):
        import json as json_mod

        d = json_mod.loads(steady.json())
        assert d["scenario"] == "steady"
        assert d["machine"]["workers"] >= 1
        assert set(d["tenants"]) == {"batch", "interactive"}


class TestServingUnderChaos:
    def test_worker_crash_mid_flash_crowd_recovers(self):
        """The acceptance story: a Worker dies mid-crowd, the self-healing
        runtime re-runs its tasks, no admitted request is lost, and p99
        degrades but stays bounded."""
        from repro.core.runtime import FaultTolerancePolicy

        clean = run_serving_experiment(preset="flash-crowd", seed=7)
        ft = FaultTolerancePolicy(heartbeat_period_ns=10_000.0,
                                  miss_threshold=2)
        faulty = run_serving_experiment(
            preset="flash-crowd", seed=7, fault_tolerance=ft,
            crash=(1, 400_000.0, 600_000.0),
        )
        assert faulty.machine["worker_failures"] >= 1
        assert faulty.machine["tasks_retried"] >= 1
        assert faulty.unrecovered == 0            # zero lost requests
        assert faulty.completed == faulty.admitted
        assert faulty.chaos["worker"] == 1
        p99_clean = clean.tenants["interactive"]["latency_ns"]["p99"]
        p99_faulty = faulty.tenants["interactive"]["latency_ns"]["p99"]
        assert p99_faulty >= p99_clean            # degraded...
        assert p99_faulty <= 10.0 * p99_clean     # ...but bounded

    def test_chaos_run_is_deterministic(self):
        from repro.core.runtime import FaultTolerancePolicy

        def go():
            return run_serving_experiment(
                preset="flash-crowd", seed=7,
                fault_tolerance=FaultTolerancePolicy(
                    heartbeat_period_ns=10_000.0, miss_threshold=2),
                crash=(1, 400_000.0, 600_000.0),
            )

        assert go().json() == go().json()
