"""Unit tests for out-of-order command queues and barriers."""

import numpy as np
import pytest

from repro.core import ComputeNode, ComputeNodeParams
from repro.hls import vecadd_kernel
from repro.opencl import CommandQueue, Context, DeviceType, Platform, Program
from repro.sim import Simulator


def setup(workers=1):
    plat = Platform(ComputeNode(Simulator(), ComputeNodeParams(num_workers=workers)))
    ctx = Context(plat)
    prog = Program([vecadd_kernel(1024)])
    prog.set_host_impl(
        "vecadd", lambda a, b, c: c.array.__setitem__(slice(None), a.array + b.array)
    )
    return plat, ctx, prog


def test_out_of_order_overlaps_independent_commands():
    """Two ND-ranges with no dependency overlap on a multicore CPU device;
    on the in-order queue they serialize."""
    plat, ctx, prog = setup()
    bufs = [ctx.create_buffer(4096, dtype=np.float32) for _ in range(3)]
    bufs2 = [ctx.create_buffer(4096, dtype=np.float32) for _ in range(3)]

    ooo = CommandQueue(ctx, plat.device(0, DeviceType.CPU), in_order=False)
    e1 = ooo.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 1024)
    e2 = ooo.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs2), 1024)
    ooo.finish()
    assert e2.started_at < e1.ended_at  # overlapped

    plat2, ctx2, prog2 = setup()
    bufs = [ctx2.create_buffer(4096, dtype=np.float32) for _ in range(3)]
    bufs2 = [ctx2.create_buffer(4096, dtype=np.float32) for _ in range(3)]
    ordered = CommandQueue(ctx2, plat2.device(0, DeviceType.CPU), in_order=True)
    f1 = ordered.enqueue_nd_range(prog2.kernel("vecadd").set_args(*bufs), 1024)
    f2 = ordered.enqueue_nd_range(prog2.kernel("vecadd").set_args(*bufs2), 1024)
    ordered.finish()
    assert f2.started_at >= f1.ended_at  # serialized


def test_out_of_order_respects_explicit_dependencies():
    plat, ctx, prog = setup()
    bufs = [ctx.create_buffer(4096, dtype=np.float32) for _ in range(3)]
    q = CommandQueue(ctx, plat.device(0, DeviceType.CPU), in_order=False)
    e1 = q.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 1024)
    e2 = q.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 1024, wait_for=[e1])
    q.finish()
    assert e2.started_at >= e1.ended_at


def test_barrier_waits_for_all_outstanding():
    plat, ctx, prog = setup()
    q = CommandQueue(ctx, plat.device(0, DeviceType.CPU), in_order=False)
    events = []
    for _ in range(3):
        bufs = [ctx.create_buffer(4096, dtype=np.float32) for _ in range(3)]
        events.append(q.enqueue_nd_range(prog.kernel("vecadd").set_args(*bufs), 1024))
    barrier = q.enqueue_barrier()
    q.finish()
    assert barrier.started_at >= max(e.ended_at for e in events)


def test_barrier_on_idle_queue_completes():
    plat, ctx, _ = setup()
    q = CommandQueue(ctx, plat.device(0, DeviceType.CPU), in_order=False)
    ev = q.enqueue_barrier()
    q.finish()
    assert ev.complete
