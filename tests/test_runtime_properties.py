"""Property-based integration tests: the runtime on random DAGs.

Invariants that must hold for *any* workload the generator can produce:
every task completes exactly once, on some device; the history matches
the report; energy is positive and finite; dataflow and barrier drivers
complete the same work.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import ExecutionEngine
from repro.hls import saxpy_kernel, stencil_kernel
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "stencil5")


def build_engine(workers):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    registry = FunctionRegistry()
    registry.register(saxpy_kernel(1024))
    registry.register(stencil_kernel(1024))
    return ExecutionEngine(node, registry, use_daemon=False, allow_hardware=False)


dag_params = st.fixed_dictionaries(
    {
        "layers": st.integers(1, 5),
        "width": st.integers(1, 8),
        "locality": st.floats(0.0, 1.0),
        "seed": st.integers(0, 50),
        "fanin": st.integers(1, 3),
    }
)


@given(params=dag_params, workers=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_every_task_completes_exactly_once(params, workers):
    engine = build_engine(workers)
    graph = make_layered_dag(num_workers=workers, functions=FUNCTIONS, **params)
    report = engine.run_graph(graph)
    assert report.sw_calls + report.hw_calls == len(graph)
    assert len(engine.history) == len(graph)
    assert report.makespan_ns > 0
    assert 0 < report.energy_pj < float("inf")
    # per-scheduler accounting adds up
    assert sum(s.tasks_done for s in engine.schedulers) == len(graph)
    # queues fully drained
    assert all(q.depth == 0 for q in engine.queues)


@given(params=dag_params)
@settings(max_examples=15, deadline=None)
def test_dataflow_and_barrier_complete_identical_work(params):
    graph_a = make_layered_dag(num_workers=2, functions=FUNCTIONS, **params)
    graph_b = make_layered_dag(num_workers=2, functions=FUNCTIONS, **params)
    barrier = build_engine(2).run_graph(graph_a)
    dataflow = build_engine(2).run_graph(graph_b, dataflow=True)
    assert barrier.tasks == dataflow.tasks
    assert barrier.sw_calls == dataflow.sw_calls
    assert barrier.makespan_ns > 0 and dataflow.makespan_ns > 0
    # NOTE: pointwise makespan dominance (dataflow <= barrier) does NOT
    # hold with > 1 worker.  The original "same decisions, strictly fewer
    # synchronization constraints" rationale was over-strict: the work
    # distributor places each task using the queue depths *at submission
    # time*, and the two drivers submit at different moments (per-layer
    # vs. per-dependence-resolution), so they can choose different
    # workers for the same task.  An unlucky dataflow placement can then
    # serialize a critical chain the barrier driver happened to spread
    # out (observed on ~6% of random DAGs).  Dominance is only a theorem
    # when placement is forced identical -- which the single-worker
    # property below pins down.


@given(params=dag_params)
@settings(max_examples=15, deadline=None)
def test_dataflow_dominates_barrier_when_placement_is_forced(params):
    """With one worker both drivers place every task identically, so
    removing the layer barriers can only shrink (or keep) the makespan."""
    graph_a = make_layered_dag(num_workers=1, functions=FUNCTIONS, **params)
    graph_b = make_layered_dag(num_workers=1, functions=FUNCTIONS, **params)
    barrier = build_engine(1).run_graph(graph_a)
    dataflow = build_engine(1).run_graph(graph_b, dataflow=True)
    assert barrier.tasks == dataflow.tasks
    assert barrier.sw_calls == dataflow.sw_calls
    assert dataflow.makespan_ns <= barrier.makespan_ns + 1e-6


@given(params=dag_params, workers=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_determinism_across_runs(params, workers):
    graph_args = dict(num_workers=workers, functions=FUNCTIONS, **params)
    a = build_engine(workers).run_graph(make_layered_dag(**graph_args))
    b = build_engine(workers).run_graph(make_layered_dag(**graph_args))
    assert a.makespan_ns == b.makespan_ns
    assert a.energy_pj == b.energy_pj
    assert a.device_mix == b.device_mix
