"""Unit tests for the Worker node and FunctionRegistry."""

import pytest

from repro.core import FunctionRegistry, Worker, WorkerParams
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel, vecadd_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def saxpy_module():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib.best_variant("saxpy")


def run(sim, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("value")


class TestFunctionRegistry:
    def test_register_and_lookup(self):
        reg = FunctionRegistry()
        reg.register(vecadd_kernel())
        assert "vecadd" in reg
        assert reg.kernel("vecadd").name == "vecadd"
        assert reg.functions() == ["vecadd"]

    def test_duplicate_rejected(self):
        reg = FunctionRegistry()
        reg.register(vecadd_kernel())
        with pytest.raises(ValueError):
            reg.register(vecadd_kernel())

    def test_missing_rejected(self):
        with pytest.raises(KeyError):
            FunctionRegistry().kernel("nope")


class TestWorkerParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerParams(cpu_cores=0)
        with pytest.raises(ValueError):
            WorkerParams(fabric_regions=0)


class TestSoftwarePath:
    def test_run_software_advances_time_and_energy(self):
        sim = Simulator()
        w = Worker(sim, 0)
        k = saxpy_kernel(1024)
        latency = run(sim, w.run_software(k, 1000))
        assert latency == pytest.approx(w.software_latency_ns(k, 1000))
        assert w.sw_calls == 1
        assert w.ledger.total_pj(f"{w.name}.cpu") > 0

    def test_cores_limit_concurrency(self):
        sim = Simulator()
        w = Worker(sim, 0, WorkerParams(cpu_cores=1))
        k = saxpy_kernel(1024)
        done = []

        def proc():
            yield from w.run_software(k, 1000)
            done.append(sim.now)

        spawn(sim, proc())
        spawn(sim, proc())
        sim.run()
        single = w.software_latency_ns(k, 1000)
        assert max(done) == pytest.approx(2 * single)

    def test_multicore_parallel(self):
        sim = Simulator()
        w = Worker(sim, 0, WorkerParams(cpu_cores=2))
        k = saxpy_kernel(1024)
        done = []

        def proc():
            yield from w.run_software(k, 1000)
            done.append(sim.now)

        spawn(sim, proc())
        spawn(sim, proc())
        sim.run()
        assert max(done) == pytest.approx(w.software_latency_ns(k, 1000))


class TestHardwarePath:
    def test_load_then_run(self, saxpy_module):
        sim = Simulator()
        w = Worker(sim, 0)
        region = run(sim, w.load_module(saxpy_module))
        assert region is not None
        assert w.hosted_region("saxpy") is region
        latency = run(sim, w.run_hardware("saxpy", 512))
        assert latency == pytest.approx(saxpy_module.latency_ns(512))
        assert w.hw_calls == 1
        assert w.ledger.total_pj(f"{w.name}.fabric") > 0
        assert w.ledger.total_pj(f"{w.name}.config") > 0

    def test_run_unloaded_raises(self):
        sim = Simulator()
        w = Worker(sim, 0)

        def proc():
            yield from w.run_hardware("saxpy", 10)

        spawn(sim, proc())
        with pytest.raises(LookupError):
            sim.run()

    def test_accelerator_front_end_cached_per_region(self, saxpy_module):
        sim = Simulator()
        w = Worker(sim, 0)
        region = run(sim, w.load_module(saxpy_module))
        a1 = w.accelerator_for_region(region)
        a2 = w.accelerator_for_region(region)
        assert a1 is a2

    def test_accelerator_for_empty_region_rejected(self):
        sim = Simulator()
        w = Worker(sim, 0)
        with pytest.raises(ValueError):
            w.accelerator_for_region(w.fabric.regions[0])

    def test_reload_resets_front_end(self, saxpy_module):
        sim = Simulator()
        w = Worker(sim, 0, WorkerParams(fabric_regions=1))
        region = run(sim, w.load_module(saxpy_module))
        a1 = w.accelerator_for_region(region)
        run(sim, w.load_module(saxpy_module, region))
        a2 = w.accelerator_for_region(region)
        assert a1 is not a2


class TestLocalStream:
    def test_stream_charges_dram_energy(self):
        sim = Simulator()
        w = Worker(sim, 0)
        latency = run(sim, w.local_stream(0, 4096))
        assert latency > 0
        assert w.ledger.total_pj(f"{w.name}.dram") > 0

    def test_reuse_reduces_dram_traffic(self):
        sim1, sim2 = Simulator(), Simulator()
        w1, w2 = Worker(sim1, 0), Worker(sim2, 0)
        run(sim1, w1.local_stream(0, 1 << 16, reuse=0.0))
        run(sim2, w2.local_stream(0, 1 << 16, reuse=0.9))
        assert w2.dram.bytes_transferred < w1.dram.bytes_transferred

    def test_reuse_validation(self):
        sim = Simulator()
        w = Worker(sim, 0)

        def proc():
            yield from w.local_stream(0, 100, reuse=1.5)

        spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()
