"""Tests for priority arbitration on contended links (interconnect QoS)."""

import pytest

from repro.interconnect import LinkParams, Message, Network, TransactionType
from repro.sim import Simulator, Timeout, spawn


def contended_network():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", LinkParams(bandwidth_gbps=1.0, latency_ns=0.0))
    return sim, net


def test_sync_overtakes_queued_dma():
    """Three bulk DMAs are queued; a SYNC message issued later is served
    before the waiting DMAs -- the arbitration the paper's small-message
    argument requires."""
    sim, net = contended_network()
    order = []

    def send(kind, size, tag, delay):
        yield Timeout(delay)
        yield from net.send(Message("a", "b", size, kind))
        order.append(tag)

    for i in range(3):
        spawn(sim, send(TransactionType.DMA, 10_000, f"dma{i}", 0.0))
    spawn(sim, send(TransactionType.SYNC, 8, "sync", 1.0))
    sim.run()
    # dma0 was already on the wire; sync preempts the *queue*, not the wire
    assert order.index("sync") == 1


def test_interrupt_beats_mpi_in_queue():
    sim, net = contended_network()
    order = []

    def send(kind, size, tag, delay):
        yield Timeout(delay)
        yield from net.send(Message("a", "b", size, kind))
        order.append(tag)

    spawn(sim, send(TransactionType.DMA, 50_000, "bulk", 0.0))
    spawn(sim, send(TransactionType.MPI, 4096, "mpi", 1.0))
    spawn(sim, send(TransactionType.INTERRUPT, 8, "irq", 2.0))
    sim.run()
    assert order == ["bulk", "irq", "mpi"]


def test_same_priority_stays_fifo():
    sim, net = contended_network()
    order = []

    def send(tag, delay):
        yield Timeout(delay)
        yield from net.send(Message("a", "b", 1000, TransactionType.LOAD))
        order.append(tag)

    for i in range(4):
        spawn(sim, send(f"load{i}", float(i)))
    sim.run()
    assert order == ["load0", "load1", "load2", "load3"]


def test_sync_latency_bounded_under_bulk_load():
    """Quantified: with priority arbitration a sync message's latency is
    bounded by one in-flight bulk transfer, not the whole queue."""
    sim, net = contended_network()
    results = {}

    def bulk():
        yield from net.send(Message("a", "b", 100_000, TransactionType.DMA))

    def more_bulk():
        yield Timeout(0.5)
        yield from net.send(Message("a", "b", 100_000, TransactionType.DMA))

    def sync():
        yield Timeout(1.0)
        msg = Message("a", "b", 8, TransactionType.SYNC)
        delivered = yield from net.send(msg)
        results["latency"] = delivered.latency

    spawn(sim, bulk())
    spawn(sim, more_bulk())
    spawn(sim, sync())
    sim.run()
    one_bulk_ns = 100_032.0  # wire bytes at 1 GB/s
    assert results["latency"] < 1.5 * one_bulk_ns  # not 2+ bulks
