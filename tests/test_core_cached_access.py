"""Unit tests for the cache-integrated UNIMEM access paths."""

import pytest

from repro.core import ComputeNode, ComputeNodeParams, Worker
from repro.memory import AddressRange
from repro.sim import Simulator, spawn


def run(sim, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    spawn(sim, proc())
    sim.run()
    return out.get("value")


class TestCachedAccess:
    def test_repeat_access_hits_cache(self):
        sim = Simulator()
        w = Worker(sim, 0)
        t_cold = run(sim, w.cached_access(0, 4096))
        dram_after_cold = w.dram.bytes_transferred
        t_warm = run(sim, w.cached_access(0, 4096))
        assert t_warm < t_cold
        assert w.dram.bytes_transferred == dram_after_cold  # all hits
        assert w.cache.stats.hits > 0

    def test_write_then_flush_writes_back(self):
        sim = Simulator()
        w = Worker(sim, 0)
        run(sim, w.cached_access(0, 4096, is_write=True))
        dirty = w.drop_cache_range(0, 4096)
        assert dirty == 4096 // w.cache.geometry.line_bytes

    def test_cache_energy_charged(self):
        sim = Simulator()
        w = Worker(sim, 0)
        run(sim, w.cached_access(0, 1024))
        assert w.ledger.total_pj(f"{w.name}.cache") > 0

    def test_validation(self):
        sim = Simulator()
        w = Worker(sim, 0)

        def proc():
            yield from w.cached_access(0, 0)

        spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()


class TestRemoteAccessPaths:
    def test_local_cacheable_access_warms_up(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        rng = AddressRange(0, 4096)
        t1 = run(sim, node.remote_access(0, rng, False))
        t2 = run(sim, node.remote_access(0, rng, False))
        assert t2 < t1  # second pass served by the ACE-side cache

    def test_rehomed_remote_page_becomes_cacheable(self):
        """After migrating a page home to the accessor, repeat remote
        reads stop crossing the interconnect -- 'move tasks and processes
        close to data' in its dual form."""
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        base = node.unimem.map.global_address(1, 0)
        rng = AddressRange(base, 4096)
        node.unimem.rehome_range(rng, new_home=0)
        run(sim, node.remote_access(0, rng, False))
        noc_after_first = node.network.total_link_bytes()
        assert noc_after_first > 0  # cold misses crossed the NoC
        run(sim, node.remote_access(0, rng, False))
        assert node.network.total_link_bytes() == noc_after_first  # cached

    def test_unhomed_remote_access_always_crosses_noc(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        base = node.unimem.map.global_address(1, 0)
        rng = AddressRange(base, 4096)
        run(sim, node.remote_access(0, rng, False))
        first = node.network.total_link_bytes()
        run(sim, node.remote_access(0, rng, False))
        assert node.network.total_link_bytes() == 2 * first  # uncached

    def test_local_but_rehomed_away_uses_uncached_path(self):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        rng = AddressRange(0, 4096)
        node.unimem.rehome_range(rng, new_home=1)
        hits_before = node.worker(0).cache.stats.hits
        run(sim, node.remote_access(0, rng, False))
        run(sim, node.remote_access(0, rng, False))
        # worker 0 may not cache its own DRAM here: no cache hits accrue
        assert node.worker(0).cache.stats.hits == hits_before
