"""Unit tests for Resource, PriorityResource and Store."""

import pytest

from repro.sim import (
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
    spawn,
)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_release_hands_slot_to_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered
    assert res.in_use == 1


def test_release_wrong_resource_rejected():
    sim = Simulator()
    a, b = Resource(sim), Resource(sim)
    ra = a.request()
    with pytest.raises(SimulationError):
        b.release(ra)


def test_use_helper_serializes_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(tag):
        start_wait = sim.now
        yield from res.use(10.0)
        spans.append((tag, start_wait, sim.now))

    for i in range(3):
        spawn(sim, worker(i))
    sim.run()
    ends = sorted(end for _, __, end in spans)
    assert ends == [10.0, 20.0, 30.0]


def test_resource_utilization():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(5.0)

    spawn(sim, worker())
    sim.run()
    sim.run(until=10.0)
    assert res.utilization() == pytest.approx(0.5)


def test_priority_resource_serves_lower_priority_value_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        yield from res.use(5.0, priority=0)

    def claimant(tag, prio):
        yield Timeout(1.0)
        yield from res.use(1.0, priority=prio)
        order.append(tag)

    spawn(sim, holder())
    spawn(sim, claimant("bulk", 10))
    spawn(sim, claimant("urgent", 1))
    sim.run()
    assert order == ["urgent", "bulk"]


def test_priority_resource_fifo_within_same_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        yield from res.use(5.0)

    def claimant(tag):
        yield Timeout(1.0)
        yield from res.use(1.0, priority=3)
        order.append(tag)

    spawn(sim, holder())
    for tag in ("first", "second", "third"):
        spawn(sim, claimant(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    spawn(sim, consumer())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield Timeout(8.0)
        store.put("late")

    spawn(sim, consumer())
    spawn(sim, producer())
    sim.run()
    assert got == [(8.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = []

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    spawn(sim, consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield Timeout(5.0)
        item = yield store.get()
        events.append((f"got-{item}", sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events


def test_bounded_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_resource_wait_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(4.0)

    spawn(sim, worker())
    spawn(sim, worker())
    sim.run()
    assert res.total_requests == 2
    assert res.total_wait_time == pytest.approx(4.0)
