"""The perf sweep's behavior-preservation contract.

Every optimization in the wall-clock sweep (event batching, hot-path
caches, the telemetry fast path, the single-step event loop) must leave
seed-deterministic reports byte-identical.  These tests pin that down:

- canonical ServingReport JSON is identical with telemetry on vs off and
  with the compiled-suite cache hot vs cold, for both the ``steady`` and
  ``flash-crowd`` presets,
- canonical MachineReport JSON (the ``mini`` job mix) is identical hot
  vs cold,
- the engine-level mechanisms themselves (O(1) ``pending``, heap
  compaction, batched resource holds, pre-bound emitters) behave as
  specified,
- the bench harness emits the documented schema and its regression gate
  trips only on real slowdowns.
"""

import json

import pytest

import repro.presets as presets
from repro import perf
from repro.core import ComputeNode
from repro.core.runtime import ExecutionEngine, JobManager
from repro.apps import make_layered_dag
from repro.serving import run_serving_experiment
from repro.serving.gateway import ServingGateway
from repro.sim import Resource, Simulator, Timeout, spawn
from repro.telemetry import NullTelemetry, Telemetry, attach_simulator


def _clear_suite_cache():
    presets._SUITE_CACHE.clear()


# ----------------------------------------------------------------------
# engine mechanisms
# ----------------------------------------------------------------------
class TestPendingAndCompaction:
    def test_pending_tracks_schedule_fire_cancel(self):
        sim = Simulator()
        assert sim.pending == 0
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        assert sim.pending == 10
        events[3].cancel()
        events[7].cancel()
        assert sim.pending == 8
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 8

    def test_cancel_is_idempotent_for_the_counter(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending == 0

    def test_compaction_prunes_cancelled_backlog(self):
        sim = Simulator()
        keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(4)]
        for i in range(500):
            sim.schedule(1.0 + i, lambda: None).cancel()
        # the heap must have shed the cancelled bulk, not grown to 504
        assert sim.pending == 4
        assert len(sim._queue) < 500
        sim.run()
        assert sim.events_processed == len(keep)

    def test_run_until_with_cancellations(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(2.0, fired.append, "b").cancel()
        sim.run(until=3.0)
        assert fired == ["a"]
        assert sim.pending == 1


class TestUseBatch:
    def _elapsed(self, cores, holds):
        sim = Simulator()
        res = Resource(sim, capacity=cores)
        out = {}

        def driver():
            start = sim.now
            yield from res.use_batch(holds)
            out["elapsed"] = sim.now - start

        spawn(sim, driver())
        sim.run()
        return out["elapsed"]

    def test_batch_runs_holds_concurrently(self):
        assert self._elapsed(4, [100.0] * 4) == pytest.approx(100.0)

    def test_batch_bounded_by_capacity(self):
        # 8 equal holds on 2 cores: 4 sequential waves
        assert self._elapsed(2, [50.0] * 8) == pytest.approx(200.0)

    def test_batch_matches_per_process_timing(self):
        holds = [30.0, 70.0, 20.0, 90.0, 10.0, 40.0]

        def per_process(cores):
            sim = Simulator()
            res = Resource(sim, capacity=cores)

            def one(h):
                yield from res.use(h)

            for h in holds:
                spawn(sim, one(h))
            sim.run()
            return sim.now

        for cores in (1, 2, 3):
            assert self._elapsed(cores, holds) == pytest.approx(
                per_process(cores)
            ), f"divergence at capacity {cores}"

    def test_empty_batch_is_free(self):
        assert self._elapsed(2, []) == 0.0

    def test_batch_is_cheaper_in_events(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def driver():
            yield from res.use_batch([10.0] * 16)

        spawn(sim, driver())
        sim.run()
        batched = sim.events_processed

        sim2 = Simulator()
        res2 = Resource(sim2, capacity=2)

        def one(h):
            yield from res2.use(h)

        for _ in range(16):
            spawn(sim2, one(10.0))
        sim2.run()
        assert batched < sim2.events_processed


class TestEmitters:
    def test_emitter_appends_structured_events(self):
        sim = Simulator()
        hub = Telemetry(sim)
        emit = hub.emitter("serve.admit", "node.gateway")
        sim.schedule(5.0, lambda: None)
        sim.run()
        emit(tenant="a", queued=3)
        assert len(hub.events) == 1
        ev = list(hub.events)[-1]
        assert (ev.kind, ev.component) == ("serve.admit", "node.gateway")
        assert ev.ts == 5.0
        assert ev.attrs == {"tenant": "a", "queued": 3}
        assert hub.events.emitted == 1

    def test_null_emitter_is_a_shared_noop(self):
        null = NullTelemetry()
        emit = null.emitter("k", "c")
        assert emit(any_kw=1) is None
        assert emit is null.emitter("other", "site")


# ----------------------------------------------------------------------
# byte-identical reports
# ----------------------------------------------------------------------
def _serving_json(preset, telemetry=None):
    if telemetry is None:
        return run_serving_experiment(preset, seed=0).json(indent=2)
    # run_serving_experiment builds its own Simulator, so the
    # telemetry-on variant mirrors its body around an external hub
    scenario = presets.serving_preset(preset)
    registry, library = presets.compiled_suite(max_variants=2)
    sim = Simulator()
    hub = Telemetry(sim)
    attach_simulator(hub, sim)
    node = ComputeNode(sim, presets.node_preset(scenario.node))
    engine = ExecutionEngine(
        node, registry, library, use_daemon=False, telemetry=hub
    )
    gateway = ServingGateway(
        engine, scenario, seed=0, scenario_name=preset, telemetry=hub
    )
    report = gateway.run()
    assert len(hub.events) > 0, "telemetry-on run emitted nothing"
    return report.json(indent=2)


@pytest.mark.parametrize("preset", ["steady", "flash-crowd"])
class TestServingReportBytes:
    def test_identical_with_caches_cold_vs_hot(self, preset):
        _clear_suite_cache()
        cold = _serving_json(preset)
        assert presets._SUITE_CACHE  # the run populated it
        hot = _serving_json(preset)
        assert cold == hot

    def test_identical_with_telemetry_on_vs_off(self, preset):
        dark = _serving_json(preset)
        lit = _serving_json(preset, telemetry=True)
        assert dark == lit


class TestMachineReportBytes:
    def _jobs_json(self):
        mix = presets.job_preset("mini")
        registry, library = presets.compiled_suite(max_variants=1)
        sim = Simulator()
        node = ComputeNode(sim, presets.node_preset(mix.node))
        engine = ExecutionEngine(
            node, registry, library, use_daemon=True,
            daemon_period_ns=100_000.0,
        )
        manager = JobManager(engine)
        for spec in mix.jobs:
            graph = make_layered_dag(
                layers=spec.layers, width=spec.width, num_workers=len(node),
                functions=("saxpy", "stencil5", "montecarlo"),
                seed=spec.graph_seed,
            )
            manager.submit_job(
                graph, policy=spec.policy, priority=spec.priority,
                dataflow=spec.dataflow,
            )
        return manager.run().json(indent=2)

    def test_identical_with_caches_cold_vs_hot(self):
        _clear_suite_cache()
        cold = self._jobs_json()
        hot = self._jobs_json()
        assert cold == hot
        json.loads(cold)  # stays valid canonical JSON


# ----------------------------------------------------------------------
# bench harness
# ----------------------------------------------------------------------
class TestBenchHarness:
    def test_payload_schema(self):
        payload = perf.run_benchmarks(quick=True, only=["sim.engine"])
        assert payload["schema"] == perf.SCHEMA
        assert payload["quick"] is True
        entry = payload["benchmarks"]["sim.engine"]
        assert set(entry) == {
            "wall_seconds", "events_processed", "events_per_sec"
        }
        assert entry["wall_seconds"] > 0
        assert entry["events_processed"] == 20_000
        json.loads(perf.to_json(payload))

    def test_unknown_benchmark_is_an_error(self):
        with pytest.raises(KeyError):
            perf.run_benchmarks(quick=True, only=["no.such.bench"])

    def _payload(self, wall):
        return {
            "schema": perf.SCHEMA,
            "quick": True,
            "benchmarks": {"b": {
                "wall_seconds": wall, "events_processed": 1,
                "events_per_sec": 1.0,
            }},
        }

    def test_compare_flags_real_regressions(self):
        failures = perf.compare(self._payload(2.0), self._payload(1.0))
        assert len(failures) == 1 and "b:" in failures[0]

    def test_compare_tolerates_threshold_and_noise(self):
        base = self._payload(1.0)
        assert perf.compare(self._payload(1.2), base) == []   # under 30%
        tiny = perf.compare(
            self._payload(0.05), self._payload(0.01)
        )
        assert tiny == []                                     # noise floor

    def test_compare_ignores_disjoint_benchmarks(self):
        base = self._payload(1.0)
        cur = {"schema": perf.SCHEMA, "quick": True,
               "benchmarks": {"other": {"wall_seconds": 9.0,
                                        "events_processed": 1,
                                        "events_per_sec": 1.0}}}
        assert perf.compare(cur, base) == []
