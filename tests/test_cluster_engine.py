"""Unit + integration tests for the machine-level ClusterEngine."""

import pytest

from repro.apps import make_layered_dag
from repro.core import ComputeNodeParams, FunctionRegistry, Machine, MachineParams
from repro.core.runtime import ClusterEngine
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, montecarlo_kernel, saxpy_kernel
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "montecarlo")


@pytest.fixture(scope="module")
def compiled():
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for k in (saxpy_kernel(1024), montecarlo_kernel(1024, 8)):
        registry.register(k)
        tool.compile(k, library, SynthesisConstraints(max_variants=1))
    return registry, library


def build(compiled, nodes=2, workers=2, **kw):
    registry, library = compiled
    machine = Machine(
        Simulator(),
        MachineParams(num_nodes=nodes, node=ComputeNodeParams(num_workers=workers)),
    )
    engine = ClusterEngine(machine, registry, library, **kw)
    return machine, engine


def graph_for(nodes, workers, layers=4, width=8, seed=5):
    return make_layered_dag(
        layers=layers, width=width, num_workers=nodes * workers,
        functions=FUNCTIONS, seed=seed,
    )


class TestClusterEngine:
    def test_all_tasks_complete_across_nodes(self, compiled):
        machine, engine = build(compiled, nodes=2, workers=2)
        graph = graph_for(2, 2)
        report = engine.run_graph(graph)
        assert report.tasks == len(graph)
        assert report.sw_calls + report.hw_calls == len(graph)
        assert report.makespan_ns > 0

    def test_work_actually_spreads_over_nodes(self, compiled):
        machine, engine = build(compiled, nodes=2, workers=2)
        report = engine.run_graph(graph_for(2, 2, width=12))
        per_node = [r.sw_calls + r.hw_calls for r in report.node_reports]
        assert all(n > 0 for n in per_node)

    def test_cross_node_layers_pay_barriers(self, compiled):
        machine, engine = build(compiled, nodes=4, workers=2)
        report = engine.run_graph(graph_for(4, 2, layers=5, width=16))
        assert report.barriers == 4  # every inner layer boundary spans nodes
        assert report.barrier_ns_total > 0
        assert 0.0 < report.barrier_fraction < 1.0

    def test_single_node_layer_skips_barrier(self, compiled):
        machine, engine = build(compiled, nodes=2, workers=2)
        # width 1: every layer fits one node -> no barriers at all
        report = engine.run_graph(graph_for(2, 2, layers=3, width=1))
        assert report.barriers == 0
        assert report.barrier_ns_total == 0.0

    def test_daemon_accelerates_per_node(self, compiled):
        machine, engine = build(
            compiled, nodes=2, workers=2,
            use_daemon=True, daemon_period_ns=50_000.0,
        )
        report = engine.run_graph(graph_for(2, 2, layers=8, width=12))
        assert report.hw_calls > 0

    def test_energy_aggregates_nodes(self, compiled):
        machine, engine = build(compiled, nodes=2, workers=2)
        report = engine.run_graph(graph_for(2, 2))
        assert report.energy_pj > 0
        assert report.energy_pj == sum(r.energy_pj for r in report.node_reports)

    def test_cross_node_inputs_charged(self, compiled):
        """Tasks whose data lives on another Compute Node pay a real
        inter-node fetch; perfectly local graphs pay none."""
        machine, engine = build(compiled, nodes=2, workers=2)
        # locality=0: most tasks' data lands away from their affinity
        graph = make_layered_dag(
            layers=3, width=8, num_workers=4, functions=FUNCTIONS,
            seed=7, locality=0.0,
        )
        report = engine.run_graph(graph)
        assert engine.cross_node_fetches > 0
        assert engine.cross_node_fetch_ns > 0

        machine2, engine2 = build(compiled, nodes=2, workers=2)
        local_graph = make_layered_dag(
            layers=3, width=8, num_workers=4, functions=FUNCTIONS,
            seed=7, locality=1.0,
        )
        engine2.run_graph(local_graph)
        assert engine2.cross_node_fetches == 0

    def test_more_nodes_shorter_makespan_wide_graph(self, compiled):
        """Scale-out shape: a wide, shallow graph finishes faster on more
        Compute Nodes despite the barrier tax."""
        _, small = build(compiled, nodes=1, workers=2, use_daemon=False)
        r1 = small.run_graph(graph_for(1, 2, layers=3, width=32, seed=9))
        _, big = build(compiled, nodes=4, workers=2, use_daemon=False)
        r4 = big.run_graph(graph_for(4, 2, layers=3, width=32, seed=9))
        assert r4.makespan_ns < r1.makespan_ns
