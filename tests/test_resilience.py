"""Unit tests for fault injection and reconfiguration-based recovery."""

import pytest

from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    FaultInjector,
    RecoveryManager,
    UnilogicDomain,
)
from repro.fabric import ModuleLibrary, RegionState
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, spawn


@pytest.fixture(scope="module")
def library():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib


def setup(library, workers=2):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    unilogic = UnilogicDomain(node)
    injector = FaultInjector(node)
    manager = RecoveryManager(node, unilogic, library, injector, check_period_ns=1000.0)
    return sim, node, unilogic, injector, manager


def load_saxpy(sim, node, library, worker=0):
    module = library.best_variant("saxpy")
    out = {}

    def proc():
        out["region"] = yield from node.worker(worker).load_module(module)

    spawn(sim, proc())
    sim.run()
    return out["region"]


class TestFaultInjector:
    def test_region_fault_kills_service(self, library):
        sim, node, unilogic, injector, _ = setup(library)
        region = load_saxpy(sim, node, library)
        assert unilogic.hosting_regions("saxpy")
        record = injector.inject_region_fault(0, region.region_id)
        assert record.function == "saxpy"
        assert not unilogic.hosting_regions("saxpy")
        assert injector.is_failed(0, region.region_id)

    def test_double_fault_rejected(self, library):
        sim, node, _, injector, _ = setup(library)
        injector.inject_region_fault(0, 0)
        with pytest.raises(ValueError):
            injector.inject_region_fault(0, 0)

    def test_unknown_region_rejected(self, library):
        sim, node, _, injector, _ = setup(library)
        with pytest.raises(ValueError):
            injector.inject_region_fault(0, 99)

    def test_worker_fault_kills_all_regions(self, library):
        sim, node, _, injector, _ = setup(library)
        records = injector.inject_worker_fault(0)
        assert len(records) == len(node.worker(0).fabric)
        # a dead region is never EMPTY or READY
        for r in node.worker(0).fabric.regions:
            assert r.state is RegionState.LOADING

    def test_scheduled_fault_fires_at_time(self, library):
        sim, node, _, injector, _ = setup(library)
        injector.schedule_region_fault(500.0, 0, 0)
        sim.run()
        assert injector.records[0].injected_at == 500.0


class TestRecoveryManager:
    def test_recovers_on_same_worker(self, library):
        sim, node, unilogic, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        injector.inject_region_fault(0, region.region_id)
        proc = spawn(sim, manager.run())
        sim.run(until=sim.now + 100_000.0)
        manager.stop()
        assert manager.recoveries == 1
        record = injector.records[0]
        assert record.recovered_at is not None
        assert record.recovery_worker == 0  # free sibling region
        assert unilogic.hosting_regions("saxpy")

    def test_recovers_on_another_worker_when_local_fabric_dead(self, library):
        sim, node, unilogic, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        injector.inject_worker_fault(0)   # all of worker 0's fabric dies
        spawn(sim, manager.run())
        sim.run(until=sim.now + 100_000.0)
        manager.stop()
        record = next(r for r in injector.records if r.function == "saxpy")
        assert record.recovery_worker == 1  # migrated across UNILOGIC
        host, _ = unilogic.hosting_regions("saxpy")[0]
        assert host == 1

    def test_recovery_time_measured(self, library):
        sim, node, _, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        injector.inject_region_fault(0, region.region_id)
        spawn(sim, manager.run())
        sim.run(until=sim.now + 100_000.0)
        manager.stop()
        assert manager.mean_recovery_ns() > 0

    def test_unknown_function_unrecoverable(self, library):
        sim, node, _, injector, manager = setup(library)
        region = load_saxpy(sim, node, library)
        # fake a function the library does not know
        region.module = None
        node.worker(0).fabric.regions[region.region_id].state = RegionState.READY
        injector.records.clear()
        from repro.core.resilience import FaultRecord

        injector.records.append(
            FaultRecord(worker_id=0, region_id=0, function="ghost", injected_at=0.0)
        )
        spawn(sim, manager.run())
        sim.run(until=sim.now + 10_000.0)
        manager.stop()
        assert manager.unrecoverable
        assert manager.recoveries == 0

    def test_validation(self, library):
        sim, node, unilogic, injector, _ = setup(library)
        with pytest.raises(ValueError):
            RecoveryManager(node, unilogic, library, injector, check_period_ns=0)

    def test_faults_without_function_ignored(self, library):
        sim, node, _, injector, manager = setup(library)
        injector.inject_region_fault(0, 0)  # empty region: nothing to recover
        spawn(sim, manager.run())
        sim.run(until=sim.now + 10_000.0)
        manager.stop()
        assert manager.recoveries == 0
        assert not manager.unrecoverable
