"""Tests for checkpoint/restart: interval math, the snapshot format,
the on-disk store, clock warping, completed-task filtering in the job
drivers, the CheckpointManager cadence loop, and the two chaos-layer
experiments (kill-and-restore, MTBF x interval Daly sweep)."""

import json
import random

import pytest

from repro.apps.taskgraph import make_layered_dag
from repro.chaos import (
    restore_from_snapshot,
    run_checkpoint_interval_sweep,
    run_checkpoint_restore_experiment,
    workload_spec,
)
from repro.chaos.checkpoint_experiment import _build_machine, submit_workload
from repro.core.runtime import (
    CheckpointManager,
    CheckpointPolicy,
    JobProgress,
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotStore,
    daly_interval_ns,
    restore_rngs,
    young_interval_ns,
)
from repro.presets import compiled_suite
from repro.sim import SimulationError, Simulator


@pytest.fixture(scope="module")
def compiled():
    return compiled_suite(max_variants=1)


# ----------------------------------------------------------------------
# Young / Daly interval math
# ----------------------------------------------------------------------
class TestIntervalMath:
    def test_young_first_order(self):
        assert young_interval_ns(5_000.0, 1e6) == pytest.approx(100_000.0)

    def test_daly_below_young(self):
        # higher-order correction minus the cost lands just under Young
        daly = daly_interval_ns(5_000.0, 1e6)
        assert daly == pytest.approx(96_694.44, rel=1e-4)
        assert daly < young_interval_ns(5_000.0, 1e6)

    def test_daly_expensive_checkpoint_degenerates_to_mtbf(self):
        assert daly_interval_ns(2e6, 1e6) == 1e6
        assert daly_interval_ns(5e6, 1e6) == 1e6

    def test_rejects_non_positive_inputs(self):
        for fn in (young_interval_ns, daly_interval_ns):
            with pytest.raises(ValueError):
                fn(0.0, 1e6)
            with pytest.raises(ValueError):
                fn(1e3, -1.0)


class TestCheckpointPolicy:
    def test_fixed_mode_needs_interval(self):
        with pytest.raises(ValueError):
            CheckpointPolicy()
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_ns=-5.0)
        assert CheckpointPolicy(interval_ns=1_000.0).effective_interval_ns() == 1_000.0

    def test_daly_mode_needs_mtbf(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(mode="daly")
        with pytest.raises(ValueError):
            CheckpointPolicy(mode="unknown")

    def test_daly_mode_uses_measured_cost(self):
        policy = CheckpointPolicy(
            mode="daly", mtbf_ns=1e6, checkpoint_cost_ns=5_000.0
        )
        # before any measurement: configured cost feeds the formula
        assert policy.effective_interval_ns() == pytest.approx(
            daly_interval_ns(5_000.0, 1e6)
        )
        # once measured, the real cost wins
        assert policy.effective_interval_ns(20_000.0) == pytest.approx(
            daly_interval_ns(20_000.0, 1e6)
        )


# ----------------------------------------------------------------------
# the snapshot format
# ----------------------------------------------------------------------
def _sample_snapshot():
    rng = random.Random(7)
    rng.random()
    version, internal, gauss_next = rng.getstate()
    return Snapshot(
        seq=3,
        taken_at_ns=123_456.0,
        workload={"kind": "chaos-jobs", "preset": "mini", "seed": 0},
        jobs=[
            JobProgress(
                job_id=0,
                policy="greedy-hw",
                priority=2,
                dataflow=False,
                total_tasks=4,
                completed=[0, 2],
                signature=[["saxpy", 64, 0]],
            )
        ],
        fabric=[{"worker": 0, "region": 1, "function": "saxpy", "module": "m"}],
        rng={"arrivals": [version, list(internal), gauss_next]},
        checkpoint_cost_ns=5_000.0,
    )


class TestSnapshotFormat:
    def test_json_round_trip_is_byte_identical(self):
        snap = _sample_snapshot()
        text = snap.to_json(indent=2)
        again = Snapshot.from_json(text)
        assert again.to_json(indent=2) == text
        assert again.taken_at_ns == snap.taken_at_ns
        assert again.job(0).completed == [0, 2]

    def test_rejects_other_format_versions(self):
        data = _sample_snapshot().to_dict()
        data["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            Snapshot.from_dict(data)
        with pytest.raises(ValueError):
            Snapshot.from_dict({"seq": 0, "taken_at_ns": 0.0})

    def test_progress_accessors(self):
        snap = _sample_snapshot()
        assert snap.tasks_completed == 2
        assert snap.job(99) is None
        assert not snap.jobs[0].finished

    def test_restore_rngs_realigns_streams(self):
        source = random.Random(7)
        source.random()                      # advance past the seed state
        snap = _sample_snapshot()
        restored = restore_rngs(snap)["arrivals"]
        assert [restored.random() for _ in range(5)] == [
            source.random() for _ in range(5)
        ]


class TestSnapshotStore:
    def test_save_list_load_latest(self, tmp_path):
        store = SnapshotStore(tmp_path / "ckpts")
        for seq in range(3):
            snap = _sample_snapshot()
            snap.seq = seq
            snap.taken_at_ns = 1_000.0 * seq
            store.save(snap)
        paths = store.list()
        assert [p.name for p in paths] == [
            "ckpt-00000.json", "ckpt-00001.json", "ckpt-00002.json"
        ]
        assert store.load_latest().seq == 2
        assert store.load(paths[0]).taken_at_ns == 0.0

    def test_prune_keeps_the_newest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for seq in range(4):
            snap = _sample_snapshot()
            snap.seq = seq
            store.save(snap)
        store.prune(keep=2)
        assert [p.name for p in store.list()] == [
            "ckpt-00002.json", "ckpt-00003.json"
        ]
        store.prune(keep=0)                  # 0 = keep everything
        assert len(store.list()) == 2

    def test_empty_store(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None


# ----------------------------------------------------------------------
# clock warping on restore
# ----------------------------------------------------------------------
class TestWarpTo:
    def test_warps_an_idle_simulator(self):
        sim = Simulator()
        sim.warp_to(250_000.0)
        assert sim.now == 250_000.0

    def test_cannot_warp_backwards(self):
        sim = Simulator()
        sim.warp_to(100.0)
        with pytest.raises(SimulationError):
            sim.warp_to(50.0)

    def test_cannot_warp_with_events_pending(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.warp_to(1_000.0)


# ----------------------------------------------------------------------
# completed-task filtering in the job drivers
# ----------------------------------------------------------------------
class TestCompletedFilter:
    def _machine(self, compiled):
        return _build_machine(workload_spec("mini"), compiled=compiled)

    def _graph(self, manager, seed=0):
        return make_layered_dag(
            layers=3,
            width=4,
            num_workers=len(manager.engine.node),
            seed=seed,
        )

    def test_out_of_range_indices_rejected(self, compiled):
        _, _, _, manager = self._machine(compiled)
        graph = self._graph(manager)
        with pytest.raises(ValueError):
            manager.submit_job(graph, completed=frozenset({len(graph.tasks)}))
        with pytest.raises(ValueError):
            manager.submit_job(graph, completed=frozenset({-1}))

    @pytest.mark.parametrize("dataflow", [False, True])
    def test_drivers_skip_completed_tasks(self, compiled, dataflow):
        _, _, _, manager = self._machine(compiled)
        graph = self._graph(manager)
        done = frozenset(range(0, len(graph.tasks), 2))
        handle = manager.submit_job(graph, dataflow=dataflow, completed=done)
        report = manager.run()
        assert handle.tasks_skipped == len(done)
        outcome = report.job(handle.job_id)
        # RunReport.tasks counts the whole graph; the dispatched share
        # is what remains after the skip
        assert outcome.report.tasks == len(graph.tasks)
        assert outcome.report.tasks_unrecovered == 0
        assert handle.finished

    def test_fully_completed_job_runs_nothing(self, compiled):
        _, _, _, manager = self._machine(compiled)
        graph = self._graph(manager)
        handle = manager.submit_job(
            graph, completed=frozenset(range(len(graph.tasks)))
        )
        manager.run()
        assert handle.tasks_skipped == len(graph.tasks)
        assert handle.finished


# ----------------------------------------------------------------------
# the manager's cadence loop
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def test_periodic_capture_and_self_stop(self, compiled):
        workload = workload_spec("mini")
        sim, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager,
            CheckpointPolicy(interval_ns=100_000.0),
            workload=workload,
        )
        ckpt.start()
        report = manager.run()               # cadence loop stops itself
        assert ckpt.snapshots
        assert ckpt.measured_cost_ns == pytest.approx(
            ckpt.policy.checkpoint_cost_ns
        )
        last = ckpt.latest()
        assert last.workload["preset"] == "mini"
        assert 0 < last.tasks_completed <= report.tasks
        # snapshots are strictly ordered recovery points
        seqs = [s.seq for s in ckpt.snapshots]
        assert seqs == sorted(seqs)

    def test_latest_before_picks_the_survivor(self, compiled):
        workload = workload_spec("mini")
        _, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager, CheckpointPolicy(interval_ns=100_000.0), workload=workload
        )
        ckpt.start()
        manager.run()
        second = ckpt.snapshots[1]
        found = ckpt.latest_before(second.taken_at_ns + 1.0)
        assert found.seq == second.seq
        assert ckpt.latest_before(-1.0) is None

    def test_registered_rng_state_is_captured(self, compiled):
        workload = workload_spec("mini")
        _, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager, CheckpointPolicy(interval_ns=100_000.0), workload=workload
        )
        rng = random.Random(11)
        ckpt.register_rng("traffic", rng)
        ckpt.start()
        manager.run()
        snap = ckpt.snapshots[0]
        assert "traffic" in snap.rng
        # the snapshot round-trips through JSON with the state intact
        again = Snapshot.from_json(snap.to_json())
        assert restore_rngs(again)["traffic"].random() == rng.random()

    def test_snapshot_retention_cap(self, compiled):
        workload = workload_spec("mini")
        _, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager,
            CheckpointPolicy(interval_ns=60_000.0, max_snapshots=2),
            workload=workload,
        )
        ckpt.start()
        manager.run()
        assert len(ckpt.snapshots) <= 2


# ----------------------------------------------------------------------
# kill-and-restore: the acceptance experiment
# ----------------------------------------------------------------------
class TestRestoreExperiment:
    def test_rack_kill_restores_with_full_integrity(self, compiled):
        report = run_checkpoint_restore_experiment(
            "mini", seed=0, domain="rack0", compiled=compiled
        )
        assert report.integrity_ok
        assert report.snapshots_taken > 0
        assert report.snapshot_at_ns <= report.kill_ns
        assert report.lost_window_ns > 0
        for verdict in report.verdicts:
            assert verdict.workload_match
            assert verdict.tasks_unrecovered == 0
            assert verdict.checkpointed + verdict.replayed == verdict.total_tasks
        # something was actually skipped AND something actually replayed
        assert sum(v.checkpointed for v in report.verdicts) > 0
        assert sum(v.replayed for v in report.verdicts) > 0

    def test_experiment_is_seed_deterministic(self, compiled):
        a = run_checkpoint_restore_experiment("mini", seed=3, compiled=compiled)
        b = run_checkpoint_restore_experiment("mini", seed=3, compiled=compiled)
        assert a.events_json() == b.events_json()

    def test_restore_refuses_a_mismatched_workload(self, compiled):
        workload = workload_spec("mini")
        _, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager, CheckpointPolicy(interval_ns=100_000.0), workload=workload
        )
        ckpt.start()
        manager.run()
        snap = ckpt.latest()
        snap.workload["graph_seed"] = snap.workload["graph_seed"] + 99
        with pytest.raises(ValueError, match="signature"):
            restore_from_snapshot(snap, compiled=compiled)

    def test_restore_refuses_foreign_workload_kinds(self, compiled):
        snap = _sample_snapshot()
        snap.workload["kind"] = "serving"
        with pytest.raises(ValueError, match="kind"):
            restore_from_snapshot(snap, compiled=compiled)

    def test_bad_fractions_rejected(self, compiled):
        with pytest.raises(ValueError):
            run_checkpoint_restore_experiment(
                "mini", kill_fraction=0.7, abandon_fraction=0.5,
                compiled=compiled,
            )


# ----------------------------------------------------------------------
# MTBF x interval sweep: the Daly validation
# ----------------------------------------------------------------------
class TestIntervalSweep:
    def test_goodput_peaks_at_the_daly_interval(self):
        report = run_checkpoint_interval_sweep(
            seed=0,
            mtbf_list=(2e6, 8e6),
            trials=48,
            measure=False,
            checkpoint_cost_ns=5_000.0,
        )
        assert report.daly_validated
        for optimum in report.optima:
            assert optimum["within_one_step"]
        # extremes of the grid should be visibly worse than the optimum
        for mtbf in (2e6, 8e6):
            row = {
                c["factor"]: c["goodput"]
                for c in report.cells
                if c["mtbf_ns"] == mtbf
            }
            assert row[1.0] > row[0.25]
            assert row[1.0] > row[4.0]

    def test_sweep_is_seed_deterministic(self):
        kwargs = dict(
            seed=5, mtbf_list=(2e6,), trials=16,
            measure=False, checkpoint_cost_ns=5_000.0,
        )
        a = run_checkpoint_interval_sweep(**kwargs)
        b = run_checkpoint_interval_sweep(**kwargs)
        assert a.events_json() == b.events_json()

    def test_cells_cover_the_full_grid(self):
        report = run_checkpoint_interval_sweep(
            seed=0, mtbf_list=(2e6,), trials=8,
            measure=False, checkpoint_cost_ns=5_000.0,
        )
        data = json.loads(report.events_json())
        assert len(data["cells"]) == len(data["factors"])
        assert all(0.0 < c["availability"] <= 1.0 for c in data["cells"])
