"""Tests for dependence-triggered (dataflow) dispatch vs layer barriers."""

import pytest

from repro.apps import Task, TaskGraph, make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import DeviceSelector, ExecutionEngine
from repro.hls import saxpy_kernel, stencil_kernel
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "stencil5")


def make_engine(workers=4, **kw):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    registry = FunctionRegistry()
    registry.register(saxpy_kernel(1024))
    registry.register(stencil_kernel(1024))
    return ExecutionEngine(node, registry, use_daemon=False,
                           allow_hardware=False, **kw)


def test_dataflow_completes_all_tasks():
    engine = make_engine()
    graph = make_layered_dag(5, 8, 4, functions=FUNCTIONS, seed=3)
    report = engine.run_graph(graph, dataflow=True)
    assert report.sw_calls + report.hw_calls == len(graph)
    assert report.makespan_ns > 0


def test_dataflow_respects_dependences():
    """A chain a -> b -> c must execute strictly in order (tasks are
    distinguishable by their item counts)."""
    a = Task("saxpy", 1001, 0, 0, layer=0)
    b = Task("saxpy", 1002, 1, 1, layer=1, deps=(a.task_id,))
    c = Task("saxpy", 1003, 2, 2, layer=2, deps=(b.task_id,))
    free = Task("stencil5", 8192, 3, 3, layer=1)  # independent
    graph = TaskGraph([a, b, c, free])
    engine = make_engine()
    engine.run_graph(graph, dataflow=True)
    recs = sorted(engine.history.records("saxpy"), key=lambda r: r.timestamp)
    assert [r.items for r in recs] == [1001, 1002, 1003]
    # strict ordering: each successor completes after its predecessor
    assert recs[0].timestamp < recs[1].timestamp < recs[2].timestamp


def test_dataflow_beats_layer_barrier_on_uneven_layers():
    """One long *independent* task per layer + many short ones: the
    barrier driver serializes the layers (sum of per-layer maxima);
    dataflow sees no dependences at all and overlaps the long tasks
    across workers."""

    def uneven_graph():
        tasks = []
        for layer in range(4):
            tasks.append(
                Task("stencil5", 60_000, layer % 4, layer % 4, layer=layer)
            )
            for i in range(6):
                tasks.append(
                    Task("saxpy", 512, (i + 1) % 4, (i + 1) % 4, layer=layer)
                )
        return TaskGraph(tasks)

    barrier_report = make_engine().run_graph(uneven_graph())
    dataflow_report = make_engine().run_graph(uneven_graph(), dataflow=True)
    assert (
        dataflow_report.sw_calls + dataflow_report.hw_calls
        == barrier_report.sw_calls + barrier_report.hw_calls
    )
    assert dataflow_report.makespan_ns < barrier_report.makespan_ns


def test_dataflow_equivalent_results_to_barrier():
    graph_args = dict(layers=4, width=6, num_workers=4, functions=FUNCTIONS, seed=9)
    a = make_engine().run_graph(make_layered_dag(**graph_args))
    b = make_engine().run_graph(make_layered_dag(**graph_args), dataflow=True)
    assert a.tasks == b.tasks
    assert a.sw_calls == b.sw_calls  # same device decisions (all sw here)
