"""Byte-identity of sharded runs across partition counts and backends.

The acceptance contract of the sharded engine: the canonical merged
report of every experiment is the same byte string whether the machine
ran in one partition (the single-threaded reference), several inline
partitions, or forked worker processes.  Also pins the template-based
bring-up (a templated node behaves exactly like a legacy one) and the
bench gate's handling of benchmarks the baseline has never seen.
"""

import os

import pytest

from repro import perf
from repro.shard import (
    TemplateCache,
    build_node,
    report_json,
    run_sharded_build,
    run_sharded_chaos,
    run_sharded_jobs,
    run_sharded_serving,
)

_HAS_FORK = hasattr(os, "fork")


# ----------------------------------------------------------------------
# partition-count invariance
# ----------------------------------------------------------------------
def test_jobs_identical_at_1_2_4_partitions():
    reports = [
        run_sharded_jobs("mini", seed=0, num_nodes=4, partitions=p)
        for p in (1, 2, 4)
    ]
    blobs = [report_json(r) for r in reports]
    assert blobs[0] == blobs[1] == blobs[2]
    assert reports[0]["schema"] == "repro-shard-jobs/v1"
    assert reports[0]["tasks_unrecovered"] == 0
    # sync counters are part of the canonical report, so they must be
    # partition-invariant too
    assert reports[0]["sync"]["messages"] > 0


def test_serving_identical_at_1_and_2_partitions():
    r1 = run_sharded_serving("steady", seed=0, num_nodes=2, partitions=1)
    r2 = run_sharded_serving("steady", seed=0, num_nodes=2, partitions=2)
    assert report_json(r1) == report_json(r2)
    assert r1["offered"] == r1["completed"] + r1["shed"]
    assert r1["unrecovered"] == 0


def test_chaos_identical_at_1_and_2_partitions():
    r1 = run_sharded_chaos("mini", seed=0, num_nodes=2, partitions=1)
    r2 = run_sharded_chaos("mini", seed=0, num_nodes=2, partitions=2)
    assert report_json(r1) == report_json(r2)
    assert r1["integrity_ok"]
    assert r1["faults_injected"] > 0


def test_jobs_seed_changes_report():
    r0 = run_sharded_jobs("mini", seed=0, num_nodes=2, partitions=2)
    r1 = run_sharded_jobs("mini", seed=1, num_nodes=2, partitions=2)
    assert report_json(r0) != report_json(r1)


@pytest.mark.skipif(not _HAS_FORK, reason="process backend needs fork")
def test_process_backend_matches_inline():
    inline = run_sharded_jobs(
        "mini", seed=0, num_nodes=2, partitions=2, backend="inline"
    )
    forked = run_sharded_jobs(
        "mini", seed=0, num_nodes=2, partitions=2, backend="process"
    )
    assert report_json(inline) == report_json(forked)


# ----------------------------------------------------------------------
# template bring-up equivalence
# ----------------------------------------------------------------------
def test_templated_node_matches_legacy_node():
    import dataclasses
    import json

    from repro.apps import make_layered_dag
    from repro.core import ComputeNode
    from repro.core.runtime import ExecutionEngine
    from repro.presets import compiled_suite, node_preset
    from repro.sim import Simulator

    params = node_preset("mini")
    registry, library = compiled_suite(max_variants=1)

    def run(node_factory):
        sim = Simulator()
        node = node_factory(sim)
        engine = ExecutionEngine(
            node, registry, library, use_daemon=True,
            daemon_period_ns=100_000.0,
        )
        graph = make_layered_dag(
            layers=3, width=4, num_workers=len(node),
            functions=("saxpy", "stencil5", "montecarlo"), seed=7,
        )
        report = engine.run_graph(graph)
        return json.dumps(dataclasses.asdict(report), sort_keys=True)

    cache = TemplateCache()
    legacy = run(lambda sim: ComputeNode(sim, params))
    templated = run(lambda sim: build_node(sim, params, 0, cache))
    assert legacy == templated


def test_templated_numa_distances_match():
    from repro.core import ComputeNode
    from repro.presets import node_preset
    from repro.sim import Simulator

    params = node_preset("mini")
    legacy = ComputeNode(Simulator(), params)
    templated = build_node(Simulator(), params, 3, TemplateCache())
    assert legacy.numa.distance_table() == templated.numa.distance_table()
    assert len(legacy) == len(templated)


def test_sharded_build_matches_monolithic_machine():
    from repro.core import ComputeNodeParams, Machine, MachineParams
    from repro.sim import Simulator

    sharded = run_sharded_build(
        num_nodes=4, workers_per_node=4, inter_node_fanouts=[4], partitions=2
    )
    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=4,
            node=ComputeNodeParams(num_workers=4),
            inter_node_fanouts=[4],
        ),
    )
    allreduce = machine.world.allreduce(4096)
    assert sharded["total_workers"] == machine.total_workers
    assert sharded["max_hop_distance"] == machine.max_hop_distance()
    assert sharded["allreduce"]["latency_ns"] == allreduce.latency_ns
    assert sharded["allreduce"]["rounds"] == allreduce.rounds
    assert sharded["allreduce"]["bytes_moved"] == allreduce.bytes_moved


# ----------------------------------------------------------------------
# bench gate: new benchmarks are reported, never failed
# ----------------------------------------------------------------------
def test_new_benchmarks_reported_not_failed():
    baseline = {"benchmarks": {"a": {"wall_seconds": 1.0}}}
    current = {
        "benchmarks": {
            "a": {"wall_seconds": 1.0},
            "b.shard4": {"wall_seconds": 9.9},
        }
    }
    assert perf.new_benchmarks(current, baseline) == ["b.shard4"]
    assert perf.compare(current, baseline) == []


def test_benchmark_registry_adds_shard_entries():
    r1 = perf.benchmark_registry(1)
    assert "machine.exascale_build.shard1" in r1
    assert "serving.steady.shard1" in r1
    assert not any(name.endswith(".shard4") for name in r1)
    r4 = perf.benchmark_registry(4)
    assert "machine.exascale_build.shard4" in r4
    assert "serving.steady.shard4" in r4
    # historical names survive so committed baselines stay comparable
    assert set(perf.BENCHMARKS) <= set(r4)
