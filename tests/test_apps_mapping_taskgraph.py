"""Unit tests for mappings, communication costing and task graphs."""

import pytest

from repro.apps import (
    Task,
    TaskGraph,
    block_mapping,
    communication_bytes,
    cyclic_mapping,
    decompose_grid,
    halo_pairs,
    make_layered_dag,
    random_mapping,
)
from repro.interconnect import build_tree
from repro.sim import Simulator


class TestMappings:
    def test_block_contiguous(self):
        m = block_mapping(8, ["a", "b"])
        assert [m[i] for i in range(8)] == ["a"] * 4 + ["b"] * 4

    def test_cyclic_alternates(self):
        m = cyclic_mapping(4, ["a", "b"])
        assert [m[i] for i in range(4)] == ["a", "b", "a", "b"]

    def test_random_deterministic_by_seed(self):
        assert random_mapping(10, ["a", "b"], seed=3) == random_mapping(10, ["a", "b"], seed=3)

    def test_empty_workers_rejected(self):
        for fn in (block_mapping, cyclic_mapping, random_mapping):
            with pytest.raises(ValueError):
                fn(4, [])


class TestCommunicationCosting:
    def test_block_beats_cyclic_on_tree(self):
        """The Fig. 1 claim in miniature: locality-preserving mapping of a
        stencil onto the hierarchy moves far fewer link-bytes."""
        sim = Simulator()
        net, workers = build_tree(sim, [4, 4])
        d = decompose_grid(64, 64)  # 8x8 subdomains, 4 per worker
        pairs = halo_pairs(d)
        block = communication_bytes(pairs, block_mapping(64, workers), net)
        cyclic = communication_bytes(pairs, cyclic_mapping(64, workers), net)
        assert block["link_bytes"] < cyclic["link_bytes"]
        assert block["energy_pj"] < cyclic["energy_pj"]
        assert block["mean_hops"] < cyclic["mean_hops"]

    def test_same_worker_pairs_free(self):
        sim = Simulator()
        net, workers = build_tree(sim, [2, 2])
        pairs = [(0, 1, 100)]
        metrics = communication_bytes(pairs, {0: workers[0], 1: workers[0]}, net)
        assert metrics["link_bytes"] == 0
        assert metrics["local_pairs"] == 1

    def test_rounds_multiply_traffic(self):
        sim = Simulator()
        net, workers = build_tree(sim, [2, 2])
        pairs = [(0, 1, 100)]
        mapping = {0: workers[0], 1: workers[1]}
        one = communication_bytes(pairs, mapping, net, rounds=1)
        ten = communication_bytes(pairs, mapping, net, rounds=10)
        assert ten["link_bytes"] == 10 * one["link_bytes"]

    def test_rounds_validation(self):
        sim = Simulator()
        net, workers = build_tree(sim, [2, 2])
        with pytest.raises(ValueError):
            communication_bytes([], {}, net, rounds=0)


class TestTaskGraph:
    def test_generation_shape(self):
        g = make_layered_dag(layers=4, width=6, num_workers=4, seed=1)
        assert len(g) == 24
        assert g.width() == 6
        assert g.critical_path_length() == 4

    def test_deps_respect_layering(self):
        g = make_layered_dag(layers=5, width=4, num_workers=2, seed=2)
        for t in g.tasks:
            for d in t.deps:
                assert g.task(d).layer < t.layer

    def test_locality_knob(self):
        local = make_layered_dag(6, 20, 8, locality=1.0, seed=3)
        remote = make_layered_dag(6, 20, 8, locality=0.0, seed=3)
        local_frac = sum(
            1 for t in local.tasks if t.data_worker == t.affinity_worker
        ) / len(local)
        remote_frac = sum(
            1 for t in remote.tasks if t.data_worker == t.affinity_worker
        ) / len(remote)
        assert local_frac == 1.0
        assert remote_frac == 0.0

    def test_deterministic_by_seed(self):
        a = make_layered_dag(3, 3, 2, seed=9)
        b = make_layered_dag(3, 3, 2, seed=9)
        assert [t.function for t in a.tasks] == [t.function for t in b.tasks]
        assert [t.items for t in a.tasks] == [t.items for t in b.tasks]

    def test_functions_listed(self):
        g = make_layered_dag(2, 10, 2, functions=("fft", "blur"), seed=0)
        assert set(g.functions()) <= {"fft", "blur"}

    def test_validation(self):
        with pytest.raises(ValueError):
            make_layered_dag(0, 1, 1)
        with pytest.raises(ValueError):
            make_layered_dag(1, 1, 1, locality=2.0)
        with pytest.raises(ValueError):
            make_layered_dag(1, 1, 1, functions=())
        with pytest.raises(ValueError):
            Task(function="f", items=0, data_worker=0, affinity_worker=0)

    def test_bad_dependency_rejected(self):
        t1 = Task("f", 10, 0, 0, layer=0)
        bad = Task("g", 10, 0, 0, layer=0, deps=(t1.task_id,))
        with pytest.raises(ValueError):
            TaskGraph([t1, bad])  # same-layer dep violates layering
        with pytest.raises(ValueError):
            TaskGraph([Task("f", 1, 0, 0, layer=1, deps=(999999,))])
