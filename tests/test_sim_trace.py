"""Unit tests for the unified tracer: lanes, causal spans, rendering."""

import pytest

from repro.sim import Simulator, Tracer, Timeout, render_timeline, spawn
from repro.telemetry import Telemetry, chrome_trace, validate_chrome_trace, validate_span_tree


def traced_run():
    sim = Simulator()
    tracer = Tracer(sim)

    def worker(lane, start_delay, work):
        yield Timeout(start_delay)
        tracer.begin(lane, "task")
        yield Timeout(work)
        tracer.end(lane, "task")

    spawn(sim, worker("w0", 0.0, 100.0))
    spawn(sim, worker("w1", 50.0, 100.0))
    sim.run()
    return sim, tracer


def test_span_lifecycle():
    sim, tracer = traced_run()
    spans = tracer.closed_spans()
    assert len(spans) == 2
    w0 = next(s for s in spans if s.lane == "w0")
    assert (w0.start, w0.end) == (0.0, 100.0)
    assert w0.duration == 100.0


def test_busy_time_and_utilization():
    sim, tracer = traced_run()
    assert tracer.busy_time("w0") == 100.0
    assert tracer.utilization("w1") == pytest.approx(100.0 / 150.0)


def test_double_begin_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.begin("w0", "x")
    with pytest.raises(ValueError):
        tracer.begin("w0", "x")


def test_end_without_begin_rejected():
    tracer = Tracer(Simulator())
    with pytest.raises(ValueError):
        tracer.end("w0", "ghost")


def test_span_context_manager():
    sim = Simulator()
    tracer = Tracer(sim)
    with tracer.span("w0", "block"):
        sim.schedule(10.0, lambda: None)
        sim.run()
    span = tracer.closed_spans()[0]
    assert span.duration == 10.0


def test_instant_marker():
    tracer = Tracer(Simulator())
    s = tracer.instant("w0", "irq")
    assert s.duration == 0.0


def test_lanes_ordered_by_first_use():
    sim, tracer = traced_run()
    assert tracer.lanes() == ["w0", "w1"]


def test_render_timeline_shape():
    sim, tracer = traced_run()
    text = render_timeline(tracer, width=40)
    lines = text.splitlines()
    assert len(lines) == 3  # header + two lanes
    assert "#" in lines[1] and "#" in lines[2]
    # w1 starts later: its first '#' is to the right of w0's
    assert lines[2].index("#") > lines[1].index("#")


def test_render_empty():
    assert "no closed spans" in render_timeline(Tracer(Simulator()))


def test_chrome_trace_export():
    # the single export path: spans go out through the hub exporter
    sim, tracer = traced_run()
    hub = Telemetry(sim)
    hub.tracer = tracer
    payload = chrome_trace(hub, include_events=False)
    validate_chrome_trace(payload)
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 2
    thread_names = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_names == {"w0", "w1"}


# ----------------------------------------------------------------------
# causal surface
# ----------------------------------------------------------------------
def test_causal_spans_form_a_tree():
    tracer = Tracer(Simulator())
    root = tracer.add("serve.a", "request#0", start=0.0, end=50.0,
                      trace_id=7, kind="request", tenant="a")
    child = tracer.add("serve.a", "batch.wait", start=0.0, end=10.0,
                       trace_id=7, parent=root, kind="batch.wait")
    leaf = tracer.add("node0.w0", "execute", start=10.0, end=50.0,
                      trace_id=7, parent=child, kind="execute")
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert leaf.parent_id == child.span_id
    assert tracer.trace_ids() == [7]
    assert len(tracer.trace_spans(7)) == 3
    assert validate_span_tree(tracer.spans) == 1


def test_span_ids_are_emission_ordered():
    tracer = Tracer(Simulator())
    a = tracer.add("l", "a", start=0.0, end=1.0, trace_id=1)
    b = tracer.add("l", "b", start=0.0, end=1.0, trace_id=2)
    assert (a.span_id, b.span_id) == (0, 1)


def test_finish_closes_open_causal_span():
    sim = Simulator()
    tracer = Tracer(sim)
    span = tracer.add("l", "open", start=0.0, trace_id=1)
    tracer.finish(span, end=25.0)
    assert span.duration == 25.0
    assert validate_span_tree(tracer.spans) == 1


def test_validate_rejects_two_roots():
    tracer = Tracer(Simulator())
    tracer.add("l", "r1", start=0.0, end=1.0, trace_id=1)
    tracer.add("l", "r2", start=0.0, end=1.0, trace_id=1)
    with pytest.raises(ValueError, match="2 roots"):
        validate_span_tree(tracer.spans)


def test_validate_rejects_cross_trace_parent():
    tracer = Tracer(Simulator())
    other = tracer.add("l", "root", start=0.0, end=1.0, trace_id=1)
    tracer.add("l", "root", start=0.0, end=2.0, trace_id=2)
    tracer.add("l", "kid", start=0.0, end=1.0, trace_id=2, parent=other)
    with pytest.raises(ValueError, match="outside the trace"):
        validate_span_tree(tracer.spans)


def test_validate_rejects_unclosed_and_backwards_spans():
    tracer = Tracer(Simulator())
    tracer.add("l", "open", start=0.0, trace_id=1)
    with pytest.raises(ValueError, match="never closed"):
        validate_span_tree(tracer.spans)
    tracer2 = Tracer(Simulator())
    tracer2.add("l", "rewind", start=5.0, end=1.0, trace_id=1)
    with pytest.raises(ValueError, match="ends before"):
        validate_span_tree(tracer2.spans)


def test_validate_ignores_plain_lane_spans():
    sim, tracer = traced_run()
    assert validate_span_tree(tracer.spans) == 0
