"""Unit tests for the tracer and timeline rendering."""

import json

import pytest

from repro.sim import Simulator, Tracer, Timeout, render_timeline, spawn


def traced_run():
    sim = Simulator()
    tracer = Tracer(sim)

    def worker(lane, start_delay, work):
        yield Timeout(start_delay)
        tracer.begin(lane, "task")
        yield Timeout(work)
        tracer.end(lane, "task")

    spawn(sim, worker("w0", 0.0, 100.0))
    spawn(sim, worker("w1", 50.0, 100.0))
    sim.run()
    return sim, tracer


def test_span_lifecycle():
    sim, tracer = traced_run()
    spans = tracer.closed_spans()
    assert len(spans) == 2
    w0 = next(s for s in spans if s.lane == "w0")
    assert (w0.start, w0.end) == (0.0, 100.0)
    assert w0.duration == 100.0


def test_busy_time_and_utilization():
    sim, tracer = traced_run()
    assert tracer.busy_time("w0") == 100.0
    assert tracer.utilization("w1") == pytest.approx(100.0 / 150.0)


def test_double_begin_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.begin("w0", "x")
    with pytest.raises(ValueError):
        tracer.begin("w0", "x")


def test_end_without_begin_rejected():
    tracer = Tracer(Simulator())
    with pytest.raises(ValueError):
        tracer.end("w0", "ghost")


def test_span_context_manager():
    sim = Simulator()
    tracer = Tracer(sim)
    with tracer.span("w0", "block"):
        sim.schedule(10.0, lambda: None)
        sim.run()
    span = tracer.closed_spans()[0]
    assert span.duration == 10.0


def test_instant_marker():
    tracer = Tracer(Simulator())
    s = tracer.instant("w0", "irq")
    assert s.duration == 0.0


def test_lanes_ordered_by_first_use():
    sim, tracer = traced_run()
    assert tracer.lanes() == ["w0", "w1"]


def test_render_timeline_shape():
    sim, tracer = traced_run()
    text = render_timeline(tracer, width=40)
    lines = text.splitlines()
    assert len(lines) == 3  # header + two lanes
    assert "#" in lines[1] and "#" in lines[2]
    # w1 starts later: its first '#' is to the right of w0's
    assert lines[2].index("#") > lines[1].index("#")


def test_render_empty():
    assert "no closed spans" in render_timeline(Tracer(Simulator()))


def test_chrome_trace_export():
    sim, tracer = traced_run()
    payload = json.loads(tracer.to_chrome_trace())
    events = payload["traceEvents"]
    assert len(events) == 2
    assert events[0]["ph"] == "X"
    assert events[0]["tid"] in ("w0", "w1")
