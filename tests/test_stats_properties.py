"""Property-based tests for the statistics primitives.

Pins down the numeric contracts the telemetry hub relies on:
Welford-based Monitor moments, TimeWeighted.time_average bounds, and
Histogram.percentile behaviour on every degenerate shape (empty,
all-underflow, all-overflow).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.stats import Histogram, Monitor, TimeWeighted

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
deltas = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


# ----------------------------------------------------------------------
# Monitor (Welford)
# ----------------------------------------------------------------------


@given(st.lists(finite, min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_monitor_moments_bounded(values):
    m = Monitor()
    for v in values:
        m.record(v)
    assert m.count == len(values)
    assert m.minimum <= m.mean <= m.maximum
    assert m.variance >= 0.0
    assert m.total == sum(values)


def test_monitor_welford_survives_large_offset():
    """The naive sum-of-squares form returns variance 0 (or negative)
    here; Welford keeps full precision."""
    m = Monitor()
    for v in (1e9, 1e9 + 1.0, 1e9 + 2.0):
        m.record(v)
    assert m.mean == 1e9 + 1.0
    assert math.isclose(m.variance, 2.0 / 3.0, rel_tol=1e-9)


@given(st.lists(finite, min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_monitor_matches_two_pass_variance(values):
    m = Monitor()
    for v in values:
        m.record(v)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    assert math.isclose(m.variance, var, rel_tol=1e-6, abs_tol=1e-6)


# ----------------------------------------------------------------------
# TimeWeighted.time_average
# ----------------------------------------------------------------------


@given(
    initial=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    steps=st.lists(st.tuples(deltas, finite), max_size=20),
    tail=deltas,
)
@settings(max_examples=100, deadline=None)
def test_time_average_within_value_envelope(initial, steps, tail):
    """The time average of a piecewise-constant signal lies between the
    smallest and largest value the signal ever held."""
    sim = Simulator()
    g = TimeWeighted(sim, initial=initial)
    values = [initial]
    for dt, v in steps:
        sim.schedule(sim.now + dt, lambda: None)
        sim.run()
        g.set(v)
        values.append(v)
    sim.schedule(sim.now + tail, lambda: None)
    sim.run()
    avg = g.time_average()
    lo, hi = min(values), max(values)
    span = max(abs(lo), abs(hi), 1.0)
    assert lo - 1e-6 * span <= avg <= hi + 1e-6 * span


def test_time_average_with_no_elapsed_time_is_current_value():
    sim = Simulator()
    g = TimeWeighted(sim, initial=3.0)
    assert g.time_average() == 3.0
    g.set(7.0)  # still at t=0
    assert g.time_average() == 7.0


def test_time_average_weights_by_duration():
    sim = Simulator()
    g = TimeWeighted(sim, initial=0.0)
    sim.schedule(10.0, lambda: g.set(100.0))
    sim.schedule(40.0, lambda: None)
    sim.run()
    # 0 for 10 ns, then 100 for 30 ns
    assert math.isclose(g.time_average(), (0 * 10 + 100 * 30) / 40.0)
    assert g.maximum == 100.0


# ----------------------------------------------------------------------
# Histogram.percentile edge cases
# ----------------------------------------------------------------------

EDGES = [0.0, 10.0, 100.0, 1000.0]


def test_percentile_empty_histogram_is_zero():
    h = Histogram(EDGES)
    for p in (0, 50, 100):
        assert h.percentile(p) == 0.0


def test_percentile_all_overflow_clamps_to_last_edge():
    h = Histogram(EDGES)
    for _ in range(5):
        h.record(1e9)
    assert h.overflow == 5 and sum(h.counts) == 0
    for p in (1, 50, 99, 100):
        assert h.percentile(p) == EDGES[-1]


def test_percentile_all_underflow_clamps_to_first_edge():
    h = Histogram(EDGES)
    for _ in range(5):
        h.record(-1.0)
    assert h.underflow == 5 and sum(h.counts) == 0
    for p in (1, 50, 100):
        assert h.percentile(p) == EDGES[0]


@given(
    values=st.lists(
        st.floats(min_value=-100.0, max_value=2000.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    p=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=100, deadline=None)
def test_percentile_bounded_and_monotone(values, p):
    h = Histogram(EDGES)
    for v in values:
        h.record(v)
    q = h.percentile(p)
    assert EDGES[0] <= q <= EDGES[-1]
    # monotone in p
    assert h.percentile(min(100.0, p + 5.0)) >= q
    assert h.count == len(values)
