"""Tests for the unified telemetry subsystem: hub, events, wiring, exporters."""

import json

import pytest

from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry, Worker
from repro.core.runtime import ExecutionEngine, PerformanceMonitor
from repro.presets import compiled_suite
from repro.sim import Simulator, Timeout, spawn
from repro.telemetry import (
    NULL,
    NullTelemetry,
    Telemetry,
    attach_simulator,
    attach_worker,
    chrome_trace,
    chrome_trace_json,
    events_json,
    metrics_snapshot,
    prometheus_text,
    snapshot_csv,
    snapshot_json,
    validate_chrome_trace,
    validate_event,
)
from repro.telemetry.events import EventLog, TelemetryEvent


# ----------------------------------------------------------------------
# hub basics
# ----------------------------------------------------------------------


class TestHub:
    def test_instruments_are_shared(self):
        hub = Telemetry(Simulator())
        assert hub.counter("x") is hub.counter("x")
        assert hub.gauge("g") is hub.gauge("g")
        assert hub.histogram("h") is hub.histogram("h")

    def test_events_carry_sim_time(self):
        sim = Simulator()
        hub = Telemetry(sim)
        sim.schedule(25.0, lambda: hub.event("k.thing", "comp", n=3))
        sim.run()
        (ev,) = list(hub.events)
        assert ev.ts == 25.0
        assert ev.kind == "k.thing"
        assert ev.attrs == {"n": 3}
        validate_event(ev.to_dict())

    def test_span_context_manager(self):
        sim = Simulator()
        hub = Telemetry(sim)
        with hub.span("lane", "work"):
            sim.schedule(10.0, lambda: None)
            sim.run()
        (s,) = hub.tracer.closed_spans()
        assert s.duration == 10.0

    def test_collectors_polled_on_snapshot(self):
        hub = Telemetry(Simulator())
        state = {"v": 1.0}
        hub.register_collector(lambda h: h.counter("c").set(state["v"]), name="c")
        assert hub.has_collector("c")
        assert hub.snapshot()["counter.c"] == 1.0
        state["v"] = 7.0
        assert hub.snapshot()["counter.c"] == 7.0

    def test_event_log_bounded(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append(TelemetryEvent(ts=float(i), kind="k", component="c"))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.ts for e in log] == [2.0, 3.0, 4.0]

    def test_event_select_by_prefix(self):
        log = EventLog()
        log.append(TelemetryEvent(0.0, "a.x", "c1"))
        log.append(TelemetryEvent(1.0, "a.y", "c2"))
        log.append(TelemetryEvent(2.0, "b.x", "c1"))
        assert len(log.select(kind="a")) == 2
        assert len(log.select(component="c1")) == 2
        assert len(log.select(kind="b", component="c1")) == 1


class TestNullHub:
    def test_falsy_and_inert(self):
        assert not NULL
        assert isinstance(NULL, NullTelemetry)
        NULL.counter("x").add(1)
        NULL.event("k", "c", a=1)
        with NULL.span("lane", "n"):
            pass
        NULL.register_collector(lambda h: None)
        assert NULL.snapshot() == {}
        assert not NULL.has_collector("anything")

    def test_simulator_defaults_dark(self):
        sim = Simulator()
        assert sim.telemetry is None
        sim.schedule(1.0, lambda: None)
        sim.run()  # no hub: nothing to observe, nothing crashes


# ----------------------------------------------------------------------
# kernel + component wiring
# ----------------------------------------------------------------------


class TestWiring:
    def test_simulator_counters(self):
        sim = Simulator()
        hub = Telemetry(sim)
        attach_simulator(hub, sim)

        def proc():
            yield Timeout(5.0)
            yield Timeout(5.0)

        spawn(sim, proc())
        sim.run()
        snap = hub.snapshot()
        assert snap["counter.sim.events_processed"] >= 3
        assert snap["counter.sim.events_fired"] >= 3
        assert snap["counter.sim.processes_spawned"] == 1

    def test_worker_counters_routed(self):
        sim = Simulator()
        worker = Worker(sim, 0)
        hub = Telemetry(sim)
        attach_worker(hub, worker)
        spawn(sim, worker.local_stream(0, 4096))
        sim.run()
        snap = hub.snapshot()
        assert snap["counter.worker0.dram.bytes"] == 4096
        assert "counter.worker0.cache.hits" in snap
        assert "counter.worker0.smmu.translations" in snap
        assert "counter.worker0.fabric.reconfigurations" in snap

    def test_performance_monitor_reads_from_hub(self):
        sim = Simulator()
        worker = Worker(sim, 0)
        hub = Telemetry(sim)
        mon_hub = PerformanceMonitor(worker, telemetry=hub)
        mon_direct = PerformanceMonitor(worker)
        spawn(sim, worker.local_stream(0, 8192))
        sim.run()
        via_hub = mon_hub.read()
        direct = mon_direct.read()
        assert via_hub.dram_bytes == direct.dram_bytes == 8192
        assert via_hub.cache_hits == direct.cache_hits
        assert via_hub.sw_calls == direct.sw_calls

    def test_performance_monitor_does_not_double_attach(self):
        sim = Simulator()
        worker = Worker(sim, 0)
        hub = Telemetry(sim)
        attach_worker(hub, worker)
        n = len(hub._collectors)
        PerformanceMonitor(worker, telemetry=hub)
        assert len(hub._collectors) == n


# ----------------------------------------------------------------------
# a full instrumented run, then round-trip every exporter
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def instrumented_run():
    registry, library = compiled_suite(max_variants=1)
    sim = Simulator()
    hub = Telemetry(sim)
    attach_simulator(hub, sim)
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    node.attach_telemetry(hub)
    engine = ExecutionEngine(
        node, registry, library,
        use_daemon=True, daemon_period_ns=100_000.0, telemetry=hub,
    )
    graph = make_layered_dag(
        layers=4, width=6, num_workers=2,
        functions=("saxpy", "stencil5", "montecarlo"), seed=3,
    )
    report = engine.run_graph(graph)
    return hub, report


class TestInstrumentedRun:
    def test_all_four_layers_report_metrics(self, instrumented_run):
        hub, _ = instrumented_run
        snap = metrics_snapshot(hub)
        assert any(".noc." in k for k in snap), "interconnect dark"
        assert any(".dram." in k or ".cache." in k for k in snap), "memory dark"
        assert any(".fabric." in k for k in snap), "fabric dark"
        assert any(".runtime." in k for k in snap), "runtime dark"
        assert any(k.startswith("counter.sim.") for k in snap), "kernel dark"

    def test_metric_kinds_cover_counters_gauges_histograms(self, instrumented_run):
        hub, _ = instrumented_run
        assert hub.registry.counters and hub.registry.gauges and hub.registry.histograms
        lat = [h for n, h in hub.registry.histograms.items() if "transfer_ns" in n]
        assert any(h.count > 0 for h in lat), "no link latency samples"

    def test_scheduler_decisions_logged(self, instrumented_run):
        hub, report = instrumented_run
        decisions = hub.events.select(kind="scheduler.decision")
        assert len(decisions) == report.tasks
        assert {d.attrs["device"] for d in decisions} <= {"sw", "hw"}

    def test_spans_cover_tasks_and_reconfigs(self, instrumented_run):
        hub, report = instrumented_run
        spans = hub.tracer.closed_spans()
        assert len(spans) >= report.tasks
        if report.reconfigurations:
            assert any(s.name.startswith("reconfig:") for s in spans)
            assert len(hub.events.select(kind="fabric.reconfig")) == report.reconfigurations

    def test_chrome_trace_round_trip(self, instrumented_run):
        hub, report = instrumented_run
        payload = json.loads(chrome_trace_json(hub))
        n = validate_chrome_trace(payload)
        assert n == len(payload["traceEvents"])
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(hub.tracer.closed_spans())
        names = {e["args"]["name"] for e in payload["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(lane in names for lane in hub.tracer.lanes())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(hub.events)

    def test_snapshot_json_round_trip(self, instrumented_run):
        hub, _ = instrumented_run
        decoded = json.loads(snapshot_json(hub))
        snap = metrics_snapshot(hub)
        assert set(decoded) == set(snap)
        assert decoded["counter.node0.runtime.history_records"] == snap[
            "counter.node0.runtime.history_records"
        ]

    def test_snapshot_csv_round_trip(self, instrumented_run):
        hub, _ = instrumented_run
        text = snapshot_csv(hub)
        lines = text.strip().splitlines()
        assert lines[0] == "metric,value"
        parsed = dict(line.rsplit(",", 1) for line in lines[1:])
        snap = metrics_snapshot(hub)
        assert set(parsed) == set(snap)
        for k, v in parsed.items():
            assert float(v) == pytest.approx(snap[k])

    def test_prometheus_round_trip(self, instrumented_run):
        hub, _ = instrumented_run
        text = prometheus_text(hub)
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        # every counter is present under its sanitized name
        for cname, c in hub.registry.counters.items():
            safe = "repro_" + "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in cname
            )
            assert samples[safe] == pytest.approx(c.value)
        # histogram buckets are cumulative and end at the total count
        for hname, h in hub.registry.histograms.items():
            safe = "repro_" + "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in hname
            )
            inf_key = f'{safe}_bucket{{le="+Inf"}}'
            assert samples[inf_key] == h.count
            assert samples[f"{safe}_count"] == h.count

    def test_events_json_schema_valid(self, instrumented_run):
        hub, _ = instrumented_run
        events = json.loads(events_json(hub))
        assert events
        for e in events:
            validate_event(e)
        assert all(
            events[i]["ts"] <= events[i + 1]["ts"] for i in range(len(events) - 1)
        )


# ----------------------------------------------------------------------
# disabled telemetry changes nothing
# ----------------------------------------------------------------------


class TestDisabledParity:
    def run_once(self, telemetry):
        registry = FunctionRegistry()
        from repro.hls import saxpy_kernel, stencil_kernel

        registry.register(saxpy_kernel(1024))
        registry.register(stencil_kernel(1024))
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        if telemetry is not None:
            node.attach_telemetry(telemetry if telemetry.enabled else None)
        engine = ExecutionEngine(
            node, registry, use_daemon=False, allow_hardware=False,
            telemetry=telemetry,
        )
        graph = make_layered_dag(
            layers=4, width=6, num_workers=2, functions=("saxpy", "stencil5"), seed=9
        )
        return engine.run_graph(graph)

    def test_results_identical_with_and_without_hub(self):
        dark = self.run_once(None)
        null = self.run_once(NULL)
        assert dark.makespan_ns == null.makespan_ns
        assert dark.energy_pj == null.energy_pj
        assert dark.device_mix == null.device_mix

    def test_instrumented_run_same_simulated_results(self):
        dark = self.run_once(None)
        sim = Simulator()
        hub = Telemetry(sim)
        # rebuild with a live hub: simulated timing must be unchanged
        registry = FunctionRegistry()
        from repro.hls import saxpy_kernel, stencil_kernel

        registry.register(saxpy_kernel(1024))
        registry.register(stencil_kernel(1024))
        node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
        node.attach_telemetry(hub)
        engine = ExecutionEngine(
            node, registry, use_daemon=False, allow_hardware=False, telemetry=hub,
        )
        graph = make_layered_dag(
            layers=4, width=6, num_workers=2, functions=("saxpy", "stencil5"), seed=9
        )
        lit = engine.run_graph(graph)
        assert lit.makespan_ns == dark.makespan_ns
        assert lit.device_mix == dark.device_mix
        assert len(hub.tracer.closed_spans()) == lit.tasks
