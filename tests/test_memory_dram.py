"""Unit tests for the DRAM timing/energy model."""

import pytest

from repro.memory import Dram, DramTiming
from repro.sim import Simulator


def make_dram(**kw):
    return Dram(Simulator(), DramTiming(**kw))


def test_row_miss_then_hit():
    d = make_dram()
    t1 = d.access(0, 64)
    t2 = d.access(64, 64)
    assert t1 > t2  # first touch opens the row
    assert d.row_hits == 1 and d.row_misses == 1


def test_bank_conflict_reopens_row():
    d = make_dram(num_banks=2, row_bytes=128)
    d.access(0, 8)            # bank 0, row 0
    d.access(2 * 128, 8)      # row 2 -> bank 0 again, different row
    d.access(0, 8)            # row 0 again: must re-activate
    assert d.row_misses == 3


def test_different_banks_keep_rows_open():
    d = make_dram(num_banks=2, row_bytes=128)
    d.access(0, 8)        # bank 0 row 0
    d.access(128, 8)      # bank 1 row 1
    t = d.access(8, 8)    # bank 0 row 0 still open
    assert t == pytest.approx(DramTiming().row_hit_ns + 8 / DramTiming().bandwidth_gbps)


def test_latency_includes_transfer_time():
    d = make_dram(bandwidth_gbps=10.0)
    t_small = d.access(0, 64)
    d2 = make_dram(bandwidth_gbps=10.0)
    t_big = d2.access(0, 6400)
    assert t_big > t_small


def test_burst_spanning_rows_charges_activates():
    d = make_dram(row_bytes=128)
    d.access(0, 3 * 128)  # spans rows 0,1,2
    assert d.row_misses == 3
    # energy: 3 activates + per-byte
    expected = 3 * d.timing.energy_per_activate_pj + 3 * 128 * d.timing.energy_per_byte_pj
    assert d.energy_pj == pytest.approx(expected)


def test_counts_reads_writes_bytes():
    d = make_dram()
    d.access(0, 100, is_write=False)
    d.access(0, 50, is_write=True)
    assert d.reads == 1 and d.writes == 1
    assert d.bytes_transferred == 150


def test_invalid_access_rejected():
    d = make_dram()
    with pytest.raises(ValueError):
        d.access(0, 0)
    with pytest.raises(ValueError):
        d.access(d.timing.capacity_bytes, 8)


def test_invalid_timing_rejected():
    with pytest.raises(ValueError):
        DramTiming(row_hit_ns=50.0, row_miss_ns=10.0)
    with pytest.raises(ValueError):
        DramTiming(bandwidth_gbps=0)


def test_row_hit_rate_and_reset():
    d = make_dram()
    d.access(0, 8)
    d.access(8, 8)
    assert d.row_hit_rate == pytest.approx(0.5)
    d.reset_stats()
    assert d.row_hit_rate == 0.0
    assert d.bytes_transferred == 0
