#!/usr/bin/env python
"""CART decision-tree training with chained accelerators (Section 4.3).

The HC-CART workload of the paper's related work: train a Gini CART
classifier on synthetic data (real numpy computation), then model its
split-search inner loop on the fabric two ways -- as separate accelerator
calls that round-trip DRAM between stages, and as a *chained* pipeline
(histogram -> gini -> argmin) that streams module-to-module on-fabric.

Run:  python examples/cart_dataflow.py
"""

from repro.apps import CartTree, make_classification
from repro.core import Worker
from repro.core.middleware import AcceleratorChain
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, cart_split_kernel
from repro.sim import Simulator

SAMPLES = 2000
FEATURES = 12


def main() -> None:
    # --- the real data-mining computation --------------------------------
    x, y = make_classification(SAMPLES, FEATURES, classes=3, seed=5)
    train_x, test_x = x[:1500], x[1500:]
    train_y, test_y = y[:1500], y[1500:]
    tree = CartTree(max_depth=8).fit(train_x, train_y)
    print(f"CART: {tree.node_count} nodes, "
          f"train acc {tree.accuracy(train_x, train_y):.3f}, "
          f"test acc {tree.accuracy(test_x, test_y):.3f}")
    print(f"split evaluations performed: {tree.splits_evaluated}\n")

    # --- hardware mapping of the split search ----------------------------
    sim = Simulator()
    worker = Worker(sim, 0)
    library = ModuleLibrary()
    tool = HlsTool()
    tool.compile(
        cart_split_kernel(SAMPLES, FEATURES), library,
        SynthesisConstraints(max_variants=1),
    )
    module = library.best_variant("cart_split")
    print(f"accelerator: {module.name} "
          f"(II={module.initiation_interval}, {module.clock_ns} ns clock)")

    # a three-stage split-search pipeline built from the same module class
    chain = AcceleratorChain(worker, [module, module, module])
    items = tree.splits_evaluated
    chained = chain.cost_chained(items, bytes_per_item=5)
    unchained = chain.cost_unchained(items, bytes_per_item=5)

    print(f"\nsplit-search dataflow over {items} evaluations:")
    print(f"{'':14s} {'DRAM bytes':>12s} {'latency (us)':>13s} {'energy (uJ)':>12s}")
    print(f"{'unchained':14s} {unchained.dram_bytes:12d} "
          f"{unchained.latency_ns / 1000:13.1f} {unchained.energy_pj / 1e6:12.2f}")
    print(f"{'chained':14s} {chained.dram_bytes:12d} "
          f"{chained.latency_ns / 1000:13.1f} {chained.energy_pj / 1e6:12.2f}")
    print(f"\nchaining cut DRAM traffic {unchained.dram_bytes / chained.dram_bytes:.1f}x "
          f"and energy {unchained.energy_pj / chained.energy_pj:.2f}x -- "
          f"'more processing per unit of transferred data'.")


if __name__ == "__main__":
    main()
