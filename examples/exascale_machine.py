#!/usr/bin/env python
"""Scaling the hierarchy toward exascale (Sections 1-2).

Builds progressively larger ECOSCALE machines -- more hierarchy levels,
more Compute Nodes -- and reports the quantities the paper's scaling
argument is built on: maximum Worker-to-Worker hop distance (petascale
~5 hops, exascale 6-7), allreduce latency at scale, and the power wall
(the 1 GW Tianhe-2 extrapolation vs. the efficiency exascale needs).

Run:  python examples/exascale_machine.py
"""

from repro.core import ComputeNode, ComputeNodeParams, Machine, MachineParams
from repro.energy import (
    GREEN500_2015_LEADER,
    TIANHE2,
    efficiency_required_for,
    extrapolate_power_mw,
)
from repro.sim import Simulator

CONFIGS = [
    # (label, nodes, fanouts, workers/node, intra_fanout)
    ("board", 1, None, 4, None),
    ("chassis", 4, [4], 4, None),
    ("cabinet", 16, [4, 4], 8, 4),
    ("row", 64, [4, 4, 4], 8, 4),
]


def main() -> None:
    print("machine scaling (the Fig. 3 hierarchy):\n")
    header = (f"{'level':8s} {'nodes':>6s} {'workers':>8s} "
              f"{'max hops':>9s} {'allreduce 4KiB (us)':>20s}")
    print(header)
    print("-" * len(header))
    for label, nodes, fanouts, wpn, intra in CONFIGS:
        machine = Machine(
            Simulator(),
            MachineParams(
                num_nodes=nodes,
                node=ComputeNodeParams(num_workers=wpn, intra_fanout=intra),
                inter_node_fanouts=fanouts,
            ),
        )
        ar = machine.world.allreduce(4096)
        print(f"{label:8s} {nodes:6d} {machine.total_workers:8d} "
              f"{machine.max_hop_distance():9d} {ar.latency_ns / 1000:20.1f}")

    print("\nthe power wall (Section 1):")
    tianhe = extrapolate_power_mw(TIANHE2)
    green = extrapolate_power_mw(GREEN500_2015_LEADER)
    print(f"  exaflop at Tianhe-2 efficiency : {tianhe:8.0f} MW  (~1 GW)")
    print(f"  exaflop at Green500-best (2015): {green:8.0f} MW")
    print(f"  required for a 20 MW facility  : "
          f"{efficiency_required_for():5.0f} GFLOPS/W "
          f"(Tianhe-2 delivered {TIANHE2.gflops_per_watt:.1f})")
    print("\nhence ECOSCALE: locality-first hierarchy + shared reconfigurable "
          "accelerators instead of more of the same cores.")


if __name__ == "__main__":
    main()
