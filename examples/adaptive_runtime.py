#!/usr/bin/env python
"""The full ECOSCALE runtime loop (Fig. 5) on a mixed task stream.

A layered DAG of stencil / saxpy / Monte-Carlo tasks is driven through
the Execution Engine twice:

- **static software**: no daemon, everything on CPUs;
- **adaptive**: the reconfiguration daemon watches the Execution History,
  loads the hottest functions into the fabric mid-run, and the per-Worker
  schedulers start dispatching those calls to hardware.

Run:  python examples/adaptive_runtime.py
"""

from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import ExecutionEngine
from repro.fabric import ModuleLibrary
from repro.hls import (
    HlsTool,
    SynthesisConstraints,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
)
from repro.sim import Simulator

WORKERS = 4
LAYERS = 8
WIDTH = 12


def build_engine(use_daemon: bool):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=WORKERS))
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for kernel in (saxpy_kernel(1024), stencil_kernel(1024), montecarlo_kernel(1024, 8)):
        registry.register(kernel)
        tool.compile(kernel, library, SynthesisConstraints(max_variants=2))
    engine = ExecutionEngine(
        node,
        registry,
        library,
        use_daemon=use_daemon,
        daemon_period_ns=100_000.0,
        allow_hardware=use_daemon,
    )
    return engine


def main() -> None:
    graph_args = dict(
        layers=LAYERS, width=WIDTH, num_workers=WORKERS,
        functions=("saxpy", "stencil5", "montecarlo"), seed=11,
    )
    print(f"workload: {LAYERS} layers x {WIDTH} tasks on {WORKERS} workers\n")

    reports = {}
    for label, use_daemon in (("static-sw", False), ("adaptive", True)):
        engine = build_engine(use_daemon)
        report = engine.run_graph(make_layered_dag(**graph_args))
        reports[label] = report
        print(f"--- {label} ---")
        print(f"  makespan        : {report.makespan_ns / 1e6:8.3f} ms")
        print(f"  device mix      : {report.sw_calls} sw / {report.hw_calls} hw")
        print(f"  reconfigurations: {report.reconfigurations}")
        print(f"  total energy    : {report.energy_pj / 1e9:8.3f} mJ")
        print(f"  status messages : {report.status_messages}")
        if use_daemon and engine.daemon is not None:
            print(f"  daemon loaded   : {engine.daemon.stats.functions_loaded}")
        print()

    static, adaptive = reports["static-sw"], reports["adaptive"]
    print(f"adaptive runtime used hardware for "
          f"{adaptive.hw_fraction:.0%} of calls and cut energy by "
          f"{1 - adaptive.energy_pj / static.energy_pj:.0%} "
          f"(makespan ratio {adaptive.makespan_ns / static.makespan_ns:.2f}x)")


if __name__ == "__main__":
    main()
