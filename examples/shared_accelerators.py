#!/usr/bin/env python
"""UNILOGIC shared accelerators: Monte-Carlo pricing across Workers.

A trading desk workload: eight concurrent pricing jobs (European calls on
different underlyings) run on a 4-Worker PGAS partition that has only
*one* Monte-Carlo accelerator loaded.  With UNILOGIC every Worker invokes
that block directly -- remote register writes over the interconnect, the
virtualization block pipelining the calls -- instead of each Worker
needing a private copy.

The script prices the options for real (numpy GBM, checked against
Black-Scholes) and reports how invocations were shared.

Run:  python examples/shared_accelerators.py
"""

from repro.apps import european_call_mc
from repro.apps.montecarlo import black_scholes_call
from repro.core import ComputeNode, ComputeNodeParams, UnilogicDomain
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, montecarlo_kernel
from repro.sim import Simulator, spawn

PATHS = 20_000
STEPS = 64
BOOKS = [
    # (spot, strike, rate, vol)
    (100.0, 95.0, 0.03, 0.18),
    (100.0, 100.0, 0.03, 0.18),
    (100.0, 105.0, 0.03, 0.18),
    (100.0, 110.0, 0.03, 0.25),
    (50.0, 55.0, 0.01, 0.30),
    (50.0, 45.0, 0.01, 0.30),
    (200.0, 210.0, 0.05, 0.15),
    (200.0, 190.0, 0.05, 0.15),
]


def main() -> None:
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    unilogic = UnilogicDomain(node)

    # synthesize the Monte-Carlo kernel and load ONE module on worker 0
    library = ModuleLibrary()
    HlsTool().compile(
        montecarlo_kernel(PATHS, STEPS), library, SynthesisConstraints(max_variants=1)
    )
    module = library.best_variant("montecarlo")
    print(f"accelerator: {module.name}")
    print(f"  resources: {module.resources}")
    print(f"  throughput: {module.throughput_items_per_us():.1f} paths/us\n")

    results = []

    def load_then_price():
        region = yield from node.worker(0).load_module(module)
        assert region is not None
        # eight jobs, issued round-robin from all four workers
        for i, (spot, strike, rate, vol) in enumerate(BOOKS):
            caller = i % 4
            access = yield from unilogic.invoke(
                "montecarlo",
                caller_worker=caller,
                items=PATHS,
                data_worker=caller,
                bytes_per_item=8,
            )
            price, stderr = european_call_mc(
                spot, strike, rate, vol, 1.0, steps=STEPS, paths=PATHS, seed=i
            )
            reference = black_scholes_call(spot, strike, rate, vol, 1.0)
            results.append((i, caller, access, price, stderr, reference))

    spawn(sim, load_then_price())
    sim.run()

    print(f"{'job':>3s} {'caller':>6s} {'host':>4s} {'remote':>6s} "
          f"{'latency (us)':>12s} {'MC price':>9s} {'BS ref':>8s}")
    for i, caller, access, price, stderr, ref in results:
        print(f"{i:3d} {caller:6d} {access.host_worker:4d} "
              f"{'yes' if access.remote_control else 'no':>6s} "
              f"{access.latency_ns / 1000:12.1f} {price:9.3f} {ref:8.3f}")
        assert abs(price - ref) < 5 * stderr + 0.1

    util = unilogic.utilization_by_worker()
    print(f"\ninvocations by hosting worker: {util}")
    print(f"remote invocations (UNILOGIC sharing): {unilogic.remote_invocations}/8")
    print("one physical accelerator served all four Workers -- no per-Worker "
          "copies, no global cache coherence.")


if __name__ == "__main__":
    main()
