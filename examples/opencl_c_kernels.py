#!/usr/bin/env python
"""From OpenCL C source to reconfigurable silicon, end to end.

The full programmer experience the paper promises: write plain OpenCL C,
build a Program from it (the HLS frontend parses it into timing IR),
enable acceleration (the design-space explorer picks implementations and
floorplans them), and enqueue -- the module is partially reconfigured in
on first use, with no hardware expertise anywhere in sight.

Run:  python examples/opencl_c_kernels.py
"""

import numpy as np

from repro.core import ComputeNode, ComputeNodeParams
from repro.opencl import CommandQueue, Context, DeviceType, Platform, Program
from repro.sim import Simulator

N = 8192
TAPS = 16

FIR_SRC = """
// ecoscale: recurrence(1, 3)
__kernel void fir(__global const float* signal,
                  __global const float* coeff,
                  __global float* out) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int t = 0; t < TAPS; t++) {
        acc += signal[i + t] * coeff[t];
    }
    out[i] = acc;
}
"""


def main() -> None:
    # --- build from source -------------------------------------------------
    program = Program.from_source([FIR_SRC], global_size=N, constants={"TAPS": TAPS})
    kernel_ir = program.registry.kernel("fir")
    print("parsed kernel:", kernel_ir.name)
    print(f"  per-work-item ops: { {k.value: v for k, v in kernel_ir.ops.items()} }")
    print(f"  arrays: {[a.name for a in kernel_ir.arrays]}")
    print(f"  recurrence bound: {kernel_ir.recurrence}")

    variants = program.enable_acceleration("fir")
    print(f"  HLS produced {variants} placed variant(s)\n")

    def fir_impl(signal, coeff, out):
        s, c = signal.array, coeff.array
        acc = np.zeros(N, dtype=np.float32)
        for t in range(TAPS):
            acc += s[t:t + N] * c[t]
        out.array[:] = acc

    program.set_host_impl("fir", fir_impl)

    # --- platform + buffers -------------------------------------------------
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    platform = Platform(node)
    context = Context(platform)
    signal = context.create_buffer(4 * (N + TAPS), dtype=np.float32)
    coeff = context.create_buffer(4 * TAPS, dtype=np.float32)
    out = context.create_buffer(4 * N, dtype=np.float32)
    rng = np.random.default_rng(3)
    signal.array[:] = rng.normal(size=N + TAPS).astype(np.float32)
    coeff.array[:] = (np.hanning(TAPS) / TAPS).astype(np.float32)

    # --- run on both devices -----------------------------------------------
    handle = program.kernel("fir").set_args(signal, coeff, out)
    cpu_q = CommandQueue(context, platform.device(0, DeviceType.CPU))
    ev_cpu = cpu_q.enqueue_nd_range(handle, N)
    cpu_q.finish()
    reference = out.array.copy()

    fpga_q = CommandQueue(context, platform.device(0, DeviceType.FPGA))
    ev_hw = fpga_q.enqueue_nd_range(handle, N)
    fpga_q.finish()
    assert np.allclose(out.array, reference)
    ev_hw2 = fpga_q.enqueue_nd_range(handle, N)
    fpga_q.finish()

    print(f"cpu run            : {ev_cpu.duration_ns:10.0f} ns")
    print(f"fpga first call    : {ev_hw.duration_ns:10.0f} ns (incl. reconfiguration)")
    print(f"fpga steady state  : {ev_hw2.duration_ns:10.0f} ns")
    print(f"\nloaded on worker 0 : {node.worker(0).fabric.loaded_functions()}")
    print("from OpenCL C source to a placed, reconfigured accelerator -- "
          "no hardware design in the loop.")


if __name__ == "__main__":
    main()
