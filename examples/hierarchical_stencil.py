#!/usr/bin/env python
"""Hierarchical partitioning of a Jacobi stencil (the Fig. 1 scenario).

A 256x256 heat-diffusion problem is decomposed into 64 subdomains and
mapped onto a 16-Worker machine hierarchy two ways:

- **hierarchical/block**: neighbouring subdomains land on the same or
  adjacent Workers (the ECOSCALE partitioning of Fig. 1),
- **flat/cyclic**: locality-oblivious round-robin.

The script runs the real computation (numpy Jacobi sweeps, identical
results either way) and prices 100 halo-exchange rounds on the simulated
interconnect, reporting the traffic/energy gap.

Run:  python examples/hierarchical_stencil.py
"""

import numpy as np

from repro.apps import (
    block_mapping,
    communication_bytes,
    cyclic_mapping,
    decompose_grid,
    halo_pairs,
    jacobi_reference,
)
from repro.interconnect import build_tree
from repro.sim import Simulator

GRID = 256
SUBDOMAINS = 64
WORKERS = 16
ROUNDS = 100


def main() -> None:
    # --- the actual computation ------------------------------------------
    result = jacobi_reference(GRID, iterations=50)
    print(f"jacobi on {GRID}x{GRID}: centre temperature after 50 sweeps = "
          f"{result[GRID // 2, GRID // 2]:.4f}")

    # --- decomposition ----------------------------------------------------
    decomp = decompose_grid(GRID, SUBDOMAINS)
    pairs = halo_pairs(decomp)
    print(f"decomposition: {decomp.py}x{decomp.px} subdomains, "
          f"{len(pairs)} halo pairs, "
          f"{sum(b for _, _, b in pairs)} bytes exchanged per sweep")

    # --- machine: a 4x4 tree hierarchy of Workers --------------------------
    sim = Simulator()
    network, workers = build_tree(sim, [4, 4])
    print(f"machine: 16 workers on a 2-level tree, "
          f"leaf diameter {network.diameter_hops(workers)} hops\n")

    header = f"{'mapping':14s} {'link-bytes':>14s} {'energy (uJ)':>12s} {'max hops':>9s} {'mean hops':>10s}"
    print(header)
    print("-" * len(header))
    results = {}
    for label, mapping in (
        ("hierarchical", block_mapping(SUBDOMAINS, workers)),
        ("flat/cyclic", cyclic_mapping(SUBDOMAINS, workers)),
    ):
        metrics = communication_bytes(pairs, mapping, network, rounds=ROUNDS)
        results[label] = metrics
        print(f"{label:14s} {metrics['link_bytes']:14.0f} "
              f"{metrics['energy_pj'] / 1e6:12.2f} "
              f"{metrics['max_hops']:9.0f} {metrics['mean_hops']:10.2f}")

    ratio = results["flat/cyclic"]["energy_pj"] / results["hierarchical"]["energy_pj"]
    print(f"\nhierarchical mapping moves "
          f"{ratio:.1f}x less communication energy than flat "
          f"(the Fig. 1 locality argument)")


if __name__ == "__main__":
    main()
