#!/usr/bin/env python
"""Out-of-core hybrid MPI+PGAS sorting across a whole machine.

The workload the paper cites for the hybrid programming model (Jose et
al. [5]): a distributed sample sort.  One million keys are sharded
across 4 Compute Nodes x 4 Workers; the sort runs for real (numpy,
validated), cluster-scope buffers carry the data, and the all-to-all
exchange is priced under the three transport models.

Run:  python examples/hybrid_sort.py
"""

import numpy as np

from repro.apps import sample_sort
from repro.core import ComputeNodeParams, Machine, MachineParams
from repro.opencl import ClusterContext
from repro.sim import Simulator

NODES = 4
WORKERS = 4
KEYS = 1_000_000


def main() -> None:
    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=NODES,
            node=ComputeNodeParams(num_workers=WORKERS),
            inter_node_fanouts=[NODES],
        ),
    )
    cluster = ClusterContext(machine)
    partitions = NODES * WORKERS

    rng = np.random.default_rng(23)
    keys = rng.normal(size=KEYS)

    # shard the keys into NODE_GLOBAL buffers, one per node
    shard_elems = KEYS // NODES
    shards = []
    for n in range(NODES):
        buf = cluster.create_buffer(n, 8 * shard_elems, dtype=np.float64)
        buf.array[:] = keys[n * shard_elems:(n + 1) * shard_elems]
        shards.append(buf)
    print(f"{KEYS} keys sharded over {NODES} nodes "
          f"({shard_elems} each), {partitions} sort partitions")

    # the real distributed sort
    result, plan = sample_sort(keys, partitions=partitions, seed=29)
    assert np.array_equal(result, np.sort(keys))
    print(f"sorted: verified against np.sort; "
          f"bucket imbalance {plan.imbalance():.2f}x")
    print(f"all-to-all exchange volume: "
          f"{plan.total_exchange_bytes() / 1e6:.1f} MB off-diagonal\n")

    # price one representative cross-node shard exchange on the machine
    a, b = shards[0], shards[1]
    lat, energy = cluster.copy(a, b)
    print(f"one shard hop between nodes: {lat / 1e6:.2f} ms, "
          f"{energy / 1e6:.1f} uJ over the MPI tree")

    # splitter agreement is a tiny allreduce -- the PGAS-friendly phase
    splitters = machine.world.allreduce((partitions - 1) * 8)
    print(f"splitter allreduce: {splitters.latency_ns / 1000:.1f} us "
          f"in {splitters.rounds} rounds")

    # the *out-of-core* part: per-worker shards bigger than DRAM spill to
    # the Worker's SSD ("memory, and storage", Section 2)
    from repro.memory import Ssd, SsdTiming, out_of_core_sort_cost_ns

    ssd = Ssd(machine.sim, SsdTiming())
    shard_bytes = 64 << 30          # a real out-of-core shard
    dram_bytes = 1 << 30            # the Worker's DRAM window
    io_ns, passes = out_of_core_sort_cost_ns(ssd, shard_bytes, dram_bytes)
    print(f"out-of-core shard (64 GiB vs 1 GiB DRAM): {passes} merge "
          f"pass(es), {io_ns / 1e9:.1f} s of SSD I/O per worker")

    print("\nbulk exchange -> MPI; fine-grained splitter/boundary traffic "
          "-> PGAS loads/stores: the hybrid split the paper advocates.")


if __name__ == "__main__":
    main()
