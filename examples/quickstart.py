#!/usr/bin/env python
"""ECOSCALE quickstart: vector addition through the OpenCL-style API.

Builds one simulated Compute Node (a PGAS partition of four Workers),
creates PGAS-scoped buffers, runs ``vecadd`` first on a CPU device, then
enables hardware acceleration and reruns on the FPGA device of the same
Worker -- the module is synthesized by the HLS flow and partially
reconfigured in on demand.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ComputeNode, ComputeNodeParams
from repro.hls import vecadd_kernel
from repro.opencl import CommandQueue, Context, DeviceType, Platform, Program
from repro.sim import Simulator

N = 4096


def main() -> None:
    # --- platform bring-up: one PGAS partition of 4 Workers -------------
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    platform = Platform(node)
    context = Context(platform)
    print(f"platform: {platform.name}, {len(platform.devices())} devices "
          f"({len(node)} workers x {{cpu, fpga}})")

    # --- program: kernel IR + a real numpy implementation ---------------
    program = Program([vecadd_kernel(N)])
    program.set_host_impl(
        "vecadd", lambda a, b, c: c.array.__setitem__(slice(None), a.array + b.array)
    )

    # --- buffers in the partitioned global address space ----------------
    a = context.create_buffer(4 * N, affinity_worker=0, dtype=np.float32)
    b = context.create_buffer(4 * N, affinity_worker=0, dtype=np.float32)
    c = context.create_buffer(4 * N, affinity_worker=0, dtype=np.float32)
    a.array[:] = np.arange(N, dtype=np.float32)
    b.array[:] = 2.0

    # --- software execution ---------------------------------------------
    cpu_queue = CommandQueue(context, platform.device(0, DeviceType.CPU))
    ev_sw = cpu_queue.enqueue_nd_range(program.kernel("vecadd").set_args(a, b, c), N)
    cpu_queue.finish()
    assert np.allclose(c.array, a.array + 2.0)
    print(f"cpu  run: {ev_sw.duration_ns:10.0f} ns  (worker {ev_sw.result['worker']})")

    # --- on-demand hardware acceleration ---------------------------------
    variants = program.enable_acceleration("vecadd")
    print(f"hls  flow produced {variants} accelerator variant(s)")
    fpga_queue = CommandQueue(context, platform.device(0, DeviceType.FPGA))
    ev_hw = fpga_queue.enqueue_nd_range(program.kernel("vecadd").set_args(a, b, c), N)
    fpga_queue.finish()
    print(f"fpga run: {ev_hw.duration_ns:10.0f} ns  "
          f"(includes one partial reconfiguration)")

    ev_hw2 = fpga_queue.enqueue_nd_range(program.kernel("vecadd").set_args(a, b, c), N)
    fpga_queue.finish()
    print(f"fpga rerun: {ev_hw2.duration_ns:8.0f} ns  (module already resident)")

    worker = node.worker(0)
    print(f"\nworker 0 state: loaded={worker.fabric.loaded_functions()}, "
          f"reconfigs={worker.reconfig.reconfigurations}")
    print("energy breakdown (pJ):")
    for category, pj in sorted(node.ledger.breakdown(depth=2).items()):
        print(f"  {category:16s} {pj:14.0f}")


if __name__ == "__main__":
    main()
