"""CLAIM-SHARE: UNILOGIC shared accelerator pools (Section 4.1).

"Sharing of the limited reconfigurable resources between Workers is very
important."  We compare two provisionings of the same silicon:

- **shared pool**: 2 accelerators serve all 8 Workers via UNILOGIC;
- **private**: each Worker may only use a block it owns, so with 2
  blocks on 8 Workers, 6 Workers fall back to software.

At moderate load the shared pool wins throughput and energy; when every
Worker saturates its own block, private provisioning (8 blocks = 4x the
silicon) catches up -- the utilization argument.
"""

import pytest

from conftest import print_table
from repro.core import ComputeNode, ComputeNodeParams, UnilogicDomain
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, montecarlo_kernel
from repro.sim import AllOf, Simulator, spawn

WORKERS = 8
CALLS_PER_WORKER = 3
ITEMS = 4096


def _module():
    library = ModuleLibrary()
    HlsTool().compile(
        montecarlo_kernel(ITEMS, 8), library, SynthesisConstraints(max_variants=1)
    )
    return library.best_variant("montecarlo")


MODULE = _module()


def run_provisioning(mode):
    """mode: 'shared' (2 blocks, UNILOGIC) or 'private' (2 blocks, owner-only)."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=WORKERS))
    unilogic = UnilogicDomain(node)
    hosts = [0, 4]
    done = []

    def worker_job(worker_id):
        kernel = montecarlo_kernel(ITEMS, 8)
        for _ in range(CALLS_PER_WORKER):
            if mode == "shared" or worker_id in hosts:
                yield from unilogic.invoke(
                    "montecarlo", worker_id, ITEMS, data_worker=worker_id
                )
            else:
                # private mode: no block you own -> software
                yield from node.worker(worker_id).run_software(kernel, ITEMS)
        done.append(sim.now)

    def main():
        for h in hosts:
            yield from node.worker(h).load_module(MODULE)
        procs = [spawn(sim, worker_job(w), name=f"job{w}") for w in range(WORKERS)]
        yield AllOf(procs)

    spawn(sim, main())
    sim.run()
    hw_calls = len(unilogic.invocations)
    return {
        "makespan_ns": max(done),
        "energy_pj": node.ledger.total_pj(),
        "hw_calls": hw_calls,
        "remote_invocations": unilogic.remote_invocations,
    }


def test_claim_sharing_pool_beats_private_blocks(benchmark):
    results = benchmark(lambda: {m: run_provisioning(m) for m in ("shared", "private")})
    rows = [
        (m, r["makespan_ns"] / 1e6, r["energy_pj"] / 1e9, r["hw_calls"],
         r["remote_invocations"])
        for m, r in results.items()
    ]
    print_table(
        "CLAIM-SHARE: 2 accelerator blocks, 8 workers x 3 calls",
        ["provisioning", "makespan (ms)", "energy (mJ)", "hw calls", "remote invocations"],
        rows,
    )
    shared, private = results["shared"], results["private"]
    assert shared["hw_calls"] == WORKERS * CALLS_PER_WORKER
    assert private["hw_calls"] == 2 * CALLS_PER_WORKER
    assert shared["remote_invocations"] > 0
    # sharing converts software calls to hardware: big energy win
    assert shared["energy_pj"] < 0.7 * private["energy_pj"]


def test_claim_sharing_utilization(benchmark):
    def run():
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=WORKERS))
        unilogic = UnilogicDomain(node)

        def main():
            yield from node.worker(0).load_module(MODULE)
            for w in range(WORKERS):
                yield from unilogic.invoke("montecarlo", w, ITEMS, data_worker=w)

        spawn(sim, main())
        sim.run()
        return unilogic.utilization_by_worker()

    util = benchmark(run)
    print_table(
        "CLAIM-SHARE: invocations served per hosting worker",
        ["worker", "invocations hosted"],
        sorted(util.items()),
    )
    # one block served the entire domain
    assert util[0] == WORKERS
    assert sum(v for w, v in util.items() if w != 0) == 0
