"""FIG1: hierarchical application partitioning (paper Fig. 1, Section 2).

Regenerates the figure's claim as numbers: a halo-exchange workload
mapped hierarchically onto the machine tree moves far less hop-weighted
traffic and energy than locality-oblivious mappings, the advantage grows
with machine scale, and deeper (larger) machines push the maximum hop
distance from ~5 toward 6-7 -- exactly the Section 2 narrative.
"""

import pytest

from conftest import print_table
from repro.apps import (
    block_mapping,
    communication_bytes,
    cyclic_mapping,
    decompose_grid,
    halo_pairs,
    random_mapping,
)
from repro.core import ComputeNodeParams, Machine, MachineParams
from repro.interconnect import build_dragonfly, build_slimfly_like, build_tree
from repro.sim import Simulator

GRID = 256


def run_partitioning_experiment(fanouts, subdomains_per_worker=4):
    sim = Simulator()
    network, workers = build_tree(sim, fanouts)
    n_sub = len(workers) * subdomains_per_worker
    decomp = decompose_grid(GRID, n_sub)
    pairs = halo_pairs(decomp)
    out = {}
    for label, mapping in (
        ("hierarchical", block_mapping(n_sub, workers)),
        ("cyclic", cyclic_mapping(n_sub, workers)),
        ("random", random_mapping(n_sub, workers, seed=1)),
    ):
        out[label] = communication_bytes(pairs, mapping, network, rounds=10)
    return out


def test_fig1_hierarchical_vs_flat(benchmark):
    results = benchmark(run_partitioning_experiment, [4, 4])
    rows = [
        (label, m["link_bytes"], m["energy_pj"] / 1e6, m["mean_hops"], m["local_pairs"])
        for label, m in results.items()
    ]
    print_table(
        "FIG1: 16 workers, mapping comparison",
        ["mapping", "link-bytes", "energy (uJ)", "mean hops", "local pairs"],
        rows,
    )
    hier, cyc, rnd = results["hierarchical"], results["cyclic"], results["random"]
    assert hier["link_bytes"] < cyc["link_bytes"]
    assert hier["link_bytes"] < rnd["link_bytes"]
    assert hier["energy_pj"] < cyc["energy_pj"]
    assert hier["local_pairs"] > cyc["local_pairs"]


def test_fig1_gap_grows_with_scale(benchmark):
    def sweep():
        out = []
        for fanouts in ([2, 2], [4, 4], [4, 4, 4]):
            res = run_partitioning_experiment(fanouts)
            hier = res["hierarchical"]["energy_pj"]
            rnd = res["random"]["energy_pj"]
            out.append(("x".join(map(str, fanouts)), rnd / hier, rnd - hier))
        return out

    rows = benchmark(sweep)
    print_table("FIG1: locality advantage vs machine size",
                ["machine", "random/hierarchical energy", "gap (pJ)"], rows)
    ratios = [r for _, r, _ in rows]
    gaps = [g for _, _, g in rows]
    assert all(r > 1.5 for r in ratios)      # hierarchical always wins big
    assert gaps == sorted(gaps)              # absolute saving grows with scale


def test_fig1_high_radix_topologies(benchmark):
    """Section 2 names Dragonfly and SlimFly as the high-radix targets of
    hierarchical/topological partitioning.  Same 52-worker halo workload
    on a tree, a dragonfly and a slimfly-like fabric: the high-radix
    graphs buy a smaller diameter (fewer worst-case hops) while the tree
    keeps neighbour traffic on its cheap leaf links."""

    def run():
        rows = []
        n_sub = 104  # 2 subdomains per worker
        decomp = decompose_grid(GRID, n_sub)
        pairs = halo_pairs(decomp)
        builders = [
            # trees must go deep to reach scale: 3 levels for 52 leaves
            ("tree 2x2x13", lambda s: build_tree(s, [2, 2, 13])),
            ("dragonfly", lambda s: build_dragonfly(s, groups=4, routers_per_group=13,
                                                    workers_per_router=1)),
            ("slimfly", lambda s: build_slimfly_like(s, q=13, workers_per_router=4)),
        ]
        for label, build in builders:
            sim = Simulator()
            net, workers = build(sim)
            workers = workers[:52]
            mapping = block_mapping(n_sub, workers)
            metrics = communication_bytes(pairs, mapping, net, rounds=5)
            rows.append(
                (label, len(workers), net.diameter_hops(workers),
                 metrics["mean_hops"], metrics["energy_pj"] / 1e6)
            )
        return rows

    rows = benchmark(run)
    print_table(
        "FIG1: block-mapped halo exchange on named topologies (52 workers)",
        ["topology", "workers", "diameter", "mean hops", "energy (uJ)"],
        rows,
    )
    by_label = {r[0]: r for r in rows}
    # high-radix graphs: smaller diameter than the depth the tree needs
    assert by_label["dragonfly"][2] < by_label["tree 2x2x13"][2]
    assert by_label["slimfly"][2] < by_label["tree 2x2x13"][2]
    # every topology keeps most block-mapped neighbour traffic short
    for _, __, ___, mean_hops, ____ in rows:
        assert mean_hops < 4.0


def test_fig1_hop_distance_petascale_to_exascale(benchmark):
    """Section 2: petascale ~5 hops max, exascale 6-7."""

    def sweep():
        rows = []
        for label, nodes, fanouts, wpn, intra in (
            ("petascale-ish", 4, [4], 8, 4),
            ("pre-exascale", 16, [4, 4], 8, 4),
            ("exascale-ish", 64, [4, 4, 4], 8, 4),
        ):
            machine = Machine(
                Simulator(),
                MachineParams(
                    num_nodes=nodes,
                    node=ComputeNodeParams(num_workers=wpn, intra_fanout=intra),
                    inter_node_fanouts=fanouts,
                ),
            )
            rows.append((label, machine.total_workers, machine.max_hop_distance()))
        return rows

    rows = benchmark(sweep)
    print_table("FIG1: max hop distance vs scale",
                ["machine", "workers", "max hops"], rows)
    hops = [h for _, _, h in rows]
    assert hops == sorted(hops)
    assert hops[0] >= 4 and hops[-1] >= 6  # petascale ~5 -> exascale 6-7
