"""CLAIM-COMPRESS: configuration-data compression (Section 4.3 / [11]).

"By minimizing module bounding boxes and by using configuration data
compression, we will reduce memory requirements, configuration latency
and configuration power consumption at the same time."

The bench sweeps module density (floorplanner fill fraction) and
measures all three quantities with the real RLE coder and the modelled
configuration port -- all three must fall together, proportionally to the
achieved compression ratio.
"""

import pytest

from conftest import print_table
from repro.fabric import Bitstream, ConfigPort

PORT = ConfigPort()
FRAMES = 120


def compression_row(fill):
    raw = Bitstream.synthesize(f"m{fill}", FRAMES, fill_fraction=fill, seed=7)
    comp = raw.compress()
    return {
        "fill": fill,
        "ratio": comp.compression_ratio,
        "raw_bytes": raw.size_bytes,
        "comp_bytes": comp.size_bytes,
        "raw_latency_ns": PORT.load_ns(raw),
        "comp_latency_ns": PORT.load_ns(comp),
        "raw_energy_pj": PORT.load_energy_pj(raw),
        "comp_energy_pj": PORT.load_energy_pj(comp),
    }


def test_claim_compression_triple_win(benchmark):
    fills = [0.05, 0.2, 0.4, 0.6, 0.8, 0.95]
    rows = benchmark(lambda: [compression_row(f) for f in fills])
    print_table(
        "CLAIM-COMPRESS: RLE config compression vs module density",
        ["fill", "ratio", "memory (B)", "latency (ns)", "energy (pJ)"],
        [
            (r["fill"], r["ratio"], r["comp_bytes"], r["comp_latency_ns"],
             r["comp_energy_pj"])
            for r in rows
        ],
    )
    for r in rows:
        # the triple win, whenever compression wins at all
        if r["ratio"] > 1.1:
            assert r["comp_bytes"] < r["raw_bytes"]
            assert r["comp_latency_ns"] < r["raw_latency_ns"]
            assert r["comp_energy_pj"] < r["raw_energy_pj"]
    # sparser modules compress (much) better
    ratios = [r["ratio"] for r in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[0] > 5.0


def test_claim_compression_latency_tracks_ratio(benchmark):
    row = benchmark(compression_row, 0.1)
    # latency reduction ~ compression ratio (minus decompressor fill)
    speedup = row["raw_latency_ns"] / row["comp_latency_ns"]
    assert speedup == pytest.approx(row["ratio"], rel=0.15)


def test_claim_compression_lossless(benchmark):
    def roundtrip():
        raw = Bitstream.synthesize("m", 60, 0.3, seed=3)
        return raw.compress().decompress().data == raw.data

    assert benchmark(roundtrip)
