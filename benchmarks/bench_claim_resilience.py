"""CLAIM-RESIL: resilience through reconfiguration (Section 2).

"To further increase energy efficiency, as well as to provide
resilience, the Workers employ reconfigurable accelerators."

The bench kills regions (and a whole Worker's fabric) mid-service and
measures time-to-recover and continuity: the function keeps being
servable domain-wide because UNILOGIC lets the reload land anywhere.
"""

import pytest

from conftest import print_table
from repro.core import (
    ComputeNode,
    ComputeNodeParams,
    FaultInjector,
    RecoveryManager,
    UnilogicDomain,
)
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator, spawn


def _library():
    lib = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(1024), lib, SynthesisConstraints(max_variants=1))
    return lib


LIBRARY = _library()


def run_fault_scenario(worker_fault: bool, check_period_ns=10_000.0):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    unilogic = UnilogicDomain(node)
    injector = FaultInjector(node)
    manager = RecoveryManager(node, unilogic, LIBRARY, injector, check_period_ns)
    module = LIBRARY.best_variant("saxpy")
    served = {"before": 0, "after": 0}

    def scenario():
        region = yield from node.worker(0).load_module(module)
        yield from unilogic.invoke("saxpy", 1, 512)
        served["before"] += 1
        if worker_fault:
            injector.inject_worker_fault(0)
        else:
            injector.inject_region_fault(0, region.region_id)

    spawn(sim, scenario())
    mgr_proc = spawn(sim, manager.run())
    sim.run(until=200_000.0)
    manager.stop()

    # service continuity: the function is callable again after recovery
    def post_check():
        yield from unilogic.invoke("saxpy", 2, 512)
        served["after"] += 1

    spawn(sim, post_check())
    sim.run()
    record = next(r for r in injector.records if r.function == "saxpy")
    return {
        "recovery_ns": record.recovery_ns,
        "recovery_worker": record.recovery_worker,
        "served_after": served["after"],
    }


def test_claim_resilience_region_fault(benchmark):
    result = benchmark(run_fault_scenario, False)
    print_table(
        "CLAIM-RESIL: single region fault",
        ["metric", "value"],
        [
            ("time to recover (us)", result["recovery_ns"] / 1000),
            ("recovered on worker", result["recovery_worker"]),
            ("service restored", result["served_after"] == 1),
        ],
    )
    assert result["recovery_ns"] is not None
    assert result["recovery_worker"] == 0  # sibling region, same worker
    assert result["served_after"] == 1


def test_claim_resilience_whole_worker_fault(benchmark):
    result = benchmark(run_fault_scenario, True)
    print_table(
        "CLAIM-RESIL: whole-worker fabric fault",
        ["metric", "value"],
        [
            ("time to recover (us)", result["recovery_ns"] / 1000),
            ("recovered on worker", result["recovery_worker"]),
            ("service restored", result["served_after"] == 1),
        ],
    )
    assert result["recovery_worker"] != 0  # migrated across the domain
    assert result["served_after"] == 1


def test_claim_resilience_scrubber_detection_latency(benchmark):
    """SEU detection by configuration readback: detection latency is set
    by scrub bandwidth (full-fabric sweep time), the textbook relation."""
    from repro.fabric import ConfigScrubber
    from repro.core import ComputeNode, ComputeNodeParams

    def sweep():
        rows = []
        for bw in (0.1, 0.4, 1.6):
            sim = Simulator()
            node = ComputeNode(sim, ComputeNodeParams(num_workers=1))
            module = LIBRARY.best_variant("saxpy")
            out = {}

            def flow():
                region = yield from node.worker(0).load_module(module)
                scrub = ConfigScrubber(sim, node.worker(0).fabric,
                                       readback_bandwidth_gbps=bw)
                rec = scrub.inject_upset(region.region_id,
                                         frame=module.bitstream.frames - 1)
                yield from scrub.scrub_pass()
                out["detect_ns"] = rec.detection_ns

            spawn(sim, flow())
            sim.run()
            rows.append((bw, out["detect_ns"] / 1000))
        return rows

    rows = benchmark(sweep)
    print_table(
        "CLAIM-RESIL: SEU detection latency vs readback bandwidth",
        ["readback (GB/s)", "worst-frame detection (us)"],
        rows,
    )
    latencies = [t for _, t in rows]
    assert latencies == sorted(latencies, reverse=True)  # more bw, faster
    assert latencies[0] / latencies[-1] == pytest.approx(16.0, rel=0.05)


def test_claim_resilience_detection_period_bounds_recovery(benchmark):
    def sweep():
        rows = []
        for period in (5_000.0, 20_000.0, 80_000.0):
            r = run_fault_scenario(False, check_period_ns=period)
            rows.append((period / 1000, r["recovery_ns"] / 1000))
        return rows

    rows = benchmark(sweep)
    print_table(
        "CLAIM-RESIL: recovery time vs detection period",
        ["check period (us)", "recovery (us)"],
        rows,
    )
    times = [t for _, t in rows]
    assert times == sorted(times)  # slower detection, slower recovery