"""FIG2: the three-layer ECOSCALE framework, end to end (paper Fig. 2).

Exercises the whole stack exactly as the figure draws it: the runtime
layer asks for a function; the middleware/HLS layer synthesizes it and
performs partial reconfiguration; the architecture layer executes it.
The bench reports where the time goes per layer and checks the expected
ordering: synthesis (compile-time) >> configuration >> invocation.
"""

import pytest

from conftest import print_table
from repro.core import ComputeNode, ComputeNodeParams, UnilogicDomain
from repro.core.middleware import PartialReconfigDriver
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, stencil_kernel
from repro.sim import Simulator, spawn


def run_framework_stack():
    """One full pass through the Fig. 2 stack; returns per-layer costs."""
    # layer 2 (compile time): HLS + physical implementation
    library = ModuleLibrary()
    tool = HlsTool()
    report = tool.compile(
        stencil_kernel(2048), library, SynthesisConstraints(max_variants=2)
    )

    # layers 2 (runtime middleware) + 1 (architecture), simulated
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=2))
    region_capacity = node.worker(0).fabric.regions[0].capacity
    module = library.best_variant("stencil5", capacity=region_capacity)
    unilogic = UnilogicDomain(node)
    driver = PartialReconfigDriver(node.worker(0))
    timings = {}

    def flow():
        t0 = sim.now
        yield from driver.ensure_loaded(module)
        timings["configure_ns"] = sim.now - t0
        t1 = sim.now
        yield from unilogic.invoke("stencil5", caller_worker=1, items=2048)
        timings["invoke_ns"] = sim.now - t1

    spawn(sim, flow())
    sim.run()
    timings["explored_points"] = report.explored
    timings["variants"] = len(report.modules)
    timings["bitstream_bytes"] = module.bitstream.size_bytes
    return timings


def test_fig2_end_to_end_stack(benchmark):
    t = benchmark(run_framework_stack)
    print_table(
        "FIG2: one pass through the three layers",
        ["stage", "value"],
        [
            ("HLS design points explored", t["explored_points"]),
            ("module variants emitted", t["variants"]),
            ("partial bitstream (bytes)", t["bitstream_bytes"]),
            ("configuration latency (ns)", t["configure_ns"]),
            ("remote invocation latency (ns)", t["invoke_ns"]),
        ],
    )
    assert t["variants"] >= 1
    assert t["explored_points"] > 10          # the DSE actually explored
    assert t["configure_ns"] > 0
    assert t["invoke_ns"] > 0
    # both one-off configuration and invocation are microseconds-class:
    # the stack is usable at task granularity.
    assert t["configure_ns"] < 1e6 and t["invoke_ns"] < 1e6


def test_fig2_reload_amortization(benchmark):
    """The middleware's ensure-loaded path makes the configuration cost a
    one-off: N calls pay it exactly once."""

    def flow():
        library = ModuleLibrary()
        HlsTool().compile(
            stencil_kernel(1024), library, SynthesisConstraints(max_variants=1)
        )
        module = library.best_variant("stencil5")
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=1))
        unilogic = UnilogicDomain(node)
        driver = PartialReconfigDriver(node.worker(0))

        def calls():
            for _ in range(8):
                yield from driver.ensure_loaded(module)
                yield from unilogic.invoke("stencil5", 0, 1024)

        spawn(sim, calls())
        sim.run()
        return node.worker(0).reconfig.reconfigurations

    reconfigs = benchmark(flow)
    assert reconfigs == 1
