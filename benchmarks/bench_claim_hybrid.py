"""CLAIM-PGAS: hybrid MPI+PGAS programming (Section 2 / [5]).

"It is widely believed that a hybrid flexible MPI+PGAS programming model
is an efficient choice for many scientific computing problems and for
achieving exascale computing."  "PGAS is used for efficient
intra-partition communication ... MPI can also be used for efficient
inter-PGAS communication" (since "PGAS and related task scheduling
algorithms have important scaling problems").

The bench runs one halo-exchange sweep of a 2-D stencil on a 4-node x
8-worker machine under three models:

- pure-PGAS: every halo is fine-grained loads/stores, even across nodes;
- pure-MPI: every halo is an MPI message, even between siblings;
- hybrid: PGAS (loads/stores) inside a node, MPI between nodes.
"""

import pytest

from conftest import print_table
from repro.core import ComputeNode, ComputeNodeParams, Machine, MachineParams
from repro.interconnect import Message, TransactionType
from repro.mpi import CartTopology
from repro.sim import Simulator

NODES = 4
WORKERS_PER_NODE = 8
HALO_BYTES = 2048
#: per-message software overhead of the MPI stack (matching, tags, CRC)
MPI_SW_OVERHEAD_NS = 900.0
#: fine-grained PGAS access: one 64B load/store burst at a time
PGAS_BURST = 64


def build_machine():
    return Machine(
        Simulator(),
        MachineParams(
            num_nodes=NODES,
            node=ComputeNodeParams(num_workers=WORKERS_PER_NODE),
            inter_node_fanouts=[NODES],
        ),
    )


def halo_cost(machine, model):
    """Total (latency-sum, energy) of one global halo exchange."""
    total_workers = NODES * WORKERS_PER_NODE
    cart = CartTopology((NODES, WORKERS_PER_NODE), periodic=(False, True))
    latency = energy = 0.0
    messages = 0
    for rank in range(total_workers):
        node_a, w_a = divmod(rank, WORKERS_PER_NODE)
        for nb in cart.neighbours(rank):
            node_b, w_b = divmod(nb, WORKERS_PER_NODE)
            intra = node_a == node_b
            if model == "pgas" or (model == "hybrid" and intra):
                # fine-grained loads/stores: burst-granular, header each;
                # cross-node PGAS suffers per-burst long-haul latency.
                bursts = HALO_BYTES // PGAS_BURST
                if intra:
                    lat, e = machine.nodes[node_a].transfer_cost(
                        w_a, w_b, HALO_BYTES, TransactionType.STORE
                    )
                    # header overhead per burst
                    lat += bursts * 2.0
                else:
                    # blocking fine-grained loads across the long haul:
                    # every burst pays the full inter-node round trip
                    per_burst, e1 = _inter_cost(machine, node_a, node_b, PGAS_BURST)
                    lat = bursts * per_burst
                    e = e1 * bursts
                latency += lat
                energy += e
                messages += bursts
            else:
                # MPI message: software overhead + bulk transfer
                if intra:
                    lat, e = machine.nodes[node_a].transfer_cost(
                        w_a, w_b, HALO_BYTES, TransactionType.MPI
                    )
                else:
                    lat, e = _inter_cost(machine, node_a, node_b, HALO_BYTES)
                latency += lat + MPI_SW_OVERHEAD_NS
                energy += e
                messages += 1
    return {"latency_ns": latency, "energy_pj": energy, "messages": messages}


def _inter_cost(machine, node_a, node_b, size):
    msg = Message(
        machine.node_endpoints[node_a],
        machine.node_endpoints[node_b],
        size,
        TransactionType.MPI,
    )
    return machine.inter_network.send_cost(msg)


def test_claim_hybrid_beats_both_pure_models(benchmark):
    def run():
        return {
            model: halo_cost(build_machine(), model)
            for model in ("pgas", "mpi", "hybrid")
        }

    results = benchmark(run)
    rows = [
        (m, r["latency_ns"] / 1e6, r["energy_pj"] / 1e6, r["messages"])
        for m, r in results.items()
    ]
    print_table(
        "CLAIM-PGAS: one global halo exchange, 32 workers / 4 nodes",
        ["model", "sum latency (ms)", "energy (uJ)", "messages"],
        rows,
    )
    hybrid = results["hybrid"]["latency_ns"]
    assert hybrid < results["pgas"]["latency_ns"]   # PGAS dies cross-node
    assert hybrid < results["mpi"]["latency_ns"]    # MPI overhead intra-node


def test_claim_hybrid_pgas_wins_small_messages(benchmark):
    """Intra-node: fine-grained PGAS beats MPI for small payloads and
    loses for bulk -- the reason both are needed."""

    def run():
        machine = build_machine()
        node = machine.nodes[0]
        rows = []
        for size in (8, 64, 512, 4096, 65536):
            pgas_lat, _ = node.transfer_cost(0, 1, size, TransactionType.STORE)
            pgas_lat += 2.0 * max(1, size // PGAS_BURST)
            mpi_lat, _ = node.transfer_cost(0, 1, size, TransactionType.MPI)
            mpi_lat += MPI_SW_OVERHEAD_NS
            rows.append((size, pgas_lat, mpi_lat))
        return rows

    rows = benchmark(run)
    print_table(
        "CLAIM-PGAS: intra-node transfer, PGAS store vs MPI send",
        ["bytes", "PGAS (ns)", "MPI (ns)"],
        rows,
    )
    assert rows[0][1] < rows[0][2]        # 8B: PGAS wins big
    small_win = rows[0][2] / rows[0][1]
    big_win = rows[-1][2] / rows[-1][1]
    assert small_win > big_win            # advantage shrinks with size
