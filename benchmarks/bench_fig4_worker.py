"""FIG4: the Worker datapath (paper Fig. 4, Section 4.1).

Three asymmetries drawn in the block diagram are measured:

1. **ACE vs ACE-lite**: a local accelerator caches its data coherently; a
   remote Reconfigurable block "should disable its data cache (and would
   not be as efficient as a local one)" -- the gap grows with data reuse.
2. **User-level vs OS-mediated access**: the dual-stage SMMU removes the
   per-call OS trap; the win grows as calls get smaller.
3. **Dual-stage translation overhead**: nested translation costs two
   table walks on a TLB miss, then amortizes to zero.
"""

import pytest

from conftest import print_table
from repro.core import ComputeNode, ComputeNodeParams, UnilogicDomain, Worker
from repro.core.middleware import CallPath, HardwareCallLibrary
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.memory import PAGE_SIZE, PageTable, Smmu, TranslationRegime
from repro.sim import Simulator, spawn


def _compiled_saxpy():
    library = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(4096), library, SynthesisConstraints(max_variants=1))
    return library.best_variant("saxpy")


MODULE = _compiled_saxpy()


def ace_vs_acelite(reuse_turns):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    unilogic = UnilogicDomain(node)
    out = {}

    def flow():
        yield from node.worker(0).load_module(MODULE)
        local = yield from unilogic.invoke(
            "saxpy", 0, 4096, data_worker=0, reuse_turns=reuse_turns
        )
        remote = yield from unilogic.invoke(
            "saxpy", 0, 4096, data_worker=2, reuse_turns=reuse_turns
        )
        out["local"] = local.latency_ns
        out["remote"] = remote.latency_ns

    spawn(sim, flow())
    sim.run()
    return out


def test_fig4_ace_vs_acelite_gap_grows_with_reuse(benchmark):
    reuses = [0.0, 1.0, 2.0, 4.0, 8.0]
    rows = benchmark(
        lambda: [
            (r, ace_vs_acelite(r)["local"], ace_vs_acelite(r)["remote"])
            for r in reuses
        ]
    )
    table = [(r, loc, rem, rem / loc) for r, loc, rem in rows]
    print_table(
        "FIG4: accelerator access, local ACE (cached) vs remote ACE-lite",
        ["reuse turns", "local (ns)", "remote (ns)", "remote/local"],
        table,
    )
    ratios = [rem / loc for _, loc, rem in rows]
    assert all(r > 1.0 for r in ratios)      # remote never as efficient
    assert ratios[-1] > ratios[0]            # gap grows with reuse


def test_fig4_user_level_vs_os_mediated(benchmark):
    def sweep():
        rows = []
        for items in (64, 256, 1024, 4096):
            sim = Simulator()
            worker = Worker(sim, 0)
            lib = HardwareCallLibrary(worker)
            buffer_bytes = items * 8
            ctx = lib.bind_user_context(buffer_bytes)
            out = {}

            def flow():
                yield from worker.load_module(MODULE)
                t_user = yield from lib.call(
                    "saxpy", items, buffer_bytes, CallPath.USER_LEVEL, ctx
                )
                t_os = yield from lib.call(
                    "saxpy", items, buffer_bytes, CallPath.OS_MEDIATED
                )
                out["user"], out["os"] = t_user, t_os

            spawn(sim, flow())
            sim.run()
            rows.append((items, out["user"], out["os"], out["os"] / out["user"]))
        return rows

    rows = benchmark(sweep)
    print_table(
        "FIG4: call path overhead, SMMU user-level vs OS-mediated",
        ["items", "user-level (ns)", "OS-mediated (ns)", "OS/user"],
        rows,
    )
    for _, user, os_, _ in rows:
        assert user < os_
    # the relative win is biggest for the smallest calls
    assert rows[0][3] > rows[-1][3]


def test_fig4_dual_stage_smmu_amortizes(benchmark):
    def run():
        smmu = Smmu(tlb_entries=64)
        s1, s2 = PageTable(), PageTable()
        for vpn in range(32):
            s1.map(vpn, vpn + 100)
            s2.map(vpn + 100, vpn + 200)
        smmu.attach_context(1, TranslationRegime.NESTED, stage1=s1, stage2=s2)
        first_pass = sum(
            smmu.translate(1, vpn * PAGE_SIZE)[1] for vpn in range(32)
        )
        second_pass = sum(
            smmu.translate(1, vpn * PAGE_SIZE)[1] for vpn in range(32)
        )
        return first_pass, second_pass, smmu.stats.tlb_hit_rate

    first, second, hit_rate = benchmark(run)
    print_table(
        "FIG4: dual-stage SMMU translation cost over a 32-page buffer",
        ["pass", "total walk latency (ns)"],
        [("first touch (2 walks/page)", first), ("steady state", second)],
    )
    assert first == pytest.approx(32 * 2 * 90.0)
    assert second == 0.0
    assert hit_rate == pytest.approx(0.5)
