"""CLAIM-HLS: automated design-space exploration (Section 4.3).

"providing a way to specify performance and area constraints, and then
automatically exploring high-performance hardware implementation
techniques, such as pipelining, loop unrolling, as well as data storage
and data-path partitioning and duplication."

Shape: the explored space forms a real area/throughput Pareto front for
every kernel; each named transform contributes measurably.
"""

import pytest

from conftest import print_table
from repro.fabric import ResourceVector
from repro.hls import (
    DesignSpaceExplorer,
    HlsConfig,
    HlsEstimator,
    matmul_kernel,
    montecarlo_kernel,
    stencil_kernel,
    vecadd_kernel,
)

KERNELS = {
    "vecadd": vecadd_kernel(4096),
    "stencil5": stencil_kernel(4096),
    "matmul": matmul_kernel(32),
    "montecarlo": montecarlo_kernel(4096, 16),
}


def explore_all():
    dse = DesignSpaceExplorer()
    out = {}
    for name, kernel in KERNELS.items():
        points = dse.explore(kernel)
        front = dse.front(kernel)
        span = front[-1].throughput / front[0].throughput if len(front) > 1 else 1.0
        out[name] = {
            "explored": len(points),
            "front": len(front),
            "throughput_span": span,
            "area_span": front[-1].area / front[0].area if len(front) > 1 else 1.0,
        }
    return out


def test_claim_hls_pareto_fronts(benchmark):
    results = benchmark(explore_all)
    print_table(
        "CLAIM-HLS: DSE results per kernel",
        ["kernel", "points", "front size", "throughput span", "area span"],
        [
            (k, r["explored"], r["front"], f"{r['throughput_span']:.1f}x",
             f"{r['area_span']:.1f}x")
            for k, r in results.items()
        ],
    )
    for name, r in results.items():
        assert r["explored"] >= 20
        assert r["front"] >= 2               # a real trade-off exists
        assert r["throughput_span"] > 2.0    # area buys real speed
        assert r["area_span"] > 1.5


def test_claim_hls_each_transform_contributes(benchmark):
    """Ablation: pipelining, unrolling+partitioning, duplication each
    improve throughput over the previous configuration."""

    def run():
        est = HlsEstimator()
        k = KERNELS["vecadd"]
        pf = {a.name: 8 for a in k.arrays}
        steps = [
            ("baseline (sequential)", HlsConfig(pipeline=False)),
            ("+ pipelining", HlsConfig(pipeline=True)),
            ("+ unroll 8 + partition 8", HlsConfig(pipeline=True, unroll=8, partition=pf)),
            ("+ duplicate 4", HlsConfig(pipeline=True, unroll=8, partition=pf, duplicate=4)),
        ]
        return [
            (label, est.estimate(k, cfg).throughput_items_per_us())
            for label, cfg in steps
        ]

    rows = benchmark(run)
    print_table("CLAIM-HLS: transform ablation (vecadd)",
                ["configuration", "items/us"], rows)
    throughputs = [t for _, t in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 10 * throughputs[0]


def test_claim_hls_area_constraint_respected(benchmark):
    budget = ResourceVector(luts=4000, ffs=8000, brams=60, dsps=20)

    def run():
        dse = DesignSpaceExplorer()
        return (
            dse.best_under_constraints(KERNELS["stencil5"], budget),
            dse.best_under_constraints(KERNELS["stencil5"], ResourceVector()),
        )

    best, impossible = benchmark(run)
    assert best is not None
    assert best.estimate.resources.fits_in(budget)
    assert impossible is None  # an unsatisfiable budget is reported, not fudged
