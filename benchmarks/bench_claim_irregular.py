"""CLAIM-IRREGULAR: PGAS for irregular communication patterns (§2).

"the PGAS programming model is an attractive alternative for designing
applications with irregular communication patterns."

A real distributed BFS supplies the pattern: per-level frontier
notifications are many, small, and destination-irregular.  We price each
level's exchange as (a) fine-grained PGAS remote stores and (b) MPI
messages with per-message software overhead, on the same Compute Node.
"""

import pytest

from conftest import print_table
from repro.apps.bfs import bfs_levels, frontier_exchange_plan, random_graph
from repro.core import ComputeNode, ComputeNodeParams
from repro.interconnect import TransactionType
from repro.sim import Simulator

WORKERS = 8
VERTEX_BYTES = 8
MPI_SW_OVERHEAD_NS = 900.0


def bfs_transport_costs(n=4000, avg_degree=4, seed=17):
    graph = random_graph(n, avg_degree, seed)
    levels = bfs_levels(graph)
    plans = frontier_exchange_plan(graph, levels, partitions=WORKERS)
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=WORKERS))
    totals = {"pgas": 0.0, "mpi": 0.0}
    messages = vertices = 0
    for plan in plans:
        for i, j, count in plan.messages:
            size = count * VERTEX_BYTES
            pgas_lat, _ = node.transfer_cost(i, j, size, TransactionType.STORE)
            totals["pgas"] += pgas_lat + 2.0 * count  # per-store issue cost
            mpi_lat, _ = node.transfer_cost(i, j, size, TransactionType.MPI)
            totals["mpi"] += mpi_lat + MPI_SW_OVERHEAD_NS
            messages += 1
            vertices += count
    totals["messages"] = messages
    totals["mean_vertices_per_message"] = vertices / messages if messages else 0
    return totals


def test_claim_irregular_pgas_wins_bfs(benchmark):
    totals = benchmark(bfs_transport_costs)
    print_table(
        "CLAIM-IRREGULAR: BFS frontier exchange, 4000 vertices / 8 workers",
        ["metric", "value"],
        [
            ("cross-partition messages", totals["messages"]),
            ("mean vertices/message", round(totals["mean_vertices_per_message"], 1)),
            ("PGAS total latency (us)", totals["pgas"] / 1000),
            ("MPI total latency (us)", totals["mpi"] / 1000),
            ("MPI/PGAS", totals["mpi"] / totals["pgas"]),
        ],
    )
    # many small messages: per-message MPI overhead dominates
    assert totals["messages"] > 50
    assert totals["pgas"] < totals["mpi"]
    assert totals["mpi"] / totals["pgas"] > 1.5


def test_claim_irregular_advantage_shrinks_for_dense_graphs(benchmark):
    """Denser graphs batch more vertices per partner message, eroding the
    fine-grained advantage -- the crossover that motivates *hybrid*."""

    def sweep():
        rows = []
        for degree in (2, 8, 32):
            t = bfs_transport_costs(n=3000, avg_degree=degree, seed=19)
            rows.append(
                (degree, t["mean_vertices_per_message"], t["mpi"] / t["pgas"])
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "CLAIM-IRREGULAR: PGAS advantage vs graph density",
        ["avg degree", "vertices/message", "MPI/PGAS"],
        rows,
    )
    ratios = [r for _, _, r in rows]
    assert ratios[0] > ratios[-1]  # sparser == more irregular == bigger win
