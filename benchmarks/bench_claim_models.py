"""CLAIM-MODEL: input-dependent execution models (Section 4.2).

"We will specifically develop input-dependent models of execution time
and energy to select the best device to execute a function ... using an
array of regression, SVM and PCA techniques."

The bench trains the ridge and PCA selectors on a warm-up run's
Execution History and checks (1) prediction error is small, (2) device
choices match an exact-latency oracle almost always.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core.runtime import (
    DeviceSelector,
    ExecutionHistory,
    kernel_features,
)

RNG = np.random.default_rng(42)

# ground-truth device behaviours (ns): hw has high fixed cost, low slope
SW = lambda n: 12.0 * n + 800.0
HW = lambda n: 1.5 * n + 25_000.0
CROSSOVER = (25_000.0 - 800.0) / (12.0 - 1.5)  # ~2305 items


def build_history(samples=60, noise=0.03):
    hist = ExecutionHistory()
    for _ in range(samples):
        n = int(RNG.integers(64, 50_000))
        for device, fn in (("sw", SW), ("hw", HW)):
            latency = fn(n) * (1.0 + RNG.normal(0, noise))
            hist.record(
                function="kern", device=device, worker=0, items=n,
                latency_ns=max(1.0, latency), energy_pj=latency * 0.5,
                timestamp=0.0,
            )
    return hist


def evaluate_selector(use_pca):
    selector = DeviceSelector(min_samples=5, use_pca=use_pca)
    selector.train(build_history())
    test_sizes = [100, 500, 1000, 2000, 3000, 5000, 10_000, 40_000]
    errors = []
    agreement = 0
    for n in test_sizes:
        pred_sw = selector.predict_latency("kern", "sw", n)
        pred_hw = selector.predict_latency("kern", "hw", n)
        errors.append(abs(pred_sw - SW(n)) / SW(n))
        errors.append(abs(pred_hw - HW(n)) / HW(n))
        oracle = "sw" if SW(n) < HW(n) else "hw"
        if selector.choose_device("kern", n) == oracle:
            agreement += 1
    return {
        "mape": float(np.mean(errors)),
        "agreement": agreement / len(test_sizes),
        "sizes": len(test_sizes),
    }


def test_claim_models_predict_and_select(benchmark):
    results = benchmark(
        lambda: {"ridge": evaluate_selector(False), "pca": evaluate_selector(True)}
    )
    print_table(
        "CLAIM-MODEL: predictor quality vs exact-latency oracle",
        ["model", "MAPE", "oracle agreement"],
        [
            (name, f"{r['mape']:.1%}", f"{r['agreement']:.0%}")
            for name, r in results.items()
        ],
    )
    for r in results.values():
        assert r["mape"] < 0.10           # within 10% on average
        assert r["agreement"] >= 0.875    # at most one miss near crossover


def test_claim_models_find_the_crossover(benchmark):
    def run():
        selector = DeviceSelector(min_samples=5)
        selector.train(build_history())
        # scan for the predicted crossover point
        last = "sw"
        crossover_at = None
        for n in range(200, 20_000, 100):
            choice = selector.choose_device("kern", n)
            if choice == "hw" and last == "sw":
                crossover_at = n
                break
            last = choice
        return crossover_at

    found = benchmark(run)
    print_table(
        "CLAIM-MODEL: device crossover",
        ["", "items"],
        [("true crossover", int(CROSSOVER)), ("model crossover", found)],
    )
    assert found is not None
    assert abs(found - CROSSOVER) / CROSSOVER < 0.25


def test_claim_models_cold_start_abstains(benchmark):
    def run():
        selector = DeviceSelector(min_samples=5)
        hist = ExecutionHistory()
        for i in range(3):  # below min_samples
            hist.record(function="kern", device="sw", worker=0, items=100,
                        latency_ns=1000.0, energy_pj=1.0, timestamp=0.0)
        selector.train(hist)
        return selector.choose_device("kern", 100)

    assert benchmark(run) is None
