"""ABL-*: ablations of ECOSCALE design choices.

Each test removes or varies one mechanism the architecture bets on and
measures what it was buying:

- ABL-DAEMON: reconfiguration-daemon period (responsiveness vs thrash),
- ABL-REGIONS: reconfigurable regions per Worker,
- ABL-DIST: load-aware vs data-affinity-only work distribution,
- ABL-VIRT: pipelined virtualization block vs exclusive locking,
- ABL-PLACE: topology-aware rank placement vs oblivious + swap refinement.
"""

import pytest

from conftest import print_table
from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry, WorkerParams
from repro.core.runtime import DistributionPolicy, ExecutionEngine
from repro.fabric import ModuleLibrary, VirtualizedAccelerator
from repro.hls import (
    HlsTool,
    SynthesisConstraints,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
)
from repro.interconnect import build_tree
from repro.mpi import (
    CartTopology,
    improve_by_swaps,
    place_by_blocks,
    place_round_robin,
    placement_cost,
)
from repro.sim import Simulator, spawn

FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


def _compiled():
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for k in (saxpy_kernel(1024), stencil_kernel(1024), montecarlo_kernel(1024, 8)):
        registry.register(k)
        tool.compile(k, library, SynthesisConstraints(max_variants=2))
    return registry, library


REGISTRY, LIBRARY = _compiled()


def run_engine(daemon_period_ns=100_000.0, regions=2, policy=None, seed=31):
    sim = Simulator()
    node = ComputeNode(
        sim,
        ComputeNodeParams(num_workers=4, worker=WorkerParams(fabric_regions=regions)),
    )
    engine = ExecutionEngine(
        node,
        REGISTRY,
        LIBRARY,
        use_daemon=True,
        daemon_period_ns=daemon_period_ns,
        distribution_policy=policy or DistributionPolicy(),
    )
    graph = make_layered_dag(
        layers=8, width=12, num_workers=4, functions=FUNCTIONS, seed=seed
    )
    return engine.run_graph(graph)


def test_abl_daemon_period(benchmark):
    """Too slow a daemon never accelerates; too fast risks thrash.  The
    period is a first-order knob on hw_fraction."""

    def sweep():
        rows = []
        for period in (25_000.0, 100_000.0, 400_000.0, 5_000_000.0):
            r = run_engine(daemon_period_ns=period)
            rows.append((period / 1000, r.hw_calls, r.reconfigurations,
                         r.energy_pj / 1e9))
        return rows

    rows = benchmark(sweep)
    print_table(
        "ABL-DAEMON: daemon period sweep",
        ["period (us)", "hw calls", "reconfigs", "energy (mJ)"],
        rows,
    )
    hw = [r[1] for r in rows]
    assert hw[0] >= hw[-1]             # responsiveness buys hardware use
    assert rows[-1][1] == 0            # a 5 ms daemon misses the whole run
    energies = [r[3] for r in rows]
    assert energies[0] < energies[-1]  # ...and hardware use buys energy


def test_abl_regions_per_worker(benchmark):
    """Region granularity: the fabric is fixed, so fewer regions means
    larger ones that fit *faster* HLS variants (more unroll/duplication),
    while more regions fit more concurrently-resident functions.  For
    this 3-function mix on 4 workers, capacity wins: 1 big region per
    worker hosts the fastest variants and attracts the most HW calls."""

    def sweep():
        rows = []
        for regions in (1, 2, 3):
            r = run_engine(regions=regions)
            rows.append((regions, r.hw_calls, r.reconfigurations, r.energy_pj / 1e9))
        return rows

    rows = benchmark(sweep)
    print_table(
        "ABL-REGIONS: reconfigurable regions per worker",
        ["regions", "hw calls", "reconfigs", "energy (mJ)"],
        rows,
    )
    assert all(r[1] > 0 for r in rows)          # every config accelerates
    assert rows[0][1] >= rows[-1][1]            # big regions -> fast variants
    assert rows[0][3] <= rows[-1][3]            # ...and lower energy


def test_abl_distribution_policy(benchmark):
    """Load-awareness balances queues; affinity-only maximizes locality."""

    def run_both():
        aware = run_engine(policy=DistributionPolicy())
        affinity = run_engine(policy=DistributionPolicy(data_affinity_only=True))
        return aware, affinity

    aware, affinity = benchmark(run_both)
    print_table(
        "ABL-DIST: work distribution policy",
        ["policy", "makespan (ms)", "placement locality"],
        [
            ("load-aware", aware.makespan_ns / 1e6, aware.placement_locality),
            ("affinity-only", affinity.makespan_ns / 1e6, affinity.placement_locality),
        ],
    )
    # affinity-only maximizes locality by construction; on this balanced
    # DAG that also wins makespan -- load-awareness is insurance against
    # skew, not a free win, so we only bound the spread.
    assert affinity.placement_locality >= aware.placement_locality
    assert affinity.placement_locality == 1.0
    ratio = aware.makespan_ns / affinity.makespan_ns
    assert 0.6 < ratio < 1.6


def test_abl_virtualization_block(benchmark):
    """The Fig. 4 Virtualization block: pipelined multi-caller admission
    vs exclusive per-call locking of the accelerator."""

    module = LIBRARY.best_variant("montecarlo")

    def run(pipelined):
        sim = Simulator()
        accel = VirtualizedAccelerator(sim, module, pipelined=pipelined)

        def caller(tag):
            yield from accel.call(tag, 2048)

        for i in range(8):
            spawn(sim, caller(f"t{i}"))
        sim.run()
        return accel.throughput_items_per_us()

    def both():
        return run(True), run(False)

    pipelined, exclusive = benchmark(both)
    print_table(
        "ABL-VIRT: virtualization block admission policy",
        ["policy", "throughput (items/us)"],
        [("pipelined", pipelined), ("exclusive", exclusive)],
    )
    assert pipelined > exclusive


def test_abl_dispatch_mode(benchmark):
    """Layer-barrier vs dependence-triggered (dataflow) dispatch on a
    graph with uneven layers: dataflow overlaps independent work across
    layer boundaries."""
    from repro.apps import Task, TaskGraph
    from repro.core import ComputeNode, ComputeNodeParams
    from repro.core.runtime import ExecutionEngine

    def uneven_graph():
        tasks = []
        for layer in range(4):
            tasks.append(Task("stencil5", 60_000, layer % 4, layer % 4, layer=layer))
            for i in range(6):
                tasks.append(Task("saxpy", 512, (i + 1) % 4, (i + 1) % 4, layer=layer))
        return TaskGraph(tasks)

    def run(dataflow):
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
        engine = ExecutionEngine(node, REGISTRY, LIBRARY, use_daemon=False,
                                 allow_hardware=False)
        return engine.run_graph(uneven_graph(), dataflow=dataflow)

    def both():
        return run(False), run(True)

    barrier, dataflow = benchmark(both)
    print_table(
        "ABL-DISPATCH: layer barriers vs dataflow dispatch",
        ["driver", "makespan (ms)"],
        [("layer barrier", barrier.makespan_ns / 1e6),
         ("dataflow", dataflow.makespan_ns / 1e6)],
    )
    assert dataflow.makespan_ns < barrier.makespan_ns


def test_abl_rank_placement(benchmark):
    """Topology-aware placement of an 8x8 cartesian job on a 64-leaf tree."""

    def run():
        sim = Simulator()
        net, workers = build_tree(sim, [4, 4])  # 16 workers, 4 ranks each
        topo = CartTopology((8, 8))
        block = place_by_blocks(64, workers)
        rr = place_round_robin(64, workers)
        refined = improve_by_swaps(topo, rr, net, max_passes=2)
        return [
            ("block (hierarchy-aligned)", placement_cost(topo, block, net, 1024)),
            ("round-robin", placement_cost(topo, rr, net, 1024)),
            ("round-robin + swaps", placement_cost(topo, refined, net, 1024)),
        ]

    rows = benchmark(run)
    print_table("ABL-PLACE: rank placement cost (hop-weighted KiB)",
                ["placement", "cost"], rows)
    block, rr, refined = rows[0][1], rows[1][1], rows[2][1]
    assert block < rr
    assert refined <= rr               # refinement never hurts
