"""Shared helpers for the experiment benches."""

from __future__ import annotations

from typing import Dict, List, Sequence


def print_table(title: str, header: Sequence[str], rows: List[Sequence]) -> None:
    """Print one experiment's result table (visible with ``pytest -s``)."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
