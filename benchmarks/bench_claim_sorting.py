"""CLAIM-SORT: hybrid MPI+PGAS out-of-core sorting (Section 2, [5]).

The paper's exhibit for the hybrid model is Jose et al.'s MPI+PGAS
sample sort.  We run the real sort (validated against numpy) and price
its all-to-all exchange on the simulated machine under the three
transports; the hybrid should win, and the win should persist as the
problem scales.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.apps import sample_sort
from repro.core import ComputeNodeParams, Machine, MachineParams
from repro.interconnect import Message, TransactionType
from repro.sim import Simulator

NODES = 4
WORKERS = 4  # per node
MPI_SW_OVERHEAD_NS = 900.0
PGAS_BURST = 64


def build_machine():
    return Machine(
        Simulator(),
        MachineParams(
            num_nodes=NODES,
            node=ComputeNodeParams(num_workers=WORKERS),
            inter_node_fanouts=[NODES],
        ),
    )


def exchange_cost(machine, plan, model):
    """Price the sort's alltoallv under one transport model."""
    p = plan.partitions
    latency = 0.0
    for src in range(p):
        for dst in range(p):
            if src == dst:
                continue
            size = plan.bytes_between(src, dst)
            if size == 0:
                continue
            node_s, w_s = divmod(src, WORKERS)
            node_d, w_d = divmod(dst, WORKERS)
            intra = node_s == node_d
            if model == "pgas" or (model == "hybrid" and intra):
                if intra:
                    lat, _ = machine.nodes[node_s].transfer_cost(
                        w_s, w_d, size, TransactionType.STORE
                    )
                    lat += 2.0 * max(1, size // PGAS_BURST)
                else:
                    msg = Message(
                        machine.node_endpoints[node_s],
                        machine.node_endpoints[node_d],
                        PGAS_BURST,
                        TransactionType.MPI,
                    )
                    per_burst, _ = machine.inter_network.send_cost(msg)
                    lat = per_burst * max(1, size // PGAS_BURST)
            else:
                if intra:
                    lat, _ = machine.nodes[node_s].transfer_cost(
                        w_s, w_d, size, TransactionType.MPI
                    )
                else:
                    msg = Message(
                        machine.node_endpoints[node_s],
                        machine.node_endpoints[node_d],
                        size,
                        TransactionType.MPI,
                    )
                    lat, _ = machine.inter_network.send_cost(msg)
                lat += MPI_SW_OVERHEAD_NS
            latency += lat
    return latency


def run_sort_experiment(n):
    rng = np.random.default_rng(11)
    data = rng.normal(size=n)
    result, plan = sample_sort(data, partitions=NODES * WORKERS, seed=13)
    assert np.all(np.diff(result) >= 0)  # really sorted
    out = {}
    for model in ("pgas", "mpi", "hybrid"):
        out[model] = exchange_cost(build_machine(), plan, model)
    out["imbalance"] = plan.imbalance()
    out["exchange_mb"] = plan.total_exchange_bytes() / 1e6
    return out


def test_claim_sorting_hybrid_wins(benchmark):
    results = benchmark(run_sort_experiment, 100_000)
    print_table(
        "CLAIM-SORT: 100k-key sample sort exchange, 16 partitions / 4 nodes",
        ["transport", "exchange latency (ms)"],
        [(m, results[m] / 1e6) for m in ("pgas", "mpi", "hybrid")],
    )
    assert results["hybrid"] < results["mpi"]
    assert results["hybrid"] < results["pgas"]
    assert results["imbalance"] < 2.0  # sampling balanced the buckets


def test_claim_sorting_win_scales(benchmark):
    def sweep():
        rows = []
        for n in (20_000, 100_000, 500_000):
            r = run_sort_experiment(n)
            rows.append((n, r["mpi"] / r["hybrid"], r["pgas"] / r["hybrid"]))
        return rows

    rows = benchmark(sweep)
    print_table(
        "CLAIM-SORT: hybrid advantage vs problem size",
        ["keys", "mpi/hybrid", "pgas/hybrid"],
        rows,
    )
    # hybrid always beats pure MPI (intra-node software overhead), and is
    # never far from the best transport even at tiny sizes, where pure
    # PGAS is briefly competitive (few bursts per pair); at scale the
    # fine-grained cross-node PGAS cost explodes.
    for _, mpi_ratio, pgas_ratio in rows:
        assert mpi_ratio > 1.0
        assert pgas_ratio > 0.85
    assert rows[-1][2] > 3.0  # pure PGAS collapses at 500k keys
