"""FIG3: the UNILOGIC+UNIMEM architecture (paper Fig. 3, Section 4.1).

Three claims are characterized:

1. UNIMEM needs **no global coherence traffic**: as Workers scale, a
   snoop-broadcast protocol's message count explodes while UNIMEM's
   stays zero (it is point-to-point by construction).
2. PGAS **load/store beats DMA for small transfers**: "architectures
   [that] support only DMA operations ... are not efficient for small
   data transfers such as messages to synchronize remote threads".
3. Worker scaling: the multi-layer interconnect keeps sibling traffic
   off the upper levels.
"""

import pytest

from conftest import print_table
from repro.core import ComputeNode, ComputeNodeParams
from repro.interconnect import DmaEngine, Message, TransactionType
from repro.memory import AddressRange
from repro.sim import Simulator, spawn


def unimem_vs_snoop(num_workers, writes=200):
    """Messages a snoopy protocol would broadcast vs UNIMEM's none."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=num_workers))
    for i in range(writes):
        writer = i % num_workers
        node.unimem.plan_access(
            writer, AddressRange(writer * node.params.dram_window, 64), True
        )
    snoop_messages = writes * (num_workers - 1)  # invalidate broadcast
    return {
        "workers": num_workers,
        "unimem_coherence_msgs": node.unimem.traffic_summary()["coherence_messages"],
        "snoop_broadcast_msgs": snoop_messages,
    }


def test_fig3_no_global_coherence(benchmark):
    rows = benchmark(lambda: [unimem_vs_snoop(n) for n in (2, 4, 8, 16, 32)])
    print_table(
        "FIG3: coherence traffic, UNIMEM vs snoop broadcast (200 writes)",
        ["workers", "UNIMEM msgs", "snoop msgs"],
        [(r["workers"], r["unimem_coherence_msgs"], r["snoop_broadcast_msgs"]) for r in rows],
    )
    for r in rows:
        assert r["unimem_coherence_msgs"] == 0
    snoops = [r["snoop_broadcast_msgs"] for r in rows]
    assert snoops == sorted(snoops) and snoops[-1] > 10 * snoops[0]


def loadstore_vs_dma(size_bytes):
    """Latency of one remote transfer both ways (analytic)."""
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
    # load/store path: pipelined 64-byte bursts with a LOAD header each --
    # one end-to-end propagation plus per-burst link serialization.
    bursts = max(1, (size_bytes + 63) // 64)
    links = node.network.route(node.endpoints[0], node.endpoints[1]).links
    per_hop = sum(l.params.latency_ns for l in links)
    ls_latency = per_hop + bursts * (64 + 16) / links[0].params.bandwidth_gbps * len(links)
    # DMA path: the real descriptor-based engine model
    dma = DmaEngine(sim, node.network)
    dma_lat = dma.cost_ns(node.endpoints[0], node.endpoints[1], size_bytes)
    return ls_latency, dma_lat


def test_fig3_loadstore_beats_dma_for_small_transfers(benchmark):
    sizes = [8, 64, 256, 1024, 4096, 65536]
    rows = benchmark(lambda: [(s, *loadstore_vs_dma(s)) for s in sizes])
    print_table(
        "FIG3: remote transfer latency, load/store vs DMA",
        ["bytes", "load/store (ns)", "DMA (ns)"],
        rows,
    )
    small = rows[0]
    big = rows[-1]
    assert small[1] < small[2]   # 8B sync message: loads/stores win
    assert big[2] < big[1]       # 64KiB bulk: DMA wins
    # a crossover exists in between
    winners = ["ls" if ls < dma else "dma" for _, ls, dma in rows]
    assert "ls" in winners and "dma" in winners


def test_fig3_sync_primitives_need_loadstore(benchmark):
    """The paper's sharpest DMA criticism: thread synchronization.  One
    remote atomic via SYNC transactions vs the same signal pushed through
    a DMA engine."""
    from repro.core.sync import AtomicCell

    def run():
        sim = Simulator()
        node = ComputeNode(sim, ComputeNodeParams(num_workers=4))
        cell = AtomicCell(node, home_worker=0)
        t0 = sim.now
        out = {}

        def proc():
            yield from cell.fetch_add(3, 1)
            out["atomic_ns"] = sim.now - t0

        spawn(sim, proc())
        sim.run()
        dma = DmaEngine(sim, node.network)
        out["dma_ns"] = dma.cost_ns(node.endpoints[3], node.endpoints[0], 16)
        return out

    out = benchmark(run)
    print_table(
        "FIG3: one remote synchronization operation",
        ["mechanism", "latency (ns)"],
        [("UNIMEM atomic (SYNC load/store)", out["atomic_ns"]),
         ("DMA-engine write", out["dma_ns"])],
    )
    assert out["atomic_ns"] < out["dma_ns"] / 3  # an order-of-magnitude class gap


def test_fig3_multilayer_keeps_local_traffic_low(benchmark):
    """Sibling transfers never touch upper interconnect layers."""

    def run():
        sim = Simulator()
        node = ComputeNode(
            sim, ComputeNodeParams(num_workers=8, intra_fanout=4)
        )
        done = {}

        def flow():
            yield from node.transfer(0, 1, 4096)   # same L0 switch
            done["sibling"] = sim.now
            t = sim.now
            yield from node.transfer(0, 7, 4096)   # across the root
            done["cross"] = sim.now - t

        spawn(sim, flow())
        sim.run()
        return done

    done = benchmark(run)
    print_table(
        "FIG3: intra-node transfer latency by distance",
        ["path", "latency (ns)"],
        [("sibling (L0)", done["sibling"]), ("cross-root (L1)", done["cross"])],
    )
    assert done["sibling"] < done["cross"]
