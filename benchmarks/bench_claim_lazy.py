"""CLAIM-LAZY: lazy remote-status inference (Section 4.2 / [9]).

"To curb the overhead of monitoring remote status, we will implement
local work queues per worker and infer (approximately) the status of
remote workers via the status of the local queue, using techniques
inspired by Lazy Scheduling."

Shape: status-message traffic collapses by orders of magnitude in lazy
mode while placement quality (end-to-end makespan) stays comparable.
"""

import pytest

from conftest import print_table
from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import ExecutionEngine
from repro.hls import saxpy_kernel, stencil_kernel
from repro.sim import Simulator

FUNCTIONS = ("saxpy", "stencil5")


def run_mode(lazy, refresh_ns=20_000.0, seed=21):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=8))
    registry = FunctionRegistry()
    registry.register(saxpy_kernel(1024))
    registry.register(stencil_kernel(1024))
    engine = ExecutionEngine(
        node,
        registry,
        use_daemon=False,
        allow_hardware=False,
        lazy_status=lazy,
        status_refresh_ns=refresh_ns,
    )
    graph = make_layered_dag(
        layers=10, width=24, num_workers=8, functions=FUNCTIONS, seed=seed,
        locality=0.5,
    )
    report = engine.run_graph(graph)
    return report


def test_claim_lazy_cuts_monitoring_traffic(benchmark):
    results = benchmark(lambda: {m: run_mode(m == "lazy") for m in ("eager", "lazy")})
    rows = [
        (m, r.status_messages, r.makespan_ns / 1e6, r.placement_locality)
        for m, r in results.items()
    ]
    print_table(
        "CLAIM-LAZY: status monitoring, eager polling vs lazy inference",
        ["mode", "status msgs", "makespan (ms)", "placement locality"],
        rows,
    )
    eager, lazy = results["eager"], results["lazy"]
    assert lazy.status_messages < 0.25 * eager.status_messages
    # ...without hurting the schedule materially (stale beliefs cost a
    # little placement quality, nowhere near the monitoring saving)
    assert lazy.makespan_ns < 1.4 * eager.makespan_ns


def test_claim_lazy_refresh_interval_tradeoff(benchmark):
    def sweep():
        rows = []
        for refresh in (1_000.0, 10_000.0, 100_000.0, 1_000_000.0):
            r = run_mode(True, refresh_ns=refresh)
            rows.append((refresh, r.status_messages, r.makespan_ns / 1e6))
        return rows

    rows = benchmark(sweep)
    print_table(
        "CLAIM-LAZY: refresh interval sweep",
        ["refresh (ns)", "status msgs", "makespan (ms)"],
        rows,
    )
    msgs = [m for _, m, _ in rows]
    assert msgs == sorted(msgs, reverse=True)  # longer interval, less traffic
