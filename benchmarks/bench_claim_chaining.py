"""CLAIM-CHAIN: accelerator chaining (Section 4.3).

"chaining together different accelerator modules for building longer
complex processing pipelines ... will substantially increase the amount
of processing that is carried out per unit of transferred data and will
consequently result in substantial energy savings."

Shape: DRAM traffic is flat in chain length when chained vs linear when
unchained; the energy saving grows with chain length.
"""

import pytest

from conftest import print_table
from repro.core import Worker
from repro.core.middleware import AcceleratorChain
from repro.fabric import ModuleLibrary
from repro.hls import HlsTool, SynthesisConstraints, saxpy_kernel
from repro.sim import Simulator

ITEMS = 8192
BYTES_PER_ITEM = 8


def _module():
    library = ModuleLibrary()
    HlsTool().compile(saxpy_kernel(ITEMS), library, SynthesisConstraints(max_variants=1))
    return library.best_variant("saxpy")


MODULE = _module()


def chain_sweep(lengths):
    worker = Worker(Simulator(), 0)
    rows = []
    for n in lengths:
        chain = AcceleratorChain(worker, [MODULE] * n)
        chained = chain.cost_chained(ITEMS, BYTES_PER_ITEM)
        unchained = chain.cost_unchained(ITEMS, BYTES_PER_ITEM)
        rows.append(
            {
                "stages": n,
                "chained_dram": chained.dram_bytes,
                "unchained_dram": unchained.dram_bytes,
                "chained_energy": chained.energy_pj,
                "unchained_energy": unchained.energy_pj,
                "saving": 1.0 - chained.energy_pj / unchained.energy_pj,
            }
        )
    return rows


def test_claim_chaining_traffic_and_energy(benchmark):
    rows = benchmark(chain_sweep, [1, 2, 3, 4, 6, 8])
    print_table(
        "CLAIM-CHAIN: pipeline composition vs DRAM round-trips",
        ["stages", "chained DRAM (B)", "unchained DRAM (B)", "energy saving"],
        [
            (r["stages"], r["chained_dram"], r["unchained_dram"],
             f"{r['saving']:.0%}")
            for r in rows
        ],
    )
    # chained DRAM traffic is constant; unchained grows linearly
    assert len({r["chained_dram"] for r in rows}) == 1
    unchained = [r["unchained_dram"] for r in rows]
    assert unchained[-1] == rows[-1]["stages"] * unchained[0]
    # the saving grows with chain length and is substantial
    savings = [r["saving"] for r in rows]
    assert savings == sorted(savings)
    assert savings[-1] > 0.3


def test_claim_chaining_processing_per_byte(benchmark):
    rows = benchmark(chain_sweep, [1, 4, 8])
    ppb = [
        r["stages"] / r["chained_dram"] * 1e6 for r in rows
    ]  # stages per MB moved
    print_table(
        "CLAIM-CHAIN: processing per byte of DRAM traffic",
        ["stages", "stage-passes per MB"],
        list(zip((r["stages"] for r in rows), ppb)),
    )
    assert ppb == sorted(ppb)
    assert ppb[-1] / ppb[0] == pytest.approx(8.0)
