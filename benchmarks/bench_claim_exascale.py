"""CLAIM-GW: the Section 1 power extrapolation.

"Extrapolating from the top HPC systems, such as China's Tianhe-2
Supercomputer, we estimate that sustaining exaflop performance requires
an enormous 1 GW power.  Similar, albeit smaller, figures are obtained by
extrapolating even the best system of the Green 500 list."
"""

import pytest

from conftest import print_table
from repro.energy import (
    GREEN500_2015_LEADER,
    TIANHE2,
    efficiency_required_for,
    extrapolate_power_mw,
)
from repro.energy.exascale import EXAFLOP, speedup_needed


def run_extrapolation():
    rows = []
    for ref in (TIANHE2, GREEN500_2015_LEADER):
        rows.append(
            (
                ref.name,
                ref.gflops_per_watt,
                speedup_needed(ref),
                extrapolate_power_mw(ref),
            )
        )
    return rows


def test_claim_exascale_power_wall(benchmark):
    rows = benchmark(run_extrapolation)
    print_table(
        "CLAIM-GW: exaflop power extrapolation",
        ["reference", "GFLOPS/W", "scale-up", "exaflop power (MW)"],
        rows,
    )
    tianhe_mw = rows[0][3]
    green_mw = rows[1][3]
    assert 700 <= tianhe_mw <= 1300          # "an enormous 1 GW"
    assert green_mw < tianhe_mw              # "similar, albeit smaller"
    assert green_mw > 100                    # still wildly infeasible


def test_claim_exascale_efficiency_gap(benchmark):
    required = benchmark(efficiency_required_for, EXAFLOP, 20.0)
    print_table(
        "CLAIM-GW: efficiency needed for a 20 MW exaflop",
        ["metric", "GFLOPS/W"],
        [
            ("required", required),
            ("Tianhe-2 delivered", TIANHE2.gflops_per_watt),
            ("Green500 2015 best", GREEN500_2015_LEADER.gflops_per_watt),
        ],
    )
    # the gap motivating reconfigurable acceleration: >5x beyond the most
    # efficient machine of the paper's era
    assert required / GREEN500_2015_LEADER.gflops_per_watt > 5
