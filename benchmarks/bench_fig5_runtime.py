"""FIG5: runtime control flow (paper Fig. 5, Section 4.2).

The interaction the figure draws -- Execution Engine consults Execution
History, the daemon reconfigures, the scheduler dispatches SW/HW -- is
run whole and compared against two bounds:

- **static-sw**: no daemon, no hardware (the floor),
- **oracle**: every function pre-loaded before the run and dispatch by
  exact per-call latency compare (the ceiling for this policy class).

Shape: static >= adaptive(daemon) >= oracle in energy; the adaptive run
approaches the oracle as the history warms up.
"""

import pytest

from conftest import print_table
from repro.apps import make_layered_dag
from repro.core import ComputeNode, ComputeNodeParams, FunctionRegistry
from repro.core.runtime import ExecutionEngine
from repro.fabric import ModuleLibrary
from repro.hls import (
    HlsTool,
    SynthesisConstraints,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
)
from repro.sim import Simulator, spawn

KERNELS = (saxpy_kernel(1024), stencil_kernel(1024), montecarlo_kernel(1024, 8))
FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


def _build(workers=4):
    sim = Simulator()
    node = ComputeNode(sim, ComputeNodeParams(num_workers=workers))
    registry = FunctionRegistry()
    library = ModuleLibrary()
    tool = HlsTool()
    for k in KERNELS:
        registry.register(k)
        tool.compile(k, library, SynthesisConstraints(max_variants=2))
    return sim, node, registry, library


def run_policy(policy, seed=13):
    sim, node, registry, library = _build()
    engine = ExecutionEngine(
        node,
        registry,
        library,
        use_daemon=(policy == "adaptive"),
        daemon_period_ns=100_000.0,
        allow_hardware=(policy != "static-sw"),
    )
    if policy == "oracle":
        # pre-load every function before the run begins
        def preload():
            for i, function in enumerate(FUNCTIONS):
                worker = node.worker(i % len(node))
                capacity = worker.fabric.regions[0].capacity
                module = library.best_variant(function, capacity=capacity)
                yield from worker.load_module(module)

        spawn(sim, preload())
        sim.run()
        node.ledger.reset()  # don't bill the oracle for free pre-loading
    graph = make_layered_dag(
        layers=8, width=12, num_workers=len(node), functions=FUNCTIONS, seed=seed
    )
    return engine.run_graph(graph)


def test_fig5_daemon_between_floor_and_oracle(benchmark):
    results = benchmark(
        lambda: {p: run_policy(p) for p in ("static-sw", "adaptive", "oracle")}
    )
    rows = [
        (p, r.makespan_ns / 1e6, r.energy_pj / 1e9, r.hw_calls, r.reconfigurations)
        for p, r in results.items()
    ]
    print_table(
        "FIG5: runtime policy comparison (96-task DAG)",
        ["policy", "makespan (ms)", "energy (mJ)", "hw calls", "reconfigs"],
        rows,
    )
    static, adaptive, oracle = (
        results["static-sw"], results["adaptive"], results["oracle"]
    )
    assert adaptive.energy_pj < static.energy_pj
    assert oracle.energy_pj <= adaptive.energy_pj * 1.05
    assert adaptive.hw_calls > 0 and static.hw_calls == 0
    assert oracle.hw_fraction >= adaptive.hw_fraction


def test_fig5_history_grows_and_drives_loads(benchmark):
    def run():
        sim, node, registry, library = _build()
        engine = ExecutionEngine(
            node, registry, library, use_daemon=True, daemon_period_ns=100_000.0
        )
        graph = make_layered_dag(
            layers=6, width=10, num_workers=len(node), functions=FUNCTIONS, seed=3
        )
        report = engine.run_graph(graph)
        return engine, report

    engine, report = benchmark(run)
    assert len(engine.history) == report.tasks
    # the daemon's decisions came from the history
    assert engine.daemon.stats.evaluations > 0
    assert engine.daemon.stats.loads_triggered == report.reconfigurations
    hot = engine.history.call_counts()
    assert set(engine.daemon.stats.functions_loaded) <= set(hot)
