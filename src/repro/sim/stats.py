"""Statistics collection for simulation runs.

These helpers are deliberately simulation-aware: time-weighted statistics
use the simulator clock so that e.g. "mean queue depth" integrates over
simulated time rather than over samples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim.engine import Simulator


class Counter:
    """A named monotonically-accumulating counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount
        self.events += 1

    def set(self, value: float) -> None:
        """Overwrite the accumulated value (collectors mirroring a
        component's own monotonic counter into the registry)."""
        self.value = value
        self.events += 1

    def reset(self) -> None:
        self.value = 0.0
        self.events = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Monitor:
    """Collects samples and reports summary statistics.

    Mean/variance use Welford's online algorithm: the naive
    sum-of-squares form loses all precision when values are large with
    a small spread (e.g. timestamps in ns), because ``sumsq/n`` and
    ``mean**2`` agree in their leading digits and the subtraction
    cancels catastrophically.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        self._n += 1
        self._sum += value
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        if self._n < 2:
            return 0.0
        return max(0.0, self._m2 / self._n)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._n else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self._n),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "total": self._sum,
        }


class TimeWeighted:
    """A piecewise-constant signal integrated over simulated time.

    Used for queue depths, number of busy accelerators, instantaneous
    power, etc.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value = initial
        self._last_time = sim.now
        self._area = 0.0
        self._t0 = sim.now
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (self.sim.now - self._last_time)
        return area / elapsed

    @property
    def maximum(self) -> float:
        return self._max


class Histogram:
    """A fixed-bin histogram for latency / size distributions."""

    def __init__(self, bin_edges: List[float], name: str = "") -> None:
        if sorted(bin_edges) != list(bin_edges) or len(bin_edges) < 2:
            raise ValueError("bin_edges must be a sorted list of >= 2 edges")
        self.name = name
        self.edges = list(bin_edges)
        self.counts = [0] * (len(bin_edges) - 1)
        self.underflow = 0
        self.overflow = 0
        self._monitor = Monitor(name)

    def record(self, value: float) -> None:
        self._monitor.record(value)
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value >= self.edges[-1]:
            self.overflow += 1
            return
        # binary search
        lo, hi = 0, len(self.edges) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if value < self.edges[mid]:
                hi = mid
            else:
                lo = mid
        self.counts[lo] += 1

    @property
    def count(self) -> int:
        return self._monitor.count

    @property
    def mean(self) -> float:
        return self._monitor.mean

    def percentile(self, p: float) -> float:
        """Approximate percentile from bin midpoints (p in [0, 100])."""
        # Lazy import: repro.telemetry's package init pulls in the hub,
        # which imports this module -- a module-level import here would
        # see a partially-initialised package during that cycle.
        from repro.telemetry.quantiles import histogram_percentile

        return histogram_percentile(
            self.edges, self.counts, self.underflow, self.overflow, p
        )


class StatRegistry:
    """A namespace of named statistics shared by a simulated machine."""

    #: default bin edges for latency-style histograms (ns, log-spaced)
    DEFAULT_EDGES = [0.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7]

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.monitors: Dict[str, Monitor] = {}
        self.gauges: Dict[str, TimeWeighted] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def monitor(self, name: str) -> Monitor:
        if name not in self.monitors:
            self.monitors[name] = Monitor(name)
        return self.monitors[name]

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeighted:
        if name not in self.gauges:
            self.gauges[name] = TimeWeighted(self.sim, initial, name)
        return self.gauges[name]

    def histogram(self, name: str, bin_edges: Optional[List[float]] = None) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(
                list(bin_edges) if bin_edges is not None else list(self.DEFAULT_EDGES),
                name,
            )
        return self.histograms[name]

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"counter.{name}"] = c.value
        for name, m in self.monitors.items():
            out[f"monitor.{name}.mean"] = m.mean
            out[f"monitor.{name}.count"] = float(m.count)
        for name, g in self.gauges.items():
            out[f"gauge.{name}.avg"] = g.time_average()
            out[f"gauge.{name}.max"] = g.maximum
            out[f"gauge.{name}.last"] = g.value
        for name, h in self.histograms.items():
            out[f"histogram.{name}.count"] = float(h.count)
            out[f"histogram.{name}.mean"] = h.mean
            out[f"histogram.{name}.p50"] = h.percentile(50)
            out[f"histogram.{name}.p95"] = h.percentile(95)
            out[f"histogram.{name}.p99"] = h.percentile(99)
        return out
