"""Contention points: resources with finite capacity and object stores.

These model the shared hardware of ECOSCALE -- interconnect ports, the
FPGA configuration port, DRAM channels, accelerator slots -- anywhere
requests queue up.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import Signal, Timeout, Waitable


class Request(Signal):
    """A pending acquisition of a :class:`Resource` slot.

    ``yield``-able; fires when the slot is granted.  Must be released via
    :meth:`Resource.release` (or use the ``using`` helper pattern in
    process code).
    """

    def __init__(self, sim: Simulator, resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A FIFO resource with ``capacity`` identical slots.

    >>> # inside a process:
    >>> # req = bus.request()
    >>> # yield req
    >>> # ... use the bus for some Timeout ...
    >>> # bus.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # statistics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of (slot x time) busy since construction."""
        now = self.sim.now if horizon is None else horizon
        busy = self._busy_time + self._in_use * (now - self._last_change)
        if now <= 0:
            return 0.0
        return busy / (now * self.capacity)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    # ------------------------------------------------------------------
    def request(self) -> Request:
        self.total_requests += 1
        req = Request(self.sim, self)
        req._t_request = self.sim.now  # type: ignore[attr-defined]
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            req.succeed(self)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        if req.resource is not self:
            raise SimulationError("releasing a request of a different resource")
        self._account()
        if self._waiting:
            nxt = self._waiting.popleft()
            self.total_wait_time += self.sim.now - nxt._t_request  # type: ignore[attr-defined]
            nxt.succeed(self)
            # slot moves straight from req to nxt: _in_use unchanged
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise SimulationError(f"resource {self.name!r} over-released")

    def use(self, hold: float):
        """Process helper: acquire, hold for ``hold`` time, release.

        Usage inside a process::

            yield from bus.use(cycles)
        """
        req = self.request()
        yield req
        try:
            yield Timeout(hold)
        finally:
            self.release(req)

    def use_batch(self, holds):
        """Process helper: one acquire/hold/release cycle per entry of
        ``holds``, resuming the caller once every slot has been released.

        Semantically equivalent to spawning one ``use(holds[i])`` process
        per entry and joining them, but far cheaper: requests are issued
        up front in FIFO order (so grant order under contention matches
        the spawn order of the process-per-chunk version), each grant
        directly schedules its own release, and a single completion
        signal wakes the caller -- ~2 events per chunk instead of ~5.

        Usage inside a process::

            yield from cpu.use_batch([t0, t1, t2])
        """
        holds = [h for h in holds]
        if not holds:
            return
        sim = self.sim
        schedule = sim.schedule
        done = Signal(sim)
        remaining = len(holds)

        def _finish_one(req: Request) -> None:
            nonlocal remaining
            self.release(req)
            remaining -= 1
            if remaining == 0:
                done.succeed(None)

        for hold in holds:
            req = self.request()
            if req.triggered:
                # granted immediately: go straight to the timed release
                schedule(hold, _finish_one, req)
            else:
                req._subscribe(
                    sim,
                    lambda _v, req=req, hold=hold: schedule(hold, _finish_one, req),
                )
        yield done


class PriorityRequest(Request):
    def __init__(self, sim: Simulator, resource: "PriorityResource", priority: int, seq: int) -> None:
        super().__init__(sim, resource)
        self.priority = priority
        self.seq = seq

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by (priority, FIFO).

    Lower ``priority`` values are served first -- matching interconnect
    QoS semantics where latency-critical traffic (e.g. synchronization
    messages) overtakes bulk DMA.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        super().__init__(sim, capacity, name)
        self._pwaiting: List[PriorityRequest] = []
        self._pseq = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        self.total_requests += 1
        req = PriorityRequest(self.sim, self, priority, self._pseq)
        self._pseq += 1
        req._t_request = self.sim.now  # type: ignore[attr-defined]
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            req.succeed(self)
        else:
            heapq.heappush(self._pwaiting, req)
        return req

    def release(self, req: Request) -> None:  # type: ignore[override]
        if req.resource is not self:
            raise SimulationError("releasing a request of a different resource")
        self._account()
        if self._pwaiting:
            nxt = heapq.heappop(self._pwaiting)
            self.total_wait_time += self.sim.now - nxt._t_request  # type: ignore[attr-defined]
            nxt.succeed(self)
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise SimulationError(f"resource {self.name!r} over-released")

    @property
    def queue_length(self) -> int:  # type: ignore[override]
        return len(self._pwaiting)

    def use(self, hold: float, priority: int = 0):
        req = self.request(priority)
        yield req
        try:
            yield Timeout(hold)
        finally:
            self.release(req)


class Store:
    """An unbounded-or-bounded FIFO of Python objects between processes.

    ``put`` and ``get`` return :class:`Signal`-like waitables; a ``get`` on
    an empty store blocks the consumer until a producer puts.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[Tuple[Signal, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Signal:
        sig = Signal(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            sig.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            sig.succeed(None)
        else:
            self._putters.append((sig, item))
        return sig

    def drain(self) -> List[Any]:
        """Remove and return every queued item (recovery path: reclaiming
        a dead consumer's backlog).  Blocked putters are admitted into
        the freed space; blocked getters stay blocked."""
        items = list(self._items)
        self._items.clear()
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            psig, pitem = self._putters.popleft()
            self._items.append(pitem)
            psig.succeed(None)
        return items

    def get(self) -> Signal:
        sig = Signal(self.sim)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                psig, pitem = self._putters.popleft()
                self._items.append(pitem)
                psig.succeed(None)
            sig.succeed(item)
        elif self._putters:
            psig, pitem = self._putters.popleft()
            psig.succeed(None)
            sig.succeed(pitem)
        else:
            self._getters.append(sig)
        return sig
