"""The discrete-event simulation core: clock, event queue, event loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled before they fire.
    Ordering at equal timestamps is by (priority, insertion sequence), which
    makes every simulation exactly reproducible.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        # Optional telemetry hub (repro.telemetry).  Left as a plain
        # attribute so the kernel stays dependency-free; when None the
        # only per-event cost is one identity check in step().
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Return the timestamp of the next pending event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            if self.telemetry is not None:
                self.telemetry.sim_event_fired(event)
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, matching the usual
        "simulate this horizon" semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"
