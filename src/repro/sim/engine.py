"""The discrete-event simulation core: clock, event queue, event loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compact the heap when at least this many cancelled entries are queued
#: *and* they outnumber the live entries.  Cancelled events otherwise sit
#: in the heap until they surface, costing log-time on every push.
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled before they fire.
    Ordering at equal timestamps is by (priority, insertion sequence), which
    makes every simulation exactly reproducible.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "_key", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # precomputed sort key: heap sift compares are the hottest
        # comparisons in the kernel, a tuple compare beats attribute walks
        self._key = (time, priority, seq)
        # owning simulator, so cancel() can keep the live-event counter
        # exact; None for detached events (tests constructing raw Events)
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        # number of cancelled events still sitting in the heap; keeping it
        # exact makes ``pending`` O(1) and tells us when to compact
        self._cancelled_in_queue: int = 0
        # Optional telemetry hub (repro.telemetry).  Left as a plain
        # attribute so the kernel stays dependency-free; when None the
        # only per-event cost is one identity check in the event loop.
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        event = Event(time, priority, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # cancellation bookkeeping (called by Event.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self, event: Event) -> None:
        # An event detached from the heap (already fired/popped) marks
        # itself by clearing ``_sim``, so everything reaching here is
        # still queued.
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (event order is total)."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def _pop_next(self) -> Optional[Event]:
        """Pop the next live event (discarding cancelled ones), or None."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            event = pop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event._sim = None  # detached: a late cancel() must not count
            return event
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Return the timestamp of the next pending event, or ``None``."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
        if not queue:
            return None
        return queue[0].time

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self.now = event.time
        self._processed += 1
        if self.telemetry is not None:
            self.telemetry.sim_event_fired(event)
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, matching the usual
        "simulate this horizon" semantics.

        The loop looks at the heap head exactly once per event: the old
        ``peek()``-then-``step()`` shape popped cancelled entries in
        ``peek`` and re-scanned in ``step``, doubling heap traffic.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        # hot loop: bind everything reached per event to locals
        queue = self._queue
        pop = heapq.heappop
        try:
            while True:
                if queue is not self._queue:  # compaction swapped the list
                    queue = self._queue
                if not queue:
                    break
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                pop(queue)
                event._sim = None
                self.now = event.time
                self._processed += 1
                telemetry = self.telemetry
                if telemetry is not None:
                    telemetry.sim_event_fired(event)
                event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until

    def run_window(self, horizon: float) -> int:
        """Fire every event with ``time < horizon``; return how many fired.

        The sharded engine's conservative-synchronization primitive: a
        partition advances its node simulators window by window, and the
        window end must be *exclusive* so a cross-partition message
        delivered exactly at ``horizon`` interleaves with local events at
        the same timestamp by the normal (time, priority, seq) order --
        it is scheduled before any local event at ``horizon`` exists.
        Unlike ``run(until=...)`` the clock is left at the last processed
        event (events may still legally be scheduled inside [now,
        horizon)), which matches the monolithic engine's clock trajectory
        exactly.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while True:
                if queue is not self._queue:  # compaction swapped the list
                    queue = self._queue
                if not queue:
                    break
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if event.time >= horizon:
                    break
                pop(queue)
                event._sim = None
                self.now = event.time
                self._processed += 1
                telemetry = self.telemetry
                if telemetry is not None:
                    telemetry.sim_event_fired(event)
                event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        return fired

    def warp_to(self, time: float) -> None:
        """Jump an *idle* simulator's clock forward (checkpoint restore).

        A restored run resumes at the snapshot's simulated time, so the
        replayed timeline lines up with the original one.  Only legal
        before anything is scheduled: pending events would otherwise
        fire "in the past" relative to the warped clock.
        """
        if self._running:
            raise SimulationError("cannot warp a running simulator")
        if time < self.now:
            raise SimulationError(
                f"cannot warp backwards (t={time} < now={self.now})"
            )
        if self.peek() is not None:
            raise SimulationError("cannot warp with events pending")
        self.now = time

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events.  O(1): the
        kernel keeps a live count instead of scanning the whole heap."""
        return len(self._queue) - self._cancelled_in_queue

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"
