"""Execution tracing: spans, counters, and a text timeline.

Production simulators need to answer "what was every component doing
when?".  :class:`Tracer` records named spans (begin/end on simulated
time) grouped by lane (one lane per Worker, accelerator, link, ...);
:func:`render_timeline` prints an ASCII Gantt chart, and the trace can
be exported in the Chrome ``chrome://tracing`` JSON format for real
tooling.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Simulator


@dataclass
class Span:
    """One traced activity interval."""

    lane: str
    name: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start


class Tracer:
    """Collects spans against one simulator's clock."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self._open: Dict[Tuple[str, str], Span] = {}

    # ------------------------------------------------------------------
    def begin(self, lane: str, name: str) -> Span:
        key = (lane, name)
        if key in self._open:
            raise ValueError(f"span {name!r} already open on lane {lane!r}")
        span = Span(lane=lane, name=name, start=self.sim.now)
        self._open[key] = span
        self.spans.append(span)
        return span

    def end(self, lane: str, name: str) -> Span:
        key = (lane, name)
        span = self._open.pop(key, None)
        if span is None:
            raise ValueError(f"no open span {name!r} on lane {lane!r}")
        span.end = self.sim.now
        return span

    @contextmanager
    def span(self, lane: str, name: str) -> Iterator[Span]:
        """Context-manager tracing for plain (non-process) code."""
        span = self.begin(lane, name)
        try:
            yield span
        finally:
            self.end(lane, name)

    def instant(self, lane: str, name: str) -> Span:
        """A zero-duration marker."""
        span = Span(lane=lane, name=name, start=self.sim.now, end=self.sim.now)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def lanes(self) -> List[str]:
        seen: List[str] = []
        for s in self.spans:
            if s.lane not in seen:
                seen.append(s.lane)
        return seen

    def closed_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def busy_time(self, lane: str) -> float:
        return sum(s.duration or 0.0 for s in self.closed_spans() if s.lane == lane)

    def utilization(self, lane: str, horizon: Optional[float] = None) -> float:
        """Busy fraction of ``lane`` over ``horizon`` time units.

        ``horizon`` must be the observation window the caller means
        (e.g. a run's makespan); ``None`` explicitly selects the full
        simulated time so far (``sim.now``).
        """
        if horizon is None:
            horizon = self.sim.now
        if horizon <= 0:
            return 0.0
        return self.busy_time(lane) / horizon

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome tracing JSON (load in chrome://tracing or Perfetto)."""
        events = []
        for s in self.closed_spans():
            events.append(
                {
                    "name": s.name,
                    "cat": "sim",
                    "ph": "X",
                    "ts": s.start / 1000.0,   # chrome wants microseconds
                    "dur": (s.duration or 0.0) / 1000.0,
                    "pid": 0,
                    "tid": s.lane,
                }
            )
        return json.dumps({"traceEvents": events})


def render_timeline(tracer: Tracer, width: int = 72) -> str:
    """An ASCII Gantt chart of all closed spans."""
    spans = tracer.closed_spans()
    if not spans:
        return "(no closed spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans if s.end is not None)
    horizon = max(t1 - t0, 1e-9)
    lane_width = max(len(l) for l in tracer.lanes())
    lines = [
        f"{'lane'.ljust(lane_width)} | timeline ({t0:.0f} .. {t1:.0f} ns)"
    ]
    for lane in tracer.lanes():
        row = [" "] * width
        for s in spans:
            if s.lane != lane:
                continue
            a = int((s.start - t0) / horizon * (width - 1))
            b = int(((s.end or s.start) - t0) / horizon * (width - 1))
            for i in range(a, max(a, b) + 1):
                row[i] = "#" if row[i] == " " else "%"  # % marks overlap
        lines.append(f"{lane.ljust(lane_width)} | {''.join(row)}")
    return "\n".join(lines)
