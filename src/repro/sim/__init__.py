"""Deterministic discrete-event simulation kernel.

Every ECOSCALE hardware model (Workers, interconnects, fabrics, memories)
runs on this kernel.  It provides:

- :class:`Simulator` -- the event loop with a simulated clock,
- :class:`Process` -- generator-based coroutines describing hardware or
  software behaviour over simulated time,
- :class:`Signal` -- one-shot completion events processes can wait on,
- :class:`Resource` / :class:`Store` -- contention points (ports, buses,
  configuration controllers),
- :class:`Monitor` and friends -- statistics collection.

The kernel is deterministic: events at equal timestamps fire in
(priority, insertion-order) order, so simulations are exactly repeatable.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    Timeout,
    spawn,
)
from repro.sim.resources import PriorityResource, Request, Resource, Store
from repro.sim.stats import (
    Counter,
    Histogram,
    Monitor,
    StatRegistry,
    TimeWeighted,
)

# The tracer lives in repro.telemetry.tracing (one span type, one export
# path); re-exported here for compatibility and because lane tracing is
# conceptually part of the kernel's observability surface.  The module
# is stdlib-only, so this import cannot cycle back into repro.sim.
from repro.telemetry.tracing import Span, Tracer, render_timeline

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Histogram",
    "Interrupt",
    "Monitor",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "Signal",
    "Span",
    "SimulationError",
    "Simulator",
    "StatRegistry",
    "Store",
    "TimeWeighted",
    "Timeout",
    "Tracer",
    "render_timeline",
    "spawn",
]
