"""Generator-based processes on top of the event loop.

A process is a Python generator that yields *waitables*:

- :class:`Timeout` -- advance simulated time,
- :class:`Signal` -- a one-shot event another process triggers,
- another :class:`Process` -- wait for its completion (its return value is
  delivered as the value of the ``yield``),
- :class:`AllOf` / :class:`AnyOf` -- composite waits.

Example::

    def producer(sim, sig):
        yield Timeout(10)
        sig.succeed("payload")

    def consumer(sim, sig):
        value = yield sig
        return value

    sim = Simulator()
    sig = Signal(sim)
    sim.process(producer(sim, sig))   # via the helper in this module
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.engine import SimulationError, Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Base class for things a process may ``yield``."""

    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Wait ``delay`` simulated time units; the yield returns ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        sim.schedule(self.delay, callback, self.value)


class Signal(Waitable):
    """A one-shot event.  Processes wait on it; someone calls :meth:`succeed`.

    A signal that is already succeeded resumes waiters immediately (at the
    current simulated time), so there is no race between "wait then fire"
    and "fire then wait".
    """

    __slots__ = ("sim", "_value", "_fired", "_waiters", "_failure")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._value: Any = None
        self._failure: Optional[BaseException] = None
        self._fired = False
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("signal has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "Signal":
        if self._fired:
            raise SimulationError("signal already fired")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.schedule(0.0, waiter, value)
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Fire the signal with an exception; waiters see it raised."""
        if self._fired:
            raise SimulationError("signal already fired")
        self._fired = True
        self._failure = exc
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.schedule(0.0, waiter, exc)
        return self

    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        if self._fired:
            payload = self._failure if self._failure is not None else self._value
            sim.schedule(0.0, callback, payload)
        else:
            self._waiters.append(callback)


class AllOf(Waitable):
    """Wait for every child; yields the list of their values (in order)."""

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)

    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        results: List[Any] = [None] * len(self.children)
        remaining = [len(self.children)]
        if not self.children:
            sim.schedule(0.0, callback, [])
            return

        def make_child_cb(index: int) -> Callable[[Any], None]:
            def child_cb(value: Any) -> None:
                results[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(results)

            return child_cb

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_cb(i))


class AnyOf(Waitable):
    """Wait for the first child; yields ``(index, value)`` of the winner."""

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf needs at least one child")

    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        done = [False]

        def make_child_cb(index: int) -> Callable[[Any], None]:
            def child_cb(value: Any) -> None:
                if not done[0]:
                    done[0] = True
                    callback((index, value))

            return child_cb

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_cb(i))


class Process(Waitable):
    """A running generator coroutine.

    Created with ``Process(sim, generator)``; it schedules itself
    immediately.  Other processes can ``yield`` it to join on completion,
    and :meth:`interrupt` throws :class:`Interrupt` into it.
    """

    def __init__(self, sim: Simulator, gen: Generator[Waitable, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim)
        self._alive = True
        if sim.telemetry is not None:
            sim.telemetry.process_spawned(self)
        sim.schedule(0.0, self._resume, None)

    # -- Waitable protocol -------------------------------------------------
    def _subscribe(self, sim: Simulator, callback: Callable[[Any], None]) -> None:
        self.done._subscribe(sim, callback)

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def value(self) -> Any:
        """The process return value (valid once it has finished)."""
        return self.done.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            item = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Uncaught interrupt terminates the process quietly.
            self._finish(None)
            return
        self._wait_on(item)

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            if isinstance(value, BaseException):
                item = self.gen.throw(value)
            else:
                item = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(item)

    def _wait_on(self, item: Waitable) -> None:
        if not isinstance(item, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded {item!r}, which is not a Waitable"
            )
        item._subscribe(self.sim, self._resume)

    def _finish(self, value: Any) -> None:
        self._alive = False
        self.done.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator[Waitable, Any, Any], name: str = "") -> Process:
    """Convenience wrapper: start ``gen`` as a :class:`Process` on ``sim``."""
    return Process(sim, gen, name=name)
