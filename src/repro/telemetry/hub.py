"""The per-machine telemetry hub.

One :class:`Telemetry` instance owns all three observability channels
for a simulated machine:

- the **metrics registry** (:class:`~repro.sim.stats.StatRegistry`):
  counters, time-weighted gauges, monitors and histograms, shared by
  every layer (interconnect, memory, fabric, runtime),
- the **tracer** (:class:`~repro.telemetry.tracing.Tracer`): begin/end
  spans on per-component lanes plus causal request-span trees,
- the **event log** (:class:`~repro.telemetry.events.EventLog`): typed
  events with simulated timestamps and attributes.

Components never instantiate their own statistics; they are handed the
hub (or attach to it via :mod:`repro.telemetry.wiring`) so one snapshot
or trace export sees the whole machine.

When telemetry is off, components hold ``telemetry = None`` (or the
:data:`NULL` hub, which is falsy) and every instrumentation site reduces
to a single ``is not None`` / truthiness check -- the "near-zero
overhead when disabled" contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.stats import Counter, Histogram, Monitor, StatRegistry, TimeWeighted
from repro.telemetry.tracing import Span, Tracer
from repro.telemetry.events import EventLog, TelemetryEvent

#: A collector polls one component's internal counters into the shared
#: registry.  Called with the hub on every :meth:`Telemetry.collect`.
Collector = Callable[["Telemetry"], None]


class Telemetry:
    """The machine-wide observability hub."""

    enabled = True

    def __init__(
        self,
        sim: Simulator,
        event_capacity: Optional[int] = 100_000,
        trace_sim_events: bool = False,
    ) -> None:
        self.sim = sim
        self.registry = StatRegistry(sim)
        self.tracer = Tracer(sim)
        self.events = EventLog(capacity=event_capacity)
        self.trace_sim_events = trace_sim_events
        self._collectors: List[Tuple[str, Collector]] = []
        self._sim_events = self.registry.counter("sim.events_fired")
        # pre-bound fast path for the per-sim-event kernel hook: one call
        # per fired event, so even one saved attribute walk matters
        self._sim_events_add = self._sim_events.add

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeighted:
        return self.registry.gauge(name, initial)

    def monitor(self, name: str) -> Monitor:
        return self.registry.monitor(name)

    def histogram(self, name: str, bin_edges: Optional[List[float]] = None) -> Histogram:
        return self.registry.histogram(name, bin_edges)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def event(self, kind: str, component: str, **attrs: Any) -> TelemetryEvent:
        ev = TelemetryEvent(ts=self.sim.now, kind=kind, component=component, attrs=attrs)
        self.events.append(ev)
        return ev

    def emitter(self, kind: str, component: str) -> Callable[..., None]:
        """A pre-bound emit callable for one hot instrumentation site.

        The returned function appends a structured event without any
        per-call attribute lookups on the hub (``emit(key=value, ...)``).
        Components grab one emitter per site at wiring time and call it
        on the hot path; with the NULL hub the same accessor hands back a
        shared no-op, so call sites need no enabled-checks at all.
        """
        sim = self.sim
        log = self.events
        append = log._events.append

        def emit(**attrs: Any) -> None:
            append(TelemetryEvent(ts=sim.now, kind=kind, component=component, attrs=attrs))
            log.emitted += 1

        return emit

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin(self, lane: str, name: str) -> Span:
        return self.tracer.begin(lane, name)

    def end(self, lane: str, name: str) -> Span:
        return self.tracer.end(lane, name)

    @contextmanager
    def span(self, lane: str, name: str) -> Iterator[Span]:
        with self.tracer.span(lane, name) as s:
            yield s

    # ------------------------------------------------------------------
    # collectors (pull-style metrics from components that keep their own
    # counters -- caches, DRAMs, SMMUs, links, queues)
    # ------------------------------------------------------------------
    def register_collector(self, fn: Collector, name: str = "") -> None:
        self._collectors.append((name or getattr(fn, "__name__", "collector"), fn))

    def has_collector(self, name: str) -> bool:
        return any(n == name for n, _ in self._collectors)

    def collect(self) -> None:
        """Poll every registered collector into the registry."""
        for _, fn in self._collectors:
            fn(self)

    def snapshot(self) -> Dict[str, float]:
        """One flat metrics view of the whole machine, freshly collected."""
        self.collect()
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    # kernel hooks (called by Simulator.step / Process.__init__ when the
    # hub is attached as ``sim.telemetry``)
    # ------------------------------------------------------------------
    def sim_event_fired(self, event: Any) -> None:
        self._sim_events_add(1)
        if self.trace_sim_events:
            cb = event.callback
            self.event(
                "sim.event",
                "sim",
                callback=getattr(cb, "__qualname__", repr(cb)),
                priority=event.priority,
            )

    def process_spawned(self, process: Any) -> None:
        self.registry.counter("sim.processes_spawned").add(1)
        if self.trace_sim_events:
            self.event("sim.process_spawn", "sim", name=process.name)


def _null_emit(**attrs: Any) -> None:
    """Shared no-op emitter handed out by :class:`NullTelemetry`."""
    return None


class NullTelemetry:
    """The disabled hub: same surface as :class:`Telemetry`, all no-ops.

    Falsy, so ``if self.telemetry:`` instrumentation sites skip it, and
    safe to call directly when a component does not bother checking.
    Metric accessors hand out detached throwaway instruments.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def gauge(self, name: str, initial: float = 0.0) -> "_NullGauge":
        return _NullGauge(initial)

    def monitor(self, name: str) -> Monitor:
        return Monitor(name)

    def histogram(self, name: str, bin_edges: Optional[List[float]] = None) -> Histogram:
        return Histogram(list(bin_edges) if bin_edges else [0.0, 1.0], name)

    def event(self, kind: str, component: str, **attrs: Any) -> None:
        return None

    def emitter(self, kind: str, component: str) -> Callable[..., None]:
        return _null_emit

    def begin(self, lane: str, name: str) -> None:
        return None

    def end(self, lane: str, name: str) -> None:
        return None

    @contextmanager
    def span(self, lane: str, name: str) -> Iterator[None]:
        yield None

    def register_collector(self, fn: Collector, name: str = "") -> None:
        return None

    def has_collector(self, name: str) -> bool:
        return False

    def collect(self) -> None:
        return None

    def snapshot(self) -> Dict[str, float]:
        return {}

    def sim_event_fired(self, event: Any) -> None:
        return None

    def process_spawned(self, process: Any) -> None:
        return None


class _NullGauge:
    """A gauge stand-in with no simulator clock behind it."""

    def __init__(self, initial: float = 0.0) -> None:
        self.value = initial
        self.maximum = initial

    def set(self, value: float) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def time_average(self) -> float:
        return self.value


#: Shared disabled hub -- pass this (or ``None``) to run dark.
NULL = NullTelemetry()
