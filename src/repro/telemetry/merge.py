"""Deterministic merging of per-node telemetry/event streams.

A sharded run produces one event stream per Compute Node simulator.
Concatenating them in completion order would depend on the partition
count and backend scheduling, so every merge goes through one canonical
tie-break: ``(time_ns, node_id, seq)`` -- simulated time first, then the
owning node, then the node-local sequence number.  Two events are never
equal under this key (seq is unique per node), so the merged order is
total and byte-identical however the run was partitioned.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

#: one merged entry: (time_ns, node_id, seq, payload)
MergedEvent = Tuple[float, int, int, object]


def merge_streams(
    streams: Dict[int, Sequence[Tuple[float, int, object]]],
) -> List[MergedEvent]:
    """Merge per-node ``(time_ns, seq, payload)`` streams.

    Each node's stream must already be sorted by ``(time_ns, seq)`` --
    which a deterministic simulator produces naturally -- so the merge
    is a single heap pass, not a global sort.
    """
    keyed: List[Iterable[MergedEvent]] = []
    for node_id in sorted(streams):
        stream = streams[node_id]
        for i in range(1, len(stream)):
            if (stream[i][0], stream[i][1]) < (stream[i - 1][0], stream[i - 1][1]):
                raise ValueError(
                    f"stream for node {node_id} is not sorted at index {i}"
                )
        keyed.append(
            [(t, node_id, seq, payload) for (t, seq, payload) in stream]
        )
    return list(heapq.merge(*keyed))
