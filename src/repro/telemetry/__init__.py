"""Unified telemetry: metrics registry + tracer + structured events.

The paper's runtime layer is driven entirely by observation ("hardware
performance monitors and function instrumentation" feeding the Execution
History, Section 4.2); this package is the measurement substrate every
layer of the simulated machine shares:

- :class:`Telemetry` -- one hub per machine owning the
  :class:`~repro.sim.stats.StatRegistry`, the
  :class:`~repro.telemetry.tracing.Tracer` and the structured
  :class:`~repro.telemetry.events.EventLog`,
- :mod:`repro.telemetry.tracing` -- the unified span type: lane spans
  for device occupancy plus parent-linked causal spans for request
  traces (:func:`validate_span_tree` is the structural contract),
- :mod:`repro.telemetry.wiring` -- ``attach_*`` helpers that route the
  interconnect, memory, fabric, kernel and runtime layers into one hub,
- :mod:`repro.telemetry.exporters` -- Chrome/Perfetto trace JSON, flat
  JSON/CSV metrics snapshots, Prometheus text, schema-checked event
  dumps.

Telemetry is strictly optional: components default to ``telemetry =
None`` (or the falsy :data:`NULL` hub) and pay one pointer check when
disabled.
"""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    EventLog,
    TelemetryEvent,
    validate_event,
)
from repro.telemetry.exporters import (
    chrome_trace,
    chrome_trace_json,
    events_json,
    events_tail,
    metrics_snapshot,
    prometheus_text,
    snapshot_csv,
    snapshot_json,
    validate_chrome_trace,
)
from repro.telemetry.hub import NULL, NullTelemetry, Telemetry
from repro.telemetry.quantiles import (
    StreamingQuantile,
    histogram_percentile,
    latency_summary,
    mean,
    percentile,
)
from repro.telemetry.tracing import (
    Span,
    Tracer,
    render_timeline,
    validate_span_tree,
)
from repro.telemetry.wiring import (
    attach_engine,
    attach_fabric,
    attach_link,
    attach_machine,
    attach_memory,
    attach_network,
    attach_node,
    attach_simulator,
    attach_worker,
)

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "NULL",
    "NullTelemetry",
    "Span",
    "StreamingQuantile",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "attach_engine",
    "attach_fabric",
    "attach_link",
    "attach_machine",
    "attach_memory",
    "attach_network",
    "attach_node",
    "attach_simulator",
    "attach_worker",
    "chrome_trace",
    "chrome_trace_json",
    "events_json",
    "events_tail",
    "histogram_percentile",
    "latency_summary",
    "mean",
    "metrics_snapshot",
    "percentile",
    "prometheus_text",
    "render_timeline",
    "snapshot_csv",
    "snapshot_json",
    "validate_chrome_trace",
    "validate_event",
    "validate_span_tree",
]
