"""Structured telemetry events.

Every event carries the simulated timestamp it happened at, the id of
the component that emitted it (``node0.w1.cache``, ``sim``, ...), a
dotted ``kind`` naming what happened (``scheduler.decision``,
``fabric.reconfig``, ...) and free-form attributes.  The log is a
bounded ring: under sustained pressure the oldest events are dropped
and counted, never silently lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured occurrence on the simulated timeline."""

    ts: float
    kind: str
    component: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "component": self.component,
            "attrs": dict(self.attrs),
        }


#: The schema every exported event dict must satisfy (validated by the
#: CI smoke job and :func:`validate_event`).
EVENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["ts", "kind", "component", "attrs"],
    "properties": {
        "ts": {"type": "number", "minimum": 0},
        "kind": {"type": "string", "minLength": 1},
        "component": {"type": "string"},
        "attrs": {"type": "object"},
    },
}


def validate_event(payload: Dict[str, Any]) -> None:
    """Check one exported event dict against :data:`EVENT_SCHEMA`.

    A dependency-free structural check (the container has no
    ``jsonschema``): raises ``ValueError`` on the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"event must be an object, got {type(payload).__name__}")
    for key in EVENT_SCHEMA["required"]:
        if key not in payload:
            raise ValueError(f"event missing required field {key!r}: {payload}")
    if not isinstance(payload["ts"], (int, float)) or payload["ts"] < 0:
        raise ValueError(f"event ts must be a non-negative number: {payload['ts']!r}")
    if not isinstance(payload["kind"], str) or not payload["kind"]:
        raise ValueError(f"event kind must be a non-empty string: {payload['kind']!r}")
    if not isinstance(payload["component"], str):
        raise ValueError(f"event component must be a string: {payload['component']!r}")
    if not isinstance(payload["attrs"], dict):
        raise ValueError(f"event attrs must be an object: {payload['attrs']!r}")


class EventLog:
    """A bounded, append-only log of :class:`TelemetryEvent`."""

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def append(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._events)

    def select(
        self,
        kind: Optional[str] = None,
        component: Optional[str] = None,
    ) -> List[TelemetryEvent]:
        """Events matching ``kind`` / ``component`` prefixes."""
        out = []
        for e in self._events:
            if kind is not None and not e.kind.startswith(kind):
                continue
            if component is not None and not e.component.startswith(component):
                continue
            out.append(e)
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self._events]
