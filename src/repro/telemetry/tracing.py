"""The unified tracer: causal spans, lanes, and a text timeline.

Historically the repo carried two span stories -- ``repro.sim.trace``
(flat begin/end lanes with its own Chrome export) and the telemetry
hub's tracer (the same class, re-exported).  This module is the single
home for both, extended with the **causal** dimension request tracing
needs:

- every :class:`Span` belongs to a lane (one lane per Worker,
  accelerator, link, tenant, ...) *and* may carry a ``trace_id`` plus a
  ``parent_id``, so the spans of one request form a tree that can be
  walked, merged across streams, and critical-path-analyzed,
- spans may be opened/closed at explicit simulated timestamps
  (:meth:`Tracer.add`), so a layer that learns stage boundaries only at
  completion time (e.g. the serving gateway discovering a task's
  ``started_at`` when the batch finishes) can still emit an exact tree,
- :func:`validate_span_tree` is the structural contract CI and the
  tests share: per ``trace_id``, exactly one root and every parent link
  resolving inside the same trace, acyclically.

Export stays in :mod:`repro.telemetry.exporters` (``chrome_trace``) --
the one Perfetto path; :func:`render_timeline` remains for quick ASCII
looks.  This module is dependency-free (the simulator is duck-typed via
``sim.now``) so any layer may import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Span:
    """One traced activity interval, optionally part of a causal trace.

    ``trace_id``/``span_id``/``parent_id`` are ``None`` for plain lane
    spans (the legacy begin/end surface).  ``kind`` names the lifecycle
    stage for request spans (``request``, ``admission``, ``batch.wait``,
    ``sched.queue``, ``execute``, ...).
    """

    lane: str
    name: str
    start: float
    end: Optional[float] = None
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    kind: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Canonical exportable form (schema-checked by CI)."""
        return {
            "lane": self.lane,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans against one simulator's clock.

    Two surfaces over one span list:

    - the **lane** surface (:meth:`begin`/:meth:`end`/:meth:`span`/
      :meth:`instant`): anonymous activity intervals keyed by
      ``(lane, name)``, what the Worker schedulers and the fabric use,
    - the **causal** surface (:meth:`add`, explicit timestamps +
      ``trace_id``/``parent``): parent-linked request trees emitted by
      the serving layer's request tracer.
    """

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self._open: Dict[Tuple[str, str], Span] = {}
        self._next_span_id = 0

    # ------------------------------------------------------------------
    # lane surface (legacy begin/end keyed by (lane, name))
    # ------------------------------------------------------------------
    def begin(self, lane: str, name: str) -> Span:
        key = (lane, name)
        if key in self._open:
            raise ValueError(f"span {name!r} already open on lane {lane!r}")
        span = Span(lane=lane, name=name, start=self.sim.now)
        self._open[key] = span
        self.spans.append(span)
        return span

    def end(self, lane: str, name: str) -> Span:
        key = (lane, name)
        span = self._open.pop(key, None)
        if span is None:
            raise ValueError(f"no open span {name!r} on lane {lane!r}")
        span.end = self.sim.now
        return span

    @contextmanager
    def span(self, lane: str, name: str) -> Iterator[Span]:
        """Context-manager tracing for plain (non-process) code."""
        span = self.begin(lane, name)
        try:
            yield span
        finally:
            self.end(lane, name)

    def instant(self, lane: str, name: str) -> Span:
        """A zero-duration marker."""
        span = Span(lane=lane, name=name, start=self.sim.now, end=self.sim.now)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # causal surface (request trees)
    # ------------------------------------------------------------------
    def add(
        self,
        lane: str,
        name: str,
        start: float,
        end: Optional[float] = None,
        trace_id: Optional[int] = None,
        parent: Optional[Span] = None,
        kind: str = "",
        **attrs: Any,
    ) -> Span:
        """Record one causal span at explicit timestamps.

        ``parent=None`` makes this a trace root.  ``end=None`` leaves the
        span open; close it with :meth:`finish`.  Span ids are assigned
        in emission order, so same-seed runs produce identical trees.
        """
        span = Span(
            lane=lane,
            name=name,
            start=start,
            end=end,
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            kind=kind,
            attrs=attrs,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, end: Optional[float] = None) -> Span:
        """Close a causal span (at ``end``, default the clock's now)."""
        span.end = self.sim.now if end is None else end
        return span

    def trace_ids(self) -> List[int]:
        """Distinct trace ids, in first-emission order."""
        seen: List[int] = []
        marked = set()
        for s in self.spans:
            if s.trace_id is not None and s.trace_id not in marked:
                marked.add(s.trace_id)
                seen.append(s.trace_id)
        return seen

    def trace_spans(self, trace_id: int) -> List[Span]:
        """All spans of one trace, in emission order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    # ------------------------------------------------------------------
    # lane queries
    # ------------------------------------------------------------------
    def lanes(self) -> List[str]:
        seen: List[str] = []
        for s in self.spans:
            if s.lane not in seen:
                seen.append(s.lane)
        return seen

    def closed_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def busy_time(self, lane: str) -> float:
        return sum(s.duration or 0.0 for s in self.closed_spans() if s.lane == lane)

    def utilization(self, lane: str, horizon: Optional[float] = None) -> float:
        """Busy fraction of ``lane`` over ``horizon`` time units.

        ``horizon`` must be the observation window the caller means
        (e.g. a run's makespan); ``None`` explicitly selects the full
        simulated time so far (``sim.now``).
        """
        if horizon is None:
            horizon = self.sim.now
        if horizon <= 0:
            return 0.0
        return self.busy_time(lane) / horizon


def validate_span_tree(spans: Sequence[Any]) -> int:
    """Structural check of causal spans; returns the trace count.

    Accepts :class:`Span` objects or their exported dicts.  Per
    ``trace_id``: exactly one root (``parent_id is None``), every
    ``parent_id`` resolves to a span of the *same* trace, parent links
    are acyclic, and every span is closed with ``end >= start``.
    Raises ``ValueError`` on the first violation -- shared by the CI
    trace-smoke job and the structural tests.
    """
    by_trace: Dict[int, Dict[int, Dict[str, Any]]] = {}
    for s in spans:
        d = s if isinstance(s, dict) else s.to_dict()
        tid = d.get("trace_id")
        if tid is None:
            continue                        # plain lane span: not causal
        if d.get("span_id") is None:
            raise ValueError(f"causal span without span_id: {d}")
        if d.get("end") is None:
            raise ValueError(f"span {d['span_id']} of trace {tid} never closed")
        if d["end"] < d["start"]:
            raise ValueError(f"span {d['span_id']} of trace {tid} ends before it starts")
        members = by_trace.setdefault(tid, {})
        if d["span_id"] in members:
            raise ValueError(f"duplicate span_id {d['span_id']} in trace {tid}")
        members[d["span_id"]] = d
    for tid, members in by_trace.items():
        roots = [d for d in members.values() if d.get("parent_id") is None]
        if len(roots) != 1:
            raise ValueError(f"trace {tid} has {len(roots)} roots (want exactly 1)")
        for d in members.values():
            parent = d.get("parent_id")
            if parent is None:
                continue
            if parent not in members:
                raise ValueError(
                    f"span {d['span_id']} of trace {tid} links to parent "
                    f"{parent} outside the trace"
                )
            # climb to the root; a cycle would loop forever without the bound
            hops, cursor = 0, parent
            while cursor is not None:
                hops += 1
                if hops > len(members):
                    raise ValueError(f"parent-link cycle in trace {tid}")
                cursor = members[cursor].get("parent_id")
    return len(by_trace)


def render_timeline(tracer: Tracer, width: int = 72) -> str:
    """An ASCII Gantt chart of all closed spans."""
    spans = tracer.closed_spans()
    if not spans:
        return "(no closed spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans if s.end is not None)
    horizon = max(t1 - t0, 1e-9)
    lane_width = max(len(l) for l in tracer.lanes())
    lines = [
        f"{'lane'.ljust(lane_width)} | timeline ({t0:.0f} .. {t1:.0f} ns)"
    ]
    for lane in tracer.lanes():
        row = [" "] * width
        for s in spans:
            if s.lane != lane:
                continue
            a = int((s.start - t0) / horizon * (width - 1))
            b = int(((s.end or s.start) - t0) / horizon * (width - 1))
            for i in range(a, max(a, b) + 1):
                row[i] = "#" if row[i] == " " else "%"  # % marks overlap
        lines.append(f"{lane.ljust(lane_width)} | {''.join(row)}")
    return "\n".join(lines)
