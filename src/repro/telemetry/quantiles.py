"""Shared latency statistics: deterministic percentiles and summaries.

Latency math used to be scattered -- the histogram percentile walk in
:mod:`repro.sim.stats`, ad-hoc ``sum(x)/len(x)`` means in the runtime's
history/fault bookkeeping, per-report throughput arithmetic in
:mod:`repro.core.runtime.report` -- each with slightly different edge
cases.  This module is the one home for that math:

- :func:`percentile` -- exact linear-interpolation percentile over a
  finite sample (the definition numpy calls ``linear``),
- :func:`mean` -- the trivial mean with the empty-sample convention
  (0.0) every caller here wants,
- :class:`StreamingQuantile` -- the P² single-quantile estimator for
  unbounded streams: O(1) memory, no sampling, and **deterministic**
  (same value sequence, same estimate -- no RNG, unlike reservoir
  sampling), which is what the serving layer's SLO tracking needs,
- :func:`histogram_percentile` -- the bin-midpoint percentile used by
  :class:`repro.sim.stats.Histogram`,
- :func:`latency_summary` -- the canonical p50/p95/p99 summary dict the
  reports and the serving layer share.

Everything here is pure stdlib math over plain sequences -- no simulator
or telemetry-hub dependency -- so any layer may import it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "StreamingQuantile",
    "histogram_percentile",
    "latency_summary",
    "mean",
    "percentile",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sample (the reporting convention)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """Exact percentile of a finite sample, linear interpolation.

    ``p`` is in [0, 100].  Deterministic: sorts a copy, never mutates
    the input.  Returns 0.0 for an empty sample.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * p / 100.0
    lo = int(rank)
    frac = rank - lo
    if lo + 1 >= len(data):
        return data[-1]
    return data[lo] * (1.0 - frac) + data[lo + 1] * frac


def histogram_percentile(
    edges: Sequence[float],
    counts: Sequence[int],
    underflow: int,
    overflow: int,
    p: float,
) -> float:
    """Approximate percentile of a fixed-bin histogram (bin midpoints).

    The walk previously inlined in ``Histogram.percentile``: underflow
    mass reports the lowest edge, overflow the highest, and a bin's mass
    reports its midpoint.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    total = sum(counts) + underflow + overflow
    if total == 0:
        return 0.0
    target = total * p / 100.0
    running: float = underflow
    if running >= target and underflow:
        return edges[0]
    for i, c in enumerate(counts):
        running += c
        if running >= target:
            return 0.5 * (edges[i] + edges[i + 1])
    return edges[-1]


class StreamingQuantile:
    """P² (Jain & Chlamtac) streaming estimator of one quantile.

    Tracks five markers whose positions are nudged toward the ideal
    quantile positions with parabolic interpolation -- O(1) memory over
    unbounded streams, exact until five observations arrive, and fully
    deterministic (no sampling).  ``q`` is the quantile in (0, 1),
    e.g. 0.99 for p99.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._n = 0
        self._heights: List[float] = []           # marker heights
        self._positions: List[float] = []         # actual marker positions
        self._desired: List[float] = []           # desired marker positions
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._n

    def record(self, value: float) -> None:
        self._n += 1
        if self._n <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._n == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ]
            return
        h = self._heights
        # locate the cell and bump marker positions above it
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n_i, n_lo, n_hi = (
                self._positions[i],
                self._positions[i - 1],
                self._positions[i + 1],
            )
            if (d >= 1.0 and n_hi - n_i > 1.0) or (d <= -1.0 and n_lo - n_i < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current estimate (exact for fewer than six samples)."""
        if self._n == 0:
            return 0.0
        if self._n <= 5:
            return percentile(self._heights, self.q * 100.0)
        return self._heights[2]


def latency_summary(
    values: Sequence[float], percentiles: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """The canonical latency block shared by reports and the SLO tracker.

    Keys: ``count``, ``mean``, ``max`` and one ``p<N>`` per requested
    percentile (defaults p50/p95/p99).  All zeros on an empty sample.
    """
    data = sorted(values)
    out: Dict[str, float] = {
        "count": float(len(data)),
        "mean": mean(data),
        "max": data[-1] if data else 0.0,
    }
    for p in percentiles:
        label = f"p{p:g}".replace(".", "_")
        out[label] = percentile(data, p)
    return out
