"""Exporters: Chrome/Perfetto trace JSON, metrics snapshots, Prometheus.

All exporters are pure functions of a :class:`~repro.telemetry.hub.Telemetry`
hub, so any run that carried a hub can be serialized after the fact --
``python -m repro trace`` / ``python -m repro metrics`` are thin CLI
shells over these.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.events import validate_event
from repro.telemetry.hub import Telemetry

# ----------------------------------------------------------------------
# Chrome / Perfetto trace JSON
# ----------------------------------------------------------------------


def chrome_trace(hub: Telemetry, include_events: bool = True) -> Dict[str, Any]:
    """The run as a Chrome ``traceEvents`` document (dict form).

    Spans become complete ("X") slices.  Lanes are grouped into
    Perfetto *processes* by their first dot-segment (``node0.w3`` →
    process ``node0``, thread ``node0.w3``; ``serve.interactive`` →
    process ``serve``), each announced with ``process_name`` /
    ``thread_name`` metadata records so the UI shows human-readable
    names instead of bare ids.  Causal spans carry their ``trace_id`` /
    ``kind`` / attributes in ``args`` so request trees are clickable.
    Structured events become instant ("i") markers on their component's
    lane.  Timestamps convert from simulated ns to trace µs.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}

    def pid_for(prefix: str) -> int:
        if prefix not in pids:
            pids[prefix] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[prefix],
                    "tid": 0,
                    "args": {"name": prefix},
                }
            )
        return pids[prefix]

    def ids_for(lane: str) -> Dict[str, int]:
        if lane not in tids:
            pid = pid_for(lane.split(".", 1)[0])
            tids[lane] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[lane],
                    "args": {"name": lane},
                }
            )
        return {"pid": pid_for(lane.split(".", 1)[0]), "tid": tids[lane]}

    for s in hub.tracer.closed_spans():
        entry: Dict[str, Any] = {
            "name": s.name,
            "cat": "trace" if s.trace_id is not None else "sim",
            "ph": "X",
            "ts": s.start / 1000.0,
            "dur": (s.duration or 0.0) / 1000.0,
            **ids_for(s.lane),
        }
        if s.trace_id is not None:
            entry["args"] = {
                "trace_id": s.trace_id,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "kind": s.kind,
                **s.attrs,
            }
        events.append(entry)
    if include_events:
        for e in hub.events:
            events.append(
                {
                    "name": e.kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": e.ts / 1000.0,
                    **ids_for(e.component),
                    "args": dict(e.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def chrome_trace_json(hub: Telemetry, include_events: bool = True) -> str:
    return json.dumps(chrome_trace(hub, include_events=include_events))


def validate_chrome_trace(payload: Any) -> int:
    """Structural check of a trace document; returns the event count.

    Accepts the dict form or its JSON string.  Raises ``ValueError`` on
    the first malformed entry -- used by the CI smoke job.
    """
    if isinstance(payload, str):
        payload = json.loads(payload)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace document must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] missing {key!r}: {ev}")
        if ev["ph"] in ("X", "i") and not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}] has no numeric ts: {ev}")
        if ev["ph"] == "X" and ev.get("dur", 0.0) < 0:
            raise ValueError(f"traceEvents[{i}] has negative duration: {ev}")
    return len(events)


# ----------------------------------------------------------------------
# metrics snapshots
# ----------------------------------------------------------------------


def metrics_snapshot(hub: Telemetry) -> Dict[str, float]:
    """One flat ``{metric_name: value}`` view (collects first)."""
    return hub.snapshot()


def snapshot_json(hub: Telemetry, indent: Optional[int] = 2) -> str:
    snap = metrics_snapshot(hub)
    clean = {k: (v if math.isfinite(v) else None) for k, v in snap.items()}
    return json.dumps(clean, indent=indent, sort_keys=True)


def snapshot_csv(hub: Telemetry) -> str:
    lines = ["metric,value"]
    for name, value in sorted(metrics_snapshot(hub).items()):
        if any(c in name for c in ',"\n'):
            name = '"' + name.replace('"', '""') + '"'
        lines.append(f"{name},{value!r}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"repro_{safe}"


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(hub: Telemetry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters keep their monotonic value; gauges expose their current
    value plus a ``_time_avg`` companion; monitors map to summary-style
    ``_count``/``_sum``; histograms emit cumulative ``_bucket`` lines
    with ``le`` labels (including ``+Inf``).
    """
    hub.collect()
    reg = hub.registry
    lines: List[str] = []

    for name, c in sorted(reg.counters.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(c.value)}")

    for name, g in sorted(reg.gauges.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(g.value)}")
        lines.append(f"# TYPE {metric}_time_avg gauge")
        lines.append(f"{metric}_time_avg {_prom_value(g.time_average())}")

    for name, m in sorted(reg.monitors.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {float(m.count)}")
        lines.append(f"{metric}_sum {_prom_value(m.total)}")

    for name, h in sorted(reg.histograms.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = h.underflow
        for edge, count in zip(h.edges[1:], h.counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
        cumulative += h.overflow
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_prom_value(h.mean * h.count)}")
        lines.append(f"{metric}_count {h.count}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# structured event export
# ----------------------------------------------------------------------


def events_json(hub: Telemetry, indent: Optional[int] = None) -> str:
    """The structured event log as a JSON array (schema-validated)."""
    dicts = hub.events.to_dicts()
    for d in dicts:
        validate_event(d)
    return json.dumps(dicts, indent=indent)


def events_tail(hub: Telemetry, cursor: int = 0) -> Tuple[list, int]:
    """Incremental event export: events emitted since ``cursor``.

    ``cursor`` is the total emitted count from a previous call (start at
    0).  Returns ``(new_event_dicts, next_cursor)``; events that fell
    out of the ring between calls are simply absent, and ``next_cursor``
    always reflects the hub's total so pollers converge.  This is the
    service daemon's ``events`` command: metrics and events stream while
    the simulation runs instead of only at end of run.
    """
    log = hub.events
    total = log.emitted
    if cursor >= total:
        return [], total
    missed = max(0, log.dropped - cursor)
    fresh = total - max(cursor, log.dropped)
    events = list(log)[len(log) - fresh:] if fresh else []
    dicts = [e.to_dict() for e in events]
    if missed:
        # make loss visible rather than silently skipping the gap
        dicts.insert(0, {
            "ts": events[0].ts if events else 0.0,
            "kind": "telemetry.events_lost",
            "component": "telemetry.hub",
            "attrs": {"lost": missed},
        })
    return dicts, total
