"""Wiring: attach existing components to a telemetry hub.

Components keep their own cheap internal counters (a cache counts hits
whether or not anyone watches); *attaching* registers pull-collectors
that mirror those counters into the hub's shared registry under stable
dotted names, and arms the few live hooks (link queue gauges, span
emission) that need the hub at event time.

Everything here is duck-typed over the component attributes, so this
module depends only on :mod:`repro.telemetry.hub` -- no import cycles
with the layers it observes.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.hub import Telemetry

# ----------------------------------------------------------------------
# simulation kernel
# ----------------------------------------------------------------------


def attach_simulator(hub: Telemetry, sim: Any, prefix: str = "sim") -> None:
    """Arm the kernel hooks and mirror event-loop counters."""
    sim.telemetry = hub

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.events_processed").set(float(sim.events_processed))
        h.gauge(f"{prefix}.pending_events").set(float(sim.pending))

    hub.register_collector(collect, name=prefix)


# ----------------------------------------------------------------------
# interconnect
# ----------------------------------------------------------------------


def attach_link(hub: Telemetry, link: Any, prefix: str) -> None:
    """Mirror one link's traffic counters; arm its live queue/latency hooks."""
    link.telemetry = hub
    link.tel_queue = hub.gauge(f"{prefix}.queue_depth")
    link.tel_latency = hub.histogram(f"{prefix}.transfer_ns")

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.bytes").set(float(link.bytes_carried))
        h.counter(f"{prefix}.messages").set(float(link.messages_carried))
        h.counter(f"{prefix}.energy_pj").set(link.energy_pj)

    hub.register_collector(collect, name=prefix)


def _metric_label(raw: str) -> str:
    """Flatten a free-form component name (link names are endpoint-tuple
    reprs like ``('s', 0, 0)<->('w', 0)``) into a clean metric segment:
    alphanumeric runs joined by single underscores."""
    parts: list = []
    word = ""
    for ch in raw:
        if ch.isalnum():
            word += ch
        elif word:
            parts.append(word)
            word = ""
    if word:
        parts.append(word)
    return "_".join(parts) or "link"


def attach_network(hub: Telemetry, network: Any, prefix: str = "interconnect") -> None:
    """Attach a whole network: aggregate counters, per-message latency
    histogram, and every current link."""
    network.telemetry = hub
    network.tel_msg_latency = hub.histogram(f"{prefix}.msg_latency_ns")

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.messages_sent").set(float(network.messages_sent))
        h.counter(f"{prefix}.bytes_sent").set(float(network.bytes_sent))

    hub.register_collector(collect, name=prefix)
    for link in network.links:
        attach_link(hub, link, f"{prefix}.{_metric_label(link.name or 'link')}")


# ----------------------------------------------------------------------
# memory system (cache / DRAM / SMMU counters -> shared registry)
# ----------------------------------------------------------------------


def attach_memory(hub: Telemetry, worker: Any, prefix: str) -> None:
    cache, dram, smmu = worker.cache, worker.dram, worker.smmu

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.cache.hits").set(float(cache.stats.hits))
        h.counter(f"{prefix}.cache.misses").set(float(cache.stats.misses))
        h.counter(f"{prefix}.cache.writebacks").set(float(cache.stats.writebacks))
        h.counter(f"{prefix}.dram.bytes").set(float(dram.bytes_transferred))
        h.counter(f"{prefix}.dram.row_hits").set(float(dram.row_hits))
        h.counter(f"{prefix}.dram.row_misses").set(float(dram.row_misses))
        h.counter(f"{prefix}.smmu.translations").set(float(smmu.stats.translations))
        h.counter(f"{prefix}.smmu.tlb_hits").set(float(smmu.stats.tlb_hits))
        h.counter(f"{prefix}.smmu.tlb_misses").set(float(smmu.stats.tlb_misses))
        h.counter(f"{prefix}.smmu.faults").set(float(smmu.stats.faults))

    hub.register_collector(collect, name=f"{prefix}.memory")


# ----------------------------------------------------------------------
# fabric
# ----------------------------------------------------------------------


def attach_fabric(hub: Telemetry, worker: Any, prefix: str) -> None:
    reconfig = worker.reconfig
    reconfig.telemetry = hub
    reconfig.tel_lane = f"{prefix}.fabric"

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.fabric.reconfigurations").set(
            float(reconfig.reconfigurations)
        )
        h.counter(f"{prefix}.fabric.evictions").set(float(reconfig.evictions))
        h.counter(f"{prefix}.fabric.config_bytes").set(float(reconfig.config_bytes))
        h.counter(f"{prefix}.fabric.config_energy_pj").set(reconfig.config_energy_pj)

    hub.register_collector(collect, name=f"{prefix}.fabric")


# ----------------------------------------------------------------------
# workers / nodes / machines
# ----------------------------------------------------------------------


def attach_worker(hub: Telemetry, worker: Any, prefix: Optional[str] = None) -> None:
    prefix = prefix or worker.name
    attach_memory(hub, worker, prefix)
    attach_fabric(hub, worker, prefix)

    def collect(h: Telemetry) -> None:
        h.counter(f"{prefix}.sw_calls").set(float(worker.sw_calls))
        h.counter(f"{prefix}.hw_calls").set(float(worker.hw_calls))

    hub.register_collector(collect, name=prefix)


def attach_node(hub: Telemetry, node: Any) -> None:
    """One Compute Node: every Worker plus the intra-node NoC."""
    attach_network(hub, node.network, prefix=f"{node.name}.noc")
    for worker in node.workers:
        attach_worker(hub, worker)


def attach_machine(hub: Telemetry, machine: Any) -> None:
    """The whole machine: kernel, nodes, inter-node network, energy."""
    attach_simulator(hub, machine.sim)
    for node in machine.nodes:
        attach_node(hub, node)
    attach_network(hub, machine.inter_network, prefix="interconnect.inter")
    ledger = machine.ledger

    def collect(h: Telemetry) -> None:
        h.counter("machine.energy_pj").set(ledger.total_pj())

    hub.register_collector(collect, name="machine.energy")


# ----------------------------------------------------------------------
# runtime
# ----------------------------------------------------------------------


def attach_engine(hub: Telemetry, engine: Any, prefix: str = "runtime") -> None:
    """Mirror an ExecutionEngine's queues, tracker and history."""
    queues = engine.queues
    gauges = [hub.gauge(f"{prefix}.queue.w{q.worker_id}.depth") for q in queues]

    def collect(h: Telemetry) -> None:
        for q, g in zip(queues, gauges):
            g.set(float(q.depth))
            h.counter(f"{prefix}.queue.w{q.worker_id}.enqueued").set(float(q.enqueued))
        h.counter(f"{prefix}.status_messages").set(
            float(engine.tracker.status_messages)
        )
        h.counter(f"{prefix}.history_records").set(float(len(engine.history)))
        h.counter(f"{prefix}.sw_chosen").set(
            float(sum(s.sw_chosen for s in engine.schedulers))
        )
        h.counter(f"{prefix}.hw_chosen").set(
            float(sum(s.hw_chosen for s in engine.schedulers))
        )
        # per-tenant dimensions (job 0 = the implicit legacy job; only
        # tenants with activity are mirrored, so single-job runs add
        # nothing to the registry)
        jobs = getattr(engine, "jobs", None)
        if jobs is not None:
            active = 0
            for rec in jobs:
                if rec.tasks_done == 0 and rec.tasks_retried == 0:
                    continue
                active += 1
                jp = f"{prefix}.job.{rec.job_id}"
                h.counter(f"{jp}.tasks_done").set(float(rec.tasks_done))
                h.counter(f"{jp}.sw_calls").set(float(rec.sw_calls))
                h.counter(f"{jp}.hw_calls").set(float(rec.hw_calls))
                h.counter(f"{jp}.energy_pj").set(rec.energy_pj)
                h.counter(f"{jp}.tasks_retried").set(float(rec.tasks_retried))
                h.counter(f"{jp}.tasks_unrecovered").set(
                    float(rec.tasks_unrecovered)
                )
                h.gauge(f"{jp}.placement_locality").set(rec.locality_fraction())
            if active > 1:
                h.gauge(f"{prefix}.jobs.active").set(float(active))

    hub.register_collector(collect, name=prefix)
