"""Platforms and devices.

Every ECOSCALE Worker exposes two OpenCL devices: its CPU cluster and its
reconfigurable block (Section 4.4 treats workers as OpenCL "devices").
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.core.compute_node import ComputeNode
from repro.core.unilogic import UnilogicDomain
from repro.core.worker import Worker


class DeviceType(Enum):
    CPU = "cpu"
    FPGA = "fpga"


class Device:
    """One OpenCL device: a Worker's CPU cluster or its fabric."""

    def __init__(self, worker: Worker, device_type: DeviceType) -> None:
        self.worker = worker
        self.device_type = device_type
        self.name = f"{worker.name}.{device_type.value}"

    @property
    def worker_id(self) -> int:
        return self.worker.worker_id

    @property
    def compute_units(self) -> int:
        if self.device_type is DeviceType.CPU:
            return self.worker.params.cpu_cores
        return len(self.worker.fabric)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.name}>"


class Platform:
    """The ECOSCALE platform over one Compute Node (PGAS partition)."""

    def __init__(self, node: ComputeNode, name: str = "ECOSCALE") -> None:
        self.node = node
        self.name = name
        self.unilogic = UnilogicDomain(node)
        self._devices: List[Device] = []
        for worker in node.workers:
            self._devices.append(Device(worker, DeviceType.CPU))
            self._devices.append(Device(worker, DeviceType.FPGA))

    def devices(self, device_type: Optional[DeviceType] = None) -> List[Device]:
        if device_type is None:
            return list(self._devices)
        return [d for d in self._devices if d.device_type is device_type]

    def device(self, worker_id: int, device_type: DeviceType) -> Device:
        for d in self._devices:
            if d.worker_id == worker_id and d.device_type is device_type:
                return d
        raise KeyError(f"no {device_type.value} device on worker {worker_id}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Platform {self.name} devices={len(self._devices)}>"
