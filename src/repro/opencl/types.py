"""Shared enums for the OpenCL layer."""

from __future__ import annotations

from enum import Enum


class DataScope(Enum):
    """The ECOSCALE data-scoping extension (paper extension #1).

    - ``DEVICE``: classic OpenCL -- the buffer lives in (and is cacheable
      by) exactly one Worker; other Workers must copy.
    - ``PARTITION``: PGAS -- the buffer lives in one NUMA domain of the
      Compute Node's UNIMEM space, but *every* Worker in the partition
      may load/store it directly; the single-cacheable-owner rule (and
      :meth:`Buffer.migrate`) governs who may cache.
    - ``NODE_GLOBAL``: spans Compute Nodes; inter-node access goes over
      MPI-style messages.
    """

    DEVICE = "device"
    PARTITION = "partition"
    NODE_GLOBAL = "node_global"


class CommandType(Enum):
    ND_RANGE = "nd_range"
    READ = "read"
    WRITE = "write"
    COPY = "copy"
    MIGRATE = "migrate"
    MARKER = "marker"
