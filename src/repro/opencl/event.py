"""OpenCL-style events over simulation signals."""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.opencl.types import CommandType
from repro.sim import Signal, Simulator

_event_ids = itertools.count()


class Event:
    """Completion handle for one enqueued command.

    Carries the OpenCL profiling timestamps (QUEUED / START / END) in
    simulated nanoseconds.
    """

    def __init__(self, sim: Simulator, command: CommandType) -> None:
        self.sim = sim
        self.command = command
        self.event_id = next(_event_ids)
        self.signal = Signal(sim)
        self.queued_at: float = sim.now
        self.started_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.result: Any = None

    @property
    def complete(self) -> bool:
        return self.signal.triggered

    def _start(self) -> None:
        self.started_at = self.sim.now

    def _finish(self, result: Any = None) -> None:
        self.ended_at = self.sim.now
        self.result = result
        self.signal.succeed(self)

    @property
    def duration_ns(self) -> Optional[float]:
        if self.started_at is None or self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    @property
    def queue_delay_ns(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.queued_at

    def wait(self) -> Any:
        """Host-side blocking wait: drive the simulation until complete."""
        while not self.complete:
            if not self.sim.step():
                raise RuntimeError(
                    f"event {self.event_id} ({self.command.value}) can never "
                    "complete: simulation queue drained"
                )
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.complete else "pending"
        return f"<Event {self.event_id} {self.command.value} {state}>"
