"""Cluster-scope buffers: the NODE_GLOBAL half of extension #1.

A :class:`ClusterContext` spans a whole :class:`~repro.core.Machine`:
one OpenCL context per Compute Node plus inter-node data movement over
the MPI network (Fig. 3's "MPI-based multi-layer interconnection").
Intra-node movement stays on the UNIMEM paths of :class:`CommandQueue`;
crossing nodes costs real collective/message traffic on the inter-node
tree -- the cost cliff that makes hierarchical partitioning worth it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.machine import Machine
from repro.interconnect.message import Message, TransactionType
from repro.mpi.comm import CollectiveResult
from repro.opencl.context import Buffer, Context
from repro.opencl.platform import Platform
from repro.opencl.types import DataScope


class ClusterContext:
    """Per-node contexts plus inter-node transfers for one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.platforms: List[Platform] = [Platform(node) for node in machine.nodes]
        self.contexts: List[Context] = [Context(p) for p in self.platforms]
        self.inter_node_bytes = 0
        self.inter_node_transfers = 0

    def __len__(self) -> int:
        return len(self.contexts)

    def context(self, node_id: int) -> Context:
        if not 0 <= node_id < len(self.contexts):
            raise IndexError(f"no compute node {node_id}")
        return self.contexts[node_id]

    def platform(self, node_id: int) -> Platform:
        return self.platforms[node_id]

    # ------------------------------------------------------------------
    def create_buffer(
        self,
        node_id: int,
        size_bytes: int,
        affinity_worker: int = 0,
        dtype=np.uint8,
    ) -> Buffer:
        """A NODE_GLOBAL buffer homed on one node's PGAS space."""
        return self.context(node_id).create_buffer(
            size_bytes,
            scope=DataScope.NODE_GLOBAL,
            affinity_worker=affinity_worker,
            dtype=dtype,
        )

    def node_of(self, buf: Buffer) -> int:
        """Which Compute Node a buffer lives on."""
        for i, ctx in enumerate(self.contexts):
            if buf.context is ctx:
                return i
        raise ValueError("buffer does not belong to this cluster context")

    # ------------------------------------------------------------------
    def copy(self, src: Buffer, dst: Buffer) -> Tuple[float, float]:
        """Copy ``src`` into ``dst``; returns (latency_ns, energy_pj).

        Same-node copies ride the intra-node network; cross-node copies
        go over the MPI tree as one bulk message.
        """
        if src.size_bytes != dst.size_bytes:
            raise ValueError("cluster copy requires equally sized buffers")
        dst.array[:] = src.array.view(dst.array.dtype)
        src_node, dst_node = self.node_of(src), self.node_of(dst)
        if src_node == dst_node:
            node = self.machine.node(src_node)
            return node.transfer_cost(
                src.home_worker, dst.home_worker, src.size_bytes, TransactionType.DMA
            )
        msg = Message(
            self.machine.node_endpoints[src_node],
            self.machine.node_endpoints[dst_node],
            src.size_bytes,
            TransactionType.MPI,
        )
        lat, energy = self.machine.inter_network.send_cost(msg)
        self.machine.ledger.add("cluster.mpi", energy)
        self.inter_node_bytes += src.size_bytes
        self.inter_node_transfers += 1
        return lat, energy

    def broadcast(
        self, src: Buffer, affinity_worker: int = 0
    ) -> Tuple[List[Buffer], CollectiveResult]:
        """Replicate a buffer onto every other node (binomial-tree cost);
        returns the replicas (source node gets the original)."""
        src_node = self.node_of(src)
        result = self.machine.world.broadcast(src_node, src.size_bytes)
        replicas: List[Buffer] = []
        for node_id in range(len(self.contexts)):
            if node_id == src_node:
                replicas.append(src)
                continue
            replica = self.create_buffer(
                node_id, src.size_bytes, affinity_worker, dtype=src.array.dtype
            )
            replica.array[:] = src.array
            replicas.append(replica)
        self.inter_node_bytes += result.bytes_moved
        self.inter_node_transfers += len(self.contexts) - 1
        return replicas, result

    def gather_sum(self, parts: List[Buffer]) -> Tuple[np.ndarray, CollectiveResult]:
        """Element-wise sum of per-node partials (allreduce cost model)."""
        if not parts:
            raise ValueError("need at least one partial buffer")
        shape = parts[0].array.shape
        for p in parts:
            if p.array.shape != shape:
                raise ValueError("partial buffers must have equal shapes")
        result = self.machine.world.allreduce(parts[0].size_bytes)
        total = np.zeros(shape, dtype=np.result_type(*(p.array.dtype for p in parts)))
        for p in parts:
            total = total + p.array
        self.inter_node_bytes += result.bytes_moved
        return total, result
