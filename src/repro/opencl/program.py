"""Programs and kernels.

A :class:`Program` bundles, per function: the kernel IR (for timing on
either device), an optional *host implementation* (a numpy callable, so
ND-range executions produce real data), and -- once the programmer opts
in via :meth:`enable_acceleration` -- HLS-generated accelerator modules
that FPGA devices load on demand at runtime (paper extension #3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.worker import FunctionRegistry
from repro.fabric.module_library import ModuleLibrary
from repro.hls.frontend import parse_kernel
from repro.hls.ir import Kernel
from repro.hls.synthesis import HlsTool, SynthesisConstraints


class KernelHandle:
    """A callable kernel within a program, with bound arguments."""

    def __init__(self, program: "Program", function: str) -> None:
        self.program = program
        self.function = function
        self.args: tuple = ()

    def set_args(self, *args) -> "KernelHandle":
        self.args = args
        return self

    @property
    def kernel_ir(self) -> Kernel:
        return self.program.registry.kernel(self.function)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelHandle {self.function}>"


class Program:
    """A built program: kernels + host impls + (optionally) HW modules."""

    def __init__(self, kernels: Sequence[Kernel]) -> None:
        if not kernels:
            raise ValueError("a program needs at least one kernel")
        self.registry = FunctionRegistry()
        for k in kernels:
            self.registry.register(k)
        self.library = ModuleLibrary()
        self._host_impls: Dict[str, Callable] = {}
        self._accelerated: set = set()

    @classmethod
    def from_source(
        cls,
        sources: Sequence[str],
        global_size: int,
        constants: Optional[Dict[str, int]] = None,
    ) -> "Program":
        """Build a program from OpenCL C source strings (the moral
        equivalent of clCreateProgramWithSource): each string holds one
        ``__kernel`` function, parsed by the HLS frontend into
        timing-analyzable IR."""
        kernels = [
            parse_kernel(src, global_size, constants) for src in sources
        ]
        return cls(kernels)

    # ------------------------------------------------------------------
    def kernel(self, function: str) -> KernelHandle:
        if function not in self.registry:
            raise KeyError(f"program has no kernel {function!r}")
        return KernelHandle(self, function)

    def functions(self) -> List[str]:
        return self.registry.functions()

    # ------------------------------------------------------------------
    def set_host_impl(self, function: str, fn: Callable) -> None:
        """Attach the numpy reference implementation executed on any
        device (the simulation provides the device-specific *timing*)."""
        if function not in self.registry:
            raise KeyError(f"program has no kernel {function!r}")
        self._host_impls[function] = fn

    def host_impl(self, function: str) -> Optional[Callable]:
        return self._host_impls.get(function)

    # ------------------------------------------------------------------
    def enable_acceleration(
        self,
        function: str,
        tool: Optional[HlsTool] = None,
        constraints: SynthesisConstraints = SynthesisConstraints(),
    ) -> int:
        """Extension #3: mark ``function`` as hardware-acceleratable.

        Runs the HLS flow now (compile time); FPGA devices load the
        resulting modules on demand at runtime.  Returns the number of
        module variants produced.
        """
        if function not in self.registry:
            raise KeyError(f"program has no kernel {function!r}")
        if function in self._accelerated:
            return len(self.library.variants(function))
        report = (tool or HlsTool()).compile(
            self.registry.kernel(function), self.library, constraints
        )
        self._accelerated.add(function)
        return len(report.modules)

    def is_accelerated(self, function: str) -> bool:
        return function in self._accelerated
