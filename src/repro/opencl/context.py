"""Contexts and PGAS-scoped buffers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.memory.address import AddressRange
from repro.opencl.platform import Device, Platform
from repro.opencl.types import DataScope
from repro.pgas.allocator import Allocation


class Buffer:
    """A global-memory buffer with an ECOSCALE data scope.

    The buffer is backed by a *real* numpy array (so kernels can compute
    real results) and by a *simulated* allocation in the Compute Node's
    UNIMEM space (so every access has a home, a cacheable owner, and a
    cost).
    """

    def __init__(
        self,
        context: "Context",
        size_bytes: int,
        scope: DataScope = DataScope.PARTITION,
        affinity_worker: int = 0,
        dtype=np.uint8,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"buffer size must be positive, got {size_bytes}")
        self.context = context
        self.scope = scope
        self.size_bytes = size_bytes
        itemsize = np.dtype(dtype).itemsize
        if size_bytes % itemsize:
            raise ValueError(
                f"size {size_bytes} is not a multiple of dtype size {itemsize}"
            )
        self.array = np.zeros(size_bytes // itemsize, dtype=dtype)
        self.allocation: Allocation = context.platform.node.allocator.allocate(
            size_bytes, affinity_worker
        )
        self._released = False

    @property
    def home_worker(self) -> int:
        """The NUMA domain (Worker) currently backing the buffer."""
        return self.allocation.domain_id

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.allocation.base, self.size_bytes)

    @property
    def cacheable_owner(self) -> int:
        """Who may cache the buffer's first page right now (UNIMEM home)."""
        return self.context.platform.node.unimem.page_home(self.allocation.base)

    def migrate(self, new_owner: int) -> int:
        """The consistency abstraction: re-home the buffer's pages so
        ``new_owner`` may cache them (everyone else goes uncached).
        Returns pages moved."""
        node = self.context.platform.node
        return node.unimem.rehome_range(self.range, new_owner)

    def release(self) -> None:
        if not self._released:
            self.context.platform.node.allocator.free(self.allocation)
            self._released = True

    def __len__(self) -> int:
        return self.array.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Buffer {self.size_bytes}B scope={self.scope.value} "
            f"home=w{self.home_worker}>"
        )


class Context:
    """An OpenCL context over some of the platform's devices."""

    def __init__(self, platform: Platform, devices: Optional[List[Device]] = None) -> None:
        self.platform = platform
        self.devices = list(devices) if devices is not None else platform.devices()
        if not self.devices:
            raise ValueError("a context needs at least one device")
        self.buffers: List[Buffer] = []

    def create_buffer(
        self,
        size_bytes: int,
        scope: DataScope = DataScope.PARTITION,
        affinity_worker: int = 0,
        dtype=np.uint8,
    ) -> Buffer:
        buf = Buffer(self, size_bytes, scope, affinity_worker, dtype)
        self.buffers.append(buf)
        return buf

    def release_all(self) -> None:
        for buf in self.buffers:
            buf.release()
        self.buffers.clear()
