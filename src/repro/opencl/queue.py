"""Command queues: per-device and distributed.

The per-device :class:`CommandQueue` gives standard OpenCL in-order
semantics.  :class:`DistributedCommandQueue` is the Section 4.4
extension: one logical queue spanning every Worker of the node, with
"transparent command queue management" -- each ND-range is routed to the
device nearest its data, choosing CPU vs. FPGA by estimated cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.interconnect.message import TransactionType
from repro.opencl.context import Buffer, Context
from repro.opencl.event import Event
from repro.opencl.platform import Device, DeviceType
from repro.opencl.program import KernelHandle
from repro.opencl.types import CommandType, DataScope
from repro.sim import AllOf, Signal, Timeout, spawn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime.policy import SchedulingPolicy

#: host bridge cost for read/write (PCIe/DMA-engine class)
_HOST_BW_GBPS = 8.0
_HOST_LATENCY_NS = 500.0


def _buffer_args(kernel: KernelHandle) -> List[Buffer]:
    return [a for a in kernel.args if isinstance(a, Buffer)]


class CommandQueue:
    """A queue bound to one device.

    ``in_order=True`` (the OpenCL default) serializes commands in
    submission order; ``in_order=False`` gives an out-of-order queue
    where only explicit ``wait_for`` event dependencies order execution
    -- commands with disjoint dependencies overlap on the device's
    parallel resources.
    """

    def __init__(self, context: Context, device: Device, in_order: bool = True) -> None:
        if device not in context.devices:
            raise ValueError(f"device {device.name} is not in this context")
        self.context = context
        self.device = device
        self.in_order = in_order
        self.node = context.platform.node
        self.sim = self.node.sim
        self._last_event: Optional[Event] = None
        self.events: List[Event] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _submit(self, command: CommandType, body, wait_for: Sequence[Event]) -> Event:
        event = Event(self.sim, command)
        deps = [e.signal for e in wait_for]
        if self.in_order and self._last_event is not None:
            deps.append(self._last_event.signal)  # in-order semantics

        def runner() -> Generator:
            if deps:
                yield AllOf(deps)
            event._start()
            result = yield from body()
            event._finish(result)

        spawn(self.sim, runner(), name=f"q.{command.value}")
        self._last_event = event
        self.events.append(event)
        return event

    def finish(self) -> None:
        """Block the host until every enqueued command completed."""
        pending = [e for e in self.events if not e.complete]
        for event in pending:
            event.wait()

    @property
    def outstanding(self) -> int:
        return sum(1 for e in self.events if not e.complete)

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def enqueue_nd_range(
        self,
        kernel: KernelHandle,
        global_size: int,
        wait_for: Sequence[Event] = (),
        work_groups: Optional[int] = None,
    ) -> Event:
        """Enqueue one ND-range.

        ``work_groups`` splits the range into that many independent
        chunks; on a CPU device the chunks run on separate cores
        concurrently (OpenCL work-group semantics), bounded by the
        Worker's core count.  ``None`` keeps the single-stream behaviour.
        """
        if global_size <= 0:
            raise ValueError(f"global_size must be positive, got {global_size}")
        if work_groups is not None and work_groups < 1:
            raise ValueError(f"work_groups must be >= 1, got {work_groups}")
        program = kernel.program
        function = kernel.function
        device = self.device
        worker = device.worker
        # snapshot the bound arguments now: OpenCL semantics are that
        # clSetKernelArg after enqueue does not affect queued commands.
        args = tuple(kernel.args)
        buffers = [a for a in args if isinstance(a, Buffer)]

        def body() -> Generator:
            # functional execution first: results are exact regardless of
            # the timing model.
            impl = program.host_impl(function)
            if impl is not None:
                impl(*args)

            # data path: pull every non-resident buffer through UNIMEM
            for buf in buffers:
                if buf.home_worker != worker.worker_id:
                    if buf.scope is DataScope.DEVICE:
                        # classic OpenCL: explicit copy to the device
                        yield from self.node.transfer(
                            buf.home_worker,
                            worker.worker_id,
                            buf.size_bytes,
                            TransactionType.DMA,
                        )
                    else:
                        # PGAS scope: direct loads/stores, page-granular
                        yield from self.node.remote_access(
                            worker.worker_id, buf.range, is_write=False
                        )

            ir = kernel.kernel_ir
            if device.device_type is DeviceType.CPU:
                if work_groups is None or work_groups == 1:
                    yield from worker.run_software(ir, global_size)
                else:
                    # work-group parallelism: chunks on separate cores,
                    # naturally bounded by the CPU Resource's capacity.
                    # One batched acquire/release cycle covers the whole
                    # ND-range instead of one Process per work-group.
                    groups = min(work_groups, global_size)
                    base = global_size // groups
                    extra = global_size % groups
                    chunks = [
                        base + (1 if g < extra else 0) for g in range(groups)
                    ]
                    yield from worker.run_software_batch(ir, chunks)
                return {"device": "cpu", "worker": worker.worker_id}

            # FPGA path: on-demand acceleration (extension #3)
            if worker.hosted_region(function) is None:
                if not program.is_accelerated(function):
                    raise LookupError(
                        f"kernel {function!r} was not enabled for acceleration"
                    )
                capacity = max(
                    (r.capacity for r in worker.fabric.regions),
                    key=lambda c: c.area_units(),
                )
                module = program.library.best_variant(
                    function, capacity=capacity, items_hint=global_size
                )
                if module is None:
                    raise LookupError(
                        f"no variant of {function!r} fits this fabric"
                    )
                yield from worker.load_module(module)
            yield from worker.run_hardware(function, global_size)
            return {"device": "fpga", "worker": worker.worker_id}

        return self._submit(CommandType.ND_RANGE, body, wait_for)

    def enqueue_write(
        self, buf: Buffer, data: np.ndarray, wait_for: Sequence[Event] = ()
    ) -> Event:
        if data.nbytes != buf.size_bytes:
            raise ValueError(
                f"host data is {data.nbytes}B, buffer is {buf.size_bytes}B"
            )

        def body() -> Generator:
            buf.array[:] = data.view(buf.array.dtype)
            yield Timeout(_HOST_LATENCY_NS + buf.size_bytes / _HOST_BW_GBPS)
            return buf

        return self._submit(CommandType.WRITE, body, wait_for)

    def enqueue_read(self, buf: Buffer, wait_for: Sequence[Event] = ()) -> Event:
        def body() -> Generator:
            yield Timeout(_HOST_LATENCY_NS + buf.size_bytes / _HOST_BW_GBPS)
            return buf.array.copy()

        return self._submit(CommandType.READ, body, wait_for)

    def enqueue_copy(
        self, src: Buffer, dst: Buffer, wait_for: Sequence[Event] = ()
    ) -> Event:
        """Extension #2: partition-to-partition transfer by direct
        loads/stores over the interconnect -- never through the host."""
        if src.size_bytes != dst.size_bytes:
            raise ValueError("copy requires equally sized buffers")

        def body() -> Generator:
            dst.array[:] = src.array.view(dst.array.dtype)
            if src.home_worker != dst.home_worker:
                yield from self.node.transfer(
                    src.home_worker,
                    dst.home_worker,
                    src.size_bytes,
                    TransactionType.STORE,
                )
            else:
                yield from self.node.workers[src.home_worker].local_stream(
                    0, src.size_bytes, is_write=True
                )
            return dst

        return self._submit(CommandType.COPY, body, wait_for)

    def enqueue_migrate(
        self, buf: Buffer, target_worker: int, wait_for: Sequence[Event] = ()
    ) -> Event:
        """Extension #1's consistency primitive: move the cacheable home."""

        def body() -> Generator:
            if buf.cacheable_owner != target_worker:
                # dirty lines at the old home are flushed over the NoC
                yield from self.node.transfer(
                    buf.cacheable_owner,
                    target_worker,
                    buf.size_bytes,
                    TransactionType.DMA,
                )
            pages = buf.migrate(target_worker)
            return pages

        return self._submit(CommandType.MIGRATE, body, wait_for)

    def enqueue_marker(self, wait_for: Sequence[Event] = ()) -> Event:
        def body() -> Generator:
            if False:  # pragma: no cover - generator marker
                yield None
            return None

        return self._submit(CommandType.MARKER, body, wait_for)

    def enqueue_barrier(self) -> Event:
        """A marker depending on *every* outstanding command -- the
        synchronization point for out-of-order queues."""
        outstanding = [e for e in self.events if not e.complete]
        return self.enqueue_marker(wait_for=outstanding)


class DistributedCommandQueue:
    """One logical queue across all Workers of the node (Section 4.4).

    ND-ranges are routed to the Worker that *homes* the kernel's first
    buffer (data locality first), then to CPU vs. FPGA by the routing
    policy (a :class:`~repro.core.runtime.policy.SchedulingPolicy`;
    default greedy cost compare); per-Worker in-order queues run
    concurrently with each other, giving transparent cross-worker queue
    management.
    """

    def __init__(
        self, context: Context, policy: Optional["SchedulingPolicy"] = None
    ) -> None:
        from repro.core.runtime.policy import GreedyHardwarePolicy

        self.context = context
        self.node = context.platform.node
        self.policy = policy if policy is not None else GreedyHardwarePolicy()
        self._queues: dict = {}
        for device in context.devices:
            self._queues[(device.worker_id, device.device_type)] = CommandQueue(
                context, device
            )
        self.routed_to_fpga = 0
        self.routed_to_cpu = 0

    def queue_for(self, worker_id: int, device_type: DeviceType) -> CommandQueue:
        key = (worker_id, device_type)
        if key not in self._queues:
            raise KeyError(f"no {device_type.value} queue on worker {worker_id}")
        return self._queues[key]

    # ------------------------------------------------------------------
    def _route(self, kernel: KernelHandle, global_size: int) -> CommandQueue:
        buffers = _buffer_args(kernel)
        target_worker = buffers[0].home_worker if buffers else 0
        worker = self.node.worker(target_worker)

        if self.policy.route_ndrange(worker, kernel, global_size):
            self.routed_to_fpga += 1
            return self.queue_for(target_worker, DeviceType.FPGA)
        self.routed_to_cpu += 1
        return self.queue_for(target_worker, DeviceType.CPU)

    def enqueue_nd_range(
        self,
        kernel: KernelHandle,
        global_size: int,
        wait_for: Sequence[Event] = (),
    ) -> Event:
        queue = self._route(kernel, global_size)
        return queue.enqueue_nd_range(kernel, global_size, wait_for)

    def finish(self) -> None:
        for queue in self._queues.values():
            queue.finish()

    @property
    def outstanding(self) -> int:
        return sum(q.outstanding for q in self._queues.values())
