"""The ECOSCALE OpenCL-style programming environment.

Section 4.2 lists the three extensions over a standard OpenCL framework,
all implemented here:

1. "supporting a partitioned global address space within and between
   ECOSCALE workers and nodes, via the introduction of new data scoping
   and consistency abstractions" -- :class:`DataScope` on buffers, and
   UNIMEM page-home migration as the consistency primitive
   (:meth:`Buffer.migrate`).
2. "extending the semantics and providing a scalable and efficient
   implementation of OpenCL data transfers between partitions of the
   address space ... by using direct loads and stores from and to remote
   shared memories" -- :meth:`CommandQueue.enqueue_copy` routes over the
   UNIMEM interconnect, not through the host.
3. "allowing the programmer to specify functions that can be synthesized
   in hardware and can be accelerated, on-demand, at runtime" --
   :meth:`Program.enable_acceleration` plus FPGA devices that load
   modules lazily on first use.

Section 4.4 adds "multiple workers ('devices' ...), distributed command
queues and transparent command queue management across workers in a
node" -- :class:`DistributedCommandQueue`.
"""

from repro.opencl.cluster import ClusterContext
from repro.opencl.context import Buffer, Context
from repro.opencl.event import Event
from repro.opencl.platform import Device, DeviceType, Platform
from repro.opencl.program import KernelHandle, Program
from repro.opencl.queue import CommandQueue, DistributedCommandQueue
from repro.opencl.types import DataScope

__all__ = [
    "Buffer",
    "ClusterContext",
    "CommandQueue",
    "Context",
    "DataScope",
    "Device",
    "DeviceType",
    "DistributedCommandQueue",
    "Event",
    "KernelHandle",
    "Platform",
    "Program",
]
