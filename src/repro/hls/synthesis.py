"""End-to-end synthesis: kernel -> placed accelerator modules.

This is the compile-time half of Fig. 2's middle layer: the HLS tool picks
implementation points (:mod:`repro.hls.dse`), the Physical Implementation
Tool floorplans each one onto the fabric grid (GoAhead-style,
:mod:`repro.fabric.floorplan`), assembles the partial bitstream, and the
results land in the runtime's :class:`~repro.fabric.ModuleLibrary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fabric.bitstream import Bitstream
from repro.fabric.floorplan import Floorplanner, TileGrid
from repro.fabric.module_library import AcceleratorModule, ModuleLibrary
from repro.fabric.resources import ResourceVector
from repro.hls.dse import DesignPoint, DesignSpaceExplorer, pareto_front
from repro.hls.ir import Kernel


@dataclass(frozen=True)
class SynthesisConstraints:
    """What the programmer may pin down; everything else is automated."""

    area_budget: Optional[ResourceVector] = None
    target_latency_ns: Optional[float] = None
    items_hint: int = 4096
    max_variants: int = 3

    def __post_init__(self) -> None:
        if self.max_variants < 1:
            raise ValueError("need at least one variant")
        if self.items_hint < 1:
            raise ValueError("items_hint must be positive")


@dataclass
class SynthesisReport:
    """What the tool did for one kernel."""

    kernel: Kernel
    explored: int
    front_size: int
    chosen: List[DesignPoint] = field(default_factory=list)
    modules: List[AcceleratorModule] = field(default_factory=list)


class HlsTool:
    """The ECOSCALE HLS + physical implementation pipeline."""

    def __init__(
        self,
        grid: Optional[TileGrid] = None,
        explorer: Optional[DesignSpaceExplorer] = None,
    ) -> None:
        self.grid = grid or TileGrid.standard()
        self.floorplanner = Floorplanner(self.grid)
        self.explorer = explorer or DesignSpaceExplorer()

    # ------------------------------------------------------------------
    def _region_budget(self, constraints: SynthesisConstraints) -> ResourceVector:
        if constraints.area_budget is not None:
            return constraints.area_budget
        return self.grid.total_resources

    def _select_points(
        self, kernel: Kernel, constraints: SynthesisConstraints
    ) -> tuple:
        budget = self._region_budget(constraints)
        points = self.explorer.explore(kernel, area_budget=budget)
        front = pareto_front(points)
        if not front:
            return points, front, []
        # spread picks across the front: smallest, fastest, and the knee
        chosen: List[DesignPoint] = []
        by_area = sorted(front, key=lambda p: p.area)
        chosen.append(by_area[0])
        if len(by_area) > 1:
            chosen.append(by_area[-1])
        if len(by_area) > 2 and constraints.max_variants > 2:
            knee = max(
                by_area[1:-1],
                key=lambda p: p.throughput / max(p.area, 1e-9),
            )
            if knee not in chosen:
                chosen.append(knee)
        # honor a latency target by ensuring a meeting point is included
        if constraints.target_latency_ns is not None:
            best = self.explorer.best_under_constraints(
                kernel,
                budget,
                constraints.target_latency_ns,
                constraints.items_hint,
            )
            if best is not None and best not in chosen:
                chosen.append(best)
        return points, front, chosen[: constraints.max_variants]

    def _build_module(self, point: DesignPoint, variant_idx: int) -> Optional[AcceleratorModule]:
        placement = self.floorplanner.smallest_span(point.estimate.resources)
        if placement is None:
            return None
        fill = self.floorplanner.fill_fraction(point.estimate.resources, placement)
        name = f"{point.kernel.name}.{point.config.label()}"
        bitstream = Bitstream.synthesize(
            name, placement.frames, fill, seed=hash(name) & 0xFFFF
        )
        est = point.estimate
        return AcceleratorModule(
            name=name,
            function=point.kernel.name,
            resources=est.resources,
            bitstream=bitstream,
            initiation_interval=est.initiation_interval,
            pipeline_depth=est.pipeline_depth,
            clock_ns=est.clock_ns,
            energy_per_item_pj=est.energy_per_item_pj,
            static_power_mw=est.static_power_mw,
            parallel_lanes=est.lanes,
        )

    # ------------------------------------------------------------------
    def compile(
        self,
        kernel: Kernel,
        library: ModuleLibrary,
        constraints: SynthesisConstraints = SynthesisConstraints(),
    ) -> SynthesisReport:
        """Explore, choose variants, floorplan, and register modules."""
        points, front, chosen = self._select_points(kernel, constraints)
        report = SynthesisReport(
            kernel=kernel,
            explored=len(points),
            front_size=len(front),
            chosen=list(chosen),
        )
        for i, point in enumerate(chosen):
            module = self._build_module(point, i)
            if module is not None:
                library.add(module)
                report.modules.append(module)
        return report
