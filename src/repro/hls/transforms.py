"""HLS transformation configuration.

One :class:`HlsConfig` describes a point in the implementation space the
paper's tool explores automatically: pipelining, loop unrolling, array
(data storage) partitioning, and datapath duplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence

from repro.hls.ir import Kernel


@dataclass(frozen=True)
class HlsConfig:
    """One implementation choice for a kernel.

    - ``pipeline``: pipeline the innermost loop (II as computed) or leave
      it sequential (II = full body latency).
    - ``unroll``: innermost-loop unroll factor (replicates the body
      datapath; reduces trip count).
    - ``partition``: per-array cyclic partitioning factor (multiplies
      available memory ports and BRAM usage).
    - ``duplicate``: whole-datapath duplication ("and duplication",
      Section 4.3) -- independent lanes fed round-robin, the coarse
      parallelism knob.
    - ``dram_ports``: AXI masters to off-chip DRAM for arrays too big to
      live on-chip -- "architectural decisions, such as the DRAM port
      parallelism" that the ECOSCALE tool automates (Section 4.3).
    """

    pipeline: bool = True
    unroll: int = 1
    partition: Dict[str, int] = field(default_factory=dict)
    duplicate: int = 1
    dram_ports: int = 1

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise ValueError(f"unroll factor must be >= 1, got {self.unroll}")
        if self.duplicate < 1:
            raise ValueError(f"duplicate factor must be >= 1, got {self.duplicate}")
        if self.dram_ports < 1:
            raise ValueError(f"need at least one DRAM port, got {self.dram_ports}")
        for name, factor in self.partition.items():
            if factor < 1:
                raise ValueError(f"partition factor for {name!r} must be >= 1")

    def partition_of(self, array_name: str) -> int:
        return self.partition.get(array_name, 1)

    def cache_key(self) -> tuple:
        """Hashable identity (the ``partition`` dict bars direct hashing)."""
        try:
            return self._cache_key  # type: ignore[attr-defined]
        except AttributeError:
            key = (
                self.pipeline,
                self.unroll,
                tuple(sorted(self.partition.items())),
                self.duplicate,
                self.dram_ports,
            )
            object.__setattr__(self, "_cache_key", key)
            return key

    def label(self) -> str:
        parts = ["pipe" if self.pipeline else "seq", f"u{self.unroll}", f"d{self.duplicate}"]
        if self.dram_ports > 1:
            parts.append(f"m{self.dram_ports}")
        if self.partition:
            parts.append(
                "p" + "-".join(f"{k}{v}" for k, v in sorted(self.partition.items()))
            )
        return "_".join(parts)

    # HlsConfig must be hashable for DSE dedup; dict isn't, so freeze it.
    def __hash__(self) -> int:
        return hash(
            (
                self.pipeline,
                self.unroll,
                self.duplicate,
                self.dram_ports,
                tuple(sorted(self.partition.items())),
            )
        )


def default_config_grid(
    kernel: Kernel,
    unroll_factors: Sequence[int] = (1, 2, 4, 8, 16),
    duplicate_factors: Sequence[int] = (1, 2, 4),
    partition_factors: Sequence[int] = (1, 2, 4, 8),
    dram_port_counts: Sequence[int] = (1, 2, 4),
) -> Iterator[HlsConfig]:
    """The default design-space grid the explorer sweeps.

    Partitioning is applied uniformly to all arrays (per-array asymmetric
    partitioning explodes the space; the estimator's port model makes the
    uniform choice near-optimal for balanced kernels).  Unroll factors
    beyond the inner trip count are skipped.  DRAM port counts are only
    swept when some array is too large to live on-chip (the estimator's
    streaming threshold) -- otherwise the knob is dead weight.
    """
    from repro.hls.estimator import ON_CHIP_BYTES_LIMIT

    streamed = any(
        a.footprint_elems * a.elem_bytes > ON_CHIP_BYTES_LIMIT
        for a in kernel.arrays
    )
    port_counts = dram_port_counts if streamed else (1,)
    for pipeline in (True, False):
        for unroll in unroll_factors:
            if unroll > kernel.inner_trip:
                continue
            for dup in duplicate_factors:
                for pf in partition_factors:
                    partition = {a.name: pf for a in kernel.arrays}
                    for ports in port_counts:
                        yield HlsConfig(
                            pipeline=pipeline,
                            unroll=unroll,
                            partition=partition,
                            duplicate=dup,
                            dram_ports=ports,
                        )
