"""Design-space exploration under area/performance constraints.

"The ECOSCALE HLS tool will tackle this problem by providing a way to
specify performance and area constraints, and then automatically exploring
high-performance hardware implementation techniques" (Section 4.3).

The explorer sweeps a configuration grid, estimates every point, discards
infeasible ones, and reports the area/throughput Pareto front plus the
best point under the given constraints -- the automation that replaces the
"experienced designer" current tools require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.fabric.resources import ResourceVector
from repro.hls.estimator import Estimate, HlsEstimator
from repro.hls.ir import Kernel
from repro.hls.transforms import HlsConfig, default_config_grid


@dataclass(frozen=True)
class DesignPoint:
    """One explored implementation: config + its estimate."""

    kernel: Kernel
    config: HlsConfig
    estimate: Estimate

    @property
    def area(self) -> float:
        return self.estimate.resources.area_units()

    @property
    def throughput(self) -> float:
        return self.estimate.throughput_items_per_us()

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse in both axes, better in one."""
        return (
            self.area <= other.area
            and self.throughput >= other.throughput
            and (self.area < other.area or self.throughput > other.throughput)
        )


def pareto_front(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by ascending area."""
    pts = list(points)
    front = [
        p
        for p in pts
        if not any(q.dominates(p) for q in pts if q is not p)
    ]
    # dedup equal (area, throughput) pairs
    seen = set()
    unique = []
    for p in sorted(front, key=lambda p: (p.area, -p.throughput)):
        key = (round(p.area, 6), round(p.throughput, 9))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


class DesignSpaceExplorer:
    """Sweeps a config grid for one kernel."""

    def __init__(self, estimator: Optional[HlsEstimator] = None) -> None:
        self.estimator = estimator or HlsEstimator()

    def explore(
        self,
        kernel: Kernel,
        configs: Optional[Sequence[HlsConfig]] = None,
        area_budget: Optional[ResourceVector] = None,
    ) -> List[DesignPoint]:
        """Estimate every config; drop those exceeding ``area_budget``."""
        if configs is None:
            configs = list(default_config_grid(kernel))
        points = []
        seen = set()
        for config in configs:
            if config in seen:
                continue
            seen.add(config)
            est = self.estimator.estimate(kernel, config)
            if area_budget is not None and not est.resources.fits_in(area_budget):
                continue
            points.append(DesignPoint(kernel, config, est))
        return points

    def best_under_constraints(
        self,
        kernel: Kernel,
        area_budget: ResourceVector,
        target_latency_ns: Optional[float] = None,
        items_hint: int = 4096,
        configs: Optional[Sequence[HlsConfig]] = None,
    ) -> Optional[DesignPoint]:
        """The designer-facing query: fastest point that fits the budget;
        if a latency target is given, the *smallest* point meeting it."""
        points = self.explore(kernel, configs, area_budget)
        if not points:
            return None
        if target_latency_ns is not None:
            meeting = [
                p for p in points if p.estimate.latency_ns(items_hint) <= target_latency_ns
            ]
            if meeting:
                return min(meeting, key=lambda p: p.area)
        return min(points, key=lambda p: p.estimate.latency_ns(items_hint))

    def front(
        self,
        kernel: Kernel,
        configs: Optional[Sequence[HlsConfig]] = None,
        area_budget: Optional[ResourceVector] = None,
    ) -> List[DesignPoint]:
        return pareto_front(self.explore(kernel, configs, area_budget))
