"""Resource, timing and energy estimation for a (kernel, config) pair.

The models are the standard first-order ones a scheduler-binder uses:

- **II bound** = max(recurrence bound, memory port bound, 1).
  Recurrence: ``ceil(chain_latency / distance)`` (loop-carried
  dependences cap pipelining).  Memory: each array partition offers two
  BRAM ports; an unrolled body needs ``accesses * unroll`` ports per II.
- **Depth** = sum of the distinct operator latencies on the critical path
  plus memory pipeline stages.
- **Resources** = per-iteration operator mix x unroll x duplicate, plus
  partitioned BRAM, plus pipeline registers.
- **Clock** degrades slowly with datapath width (routing pressure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.fabric.resources import ResourceVector
from repro.hls.ir import Kernel, OpKind
from repro.hls.transforms import HlsConfig


@dataclass(frozen=True)
class OpCost:
    """Hardware cost of one operator instance."""

    resources: ResourceVector
    latency_cycles: int
    energy_pj: float  # per executed operation


#: Calibrated against published Vivado HLS operator characterizations
#: (single-precision float, 7-series class fabric).
OP_COSTS: Dict[OpKind, OpCost] = {
    OpKind.ADD: OpCost(ResourceVector(luts=220, ffs=330), 3, 6.0),
    OpKind.MUL: OpCost(ResourceVector(luts=90, ffs=150, dsps=3), 4, 9.0),
    OpKind.DIV: OpCost(ResourceVector(luts=800, ffs=1200), 16, 60.0),
    OpKind.SQRT: OpCost(ResourceVector(luts=600, ffs=900), 14, 50.0),
    OpKind.CMP: OpCost(ResourceVector(luts=40, ffs=40), 1, 1.0),
    OpKind.LOGIC: OpCost(ResourceVector(luts=30, ffs=30), 1, 0.8),
    OpKind.EXP: OpCost(ResourceVector(luts=1400, ffs=1800, brams=2, dsps=8), 20, 90.0),
}

#: pipeline stages charged for on-chip memory access
_MEM_LATENCY = 2
#: BRAM ports per partition (true dual-port block RAM)
_PORTS_PER_PARTITION = 2
#: base fabric clock period (200 MHz)
_BASE_CLOCK_NS = 5.0
#: 18 Kib BRAM capacity in bytes
_BRAM_BYTES = 2304
#: arrays larger than this cannot be buffered on-chip: they stream from
#: DRAM through the config's ``dram_ports`` AXI masters
ON_CHIP_BYTES_LIMIT = 256 * 1024
#: bytes one 64-bit AXI master moves per fabric cycle
_AXI_BYTES_PER_CYCLE = 8
#: logic cost of one AXI master (address generators, bursting, FIFOs)
_AXI_PORT_RESOURCES = ResourceVector(luts=600, ffs=800, brams=2)
#: extra pipeline stages for the DRAM access path
_DRAM_LATENCY_CYCLES = 12


def _is_streamed(array) -> bool:
    return array.footprint_elems * array.elem_bytes > ON_CHIP_BYTES_LIMIT


@dataclass(frozen=True)
class Estimate:
    """The estimator's verdict for one design point."""

    initiation_interval: int
    pipeline_depth: int
    clock_ns: float
    resources: ResourceVector
    lanes: int
    energy_per_item_pj: float
    static_power_mw: float

    def cycles(self, items: int) -> float:
        """Total fabric cycles to process ``items`` innermost iterations."""
        if items <= 0:
            raise ValueError(f"items must be positive, got {items}")
        per_lane = math.ceil(items / self.lanes)
        return self.pipeline_depth + (per_lane - 1) * self.initiation_interval

    def latency_ns(self, items: int) -> float:
        return self.cycles(items) * self.clock_ns

    def throughput_items_per_us(self) -> float:
        return 1000.0 * self.lanes / (self.initiation_interval * self.clock_ns)


class HlsEstimator:
    """Estimates one (kernel, config) implementation."""

    def __init__(self, op_costs: Dict[OpKind, OpCost] = OP_COSTS) -> None:
        self.op_costs = op_costs
        # (kernel key, config key) -> Estimate.  Every input is immutable
        # and Estimate is frozen, so sharing the result object is safe;
        # design-space exploration re-estimates the same points constantly.
        self._estimate_memo: Dict[tuple, Estimate] = {}

    # ------------------------------------------------------------------
    def initiation_interval(self, kernel: Kernel, config: HlsConfig) -> int:
        if not config.pipeline:
            # sequential loop: a new iteration starts only after the body
            return max(1, self.pipeline_depth(kernel, config))
        ii = 1
        if kernel.recurrence is not None:
            distance, latency = kernel.recurrence
            ii = max(ii, math.ceil(latency / distance))
        streamed_bytes_per_iter = 0.0
        for array in kernel.arrays:
            if _is_streamed(array):
                # off-chip: bandwidth shared by all streamed arrays
                streamed_bytes_per_iter += (
                    array.accesses_per_iter * array.elem_bytes * config.unroll
                )
                continue
            ports_available = _PORTS_PER_PARTITION * config.partition_of(array.name)
            ports_needed = array.accesses_per_iter * config.unroll
            if ports_needed > 0:
                ii = max(ii, math.ceil(ports_needed / ports_available))
        if streamed_bytes_per_iter > 0:
            bandwidth = config.dram_ports * _AXI_BYTES_PER_CYCLE
            ii = max(ii, math.ceil(streamed_bytes_per_iter / bandwidth))
        return ii

    def pipeline_depth(self, kernel: Kernel, config: HlsConfig) -> int:
        depth = _MEM_LATENCY
        if any(_is_streamed(a) for a in kernel.arrays):
            depth += _DRAM_LATENCY_CYCLES
        for kind, count in kernel.ops.items():
            if count > 0:
                depth += self.op_costs[kind].latency_cycles
        # unrolled reductions add a log-depth combine tree
        if config.unroll > 1:
            depth += math.ceil(math.log2(config.unroll))
        return depth

    def clock_ns(self, kernel: Kernel, config: HlsConfig) -> float:
        width = config.unroll * config.duplicate
        return _BASE_CLOCK_NS * (1.0 + 0.015 * (width - 1))

    def resources(self, kernel: Kernel, config: HlsConfig) -> ResourceVector:
        body = ResourceVector()
        for kind, count in kernel.ops.items():
            body = body + self.op_costs[kind].resources * math.ceil(count)
        datapath = body * (config.unroll * config.duplicate)

        brams = 0
        streamed = False
        for array in kernel.arrays:
            if _is_streamed(array):
                streamed = True  # buffered in per-port FIFOs, not BRAM banks
                continue
            pf = config.partition_of(array.name)
            footprint = array.footprint_elems * array.elem_bytes
            banks = pf * config.duplicate
            per_bank = math.ceil(footprint / banks / _BRAM_BYTES)
            brams += banks * max(1, per_bank)

        depth = self.pipeline_depth(kernel, config)
        registers = ResourceVector(ffs=depth * 32 * config.unroll * config.duplicate)
        control = ResourceVector(luts=150, ffs=200)  # FSM + AXI adapters
        total = datapath + ResourceVector(brams=brams) + registers + control
        if streamed:
            total = total + _AXI_PORT_RESOURCES * config.dram_ports
        return total

    # ------------------------------------------------------------------
    def estimate(self, kernel: Kernel, config: HlsConfig) -> Estimate:
        memo_key = (kernel.cache_key(), config.cache_key())
        cached = self._estimate_memo.get(memo_key)
        if cached is not None:
            return cached
        ii = self.initiation_interval(kernel, config)
        depth = self.pipeline_depth(kernel, config)
        clock = self.clock_ns(kernel, config)
        resources = self.resources(kernel, config)
        lanes = config.duplicate * config.unroll

        energy_per_item = sum(
            count * self.op_costs[kind].energy_pj for kind, count in kernel.ops.items()
        )
        # static power scales with occupied area (rough: 0.1 uW per area unit)
        static_mw = 1.0 + resources.area_units() * 1e-4
        result = self._estimate_memo[memo_key] = Estimate(
            initiation_interval=ii,
            pipeline_depth=depth,
            clock_ns=clock,
            resources=resources,
            lanes=lanes,
            energy_per_item_pj=energy_per_item,
            static_power_mw=static_mw,
        )
        return result
