"""Software (CPU) execution cost model for kernels.

The runtime's work-distribution algorithm needs a software baseline for
every accelerated function ("decide whether the function will be executed
in software or in hardware", Section 4.2).  This model prices the same
kernel IR on a Worker's ARM-class core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hls.ir import Kernel, OpKind

#: CPU cycles per operation (superscalar OoO core, cache-resident data)
_CPU_OP_CYCLES: Dict[OpKind, float] = {
    OpKind.ADD: 1.0,
    OpKind.MUL: 1.0,
    OpKind.DIV: 18.0,
    OpKind.SQRT: 16.0,
    OpKind.CMP: 0.5,
    OpKind.LOGIC: 0.5,
    OpKind.EXP: 30.0,  # libm call
}

#: cycles per array access (L1-resident; misses are charged by the memory
#: system during simulation, not here)
_CPU_MEM_CYCLES = 1.5


@dataclass(frozen=True)
class SoftwareCostModel:
    """Prices kernels on one CPU core.

    Defaults model a 2.0 GHz core with 2-wide sustained issue of the
    kernel's arithmetic (an A57/A72-class Worker CPU).
    """

    clock_ghz: float = 2.0
    issue_width: float = 2.0
    energy_per_op_pj: float = 150.0   # CPU op energy dwarfs FPGA op energy
    static_power_mw: float = 750.0    # one busy core

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0 or self.issue_width <= 0:
            raise ValueError("clock and issue width must be positive")
        # per-kernel memo: the software baseline is re-priced on every
        # scheduling decision, so this sits on the dispatch hot path
        # (frozen dataclass, hence object.__setattr__)
        object.__setattr__(self, "_cycles_memo", {})

    def cycles_per_iteration(self, kernel: Kernel) -> float:
        memo = self._cycles_memo  # type: ignore[attr-defined]
        key = kernel.cache_key()
        cycles = memo.get(key)
        if cycles is None:
            op_cycles = sum(
                count * _CPU_OP_CYCLES[kind] for kind, count in kernel.ops.items()
            )
            mem_cycles = sum(a.accesses_per_iter for a in kernel.arrays) * _CPU_MEM_CYCLES
            cycles = memo[key] = (op_cycles + mem_cycles) / self.issue_width
        return cycles

    def latency_ns(self, kernel: Kernel, items: int) -> float:
        """Time for one core to run ``items`` innermost iterations."""
        if items <= 0:
            raise ValueError(f"items must be positive, got {items}")
        cycles = self.cycles_per_iteration(kernel) * items
        return cycles / self.clock_ghz

    def energy_pj(self, kernel: Kernel, items: int) -> float:
        ops = kernel.ops_per_iteration() * items
        dynamic = ops * self.energy_per_op_pj
        static = self.static_power_mw * self.latency_ns(kernel, items)
        return dynamic + static
