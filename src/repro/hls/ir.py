"""Kernel intermediate representation for the HLS tool."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple


class OpKind(Enum):
    """Datapath operation classes with distinct hardware costs."""

    ADD = "add"        # fp add/sub
    MUL = "mul"        # fp multiply
    DIV = "div"        # fp divide
    SQRT = "sqrt"
    CMP = "cmp"        # compares / select
    LOGIC = "logic"    # bitwise / integer index math
    EXP = "exp"        # transcendental (exp/log/sin) -- table+poly datapath


@dataclass(frozen=True)
class ArrayArg:
    """One array argument of the kernel.

    ``reads_per_iter`` / ``writes_per_iter`` count accesses per innermost
    iteration; together with a partitioning factor they determine the
    memory-port component of the initiation interval.
    """

    name: str
    elem_bytes: int = 4
    reads_per_iter: float = 0.0
    writes_per_iter: float = 0.0
    footprint_elems: int = 1024   # on-chip buffer size (drives BRAM count)

    def __post_init__(self) -> None:
        if self.elem_bytes <= 0:
            raise ValueError(f"elem_bytes must be positive, got {self.elem_bytes}")
        if self.reads_per_iter < 0 or self.writes_per_iter < 0:
            raise ValueError("access counts must be non-negative")
        if self.footprint_elems < 1:
            raise ValueError("footprint must be at least one element")

    @property
    def accesses_per_iter(self) -> float:
        return self.reads_per_iter + self.writes_per_iter


@dataclass(frozen=True)
class Kernel:
    """A perfectized loop nest with a characterized innermost body.

    ``trip_counts`` are outer-to-inner; only the innermost loop is
    pipelined/unrolled by the transforms (standard HLS practice).

    ``recurrence`` models a loop-carried dependence as
    ``(distance, chain_latency_cycles)``: the classic bound
    ``II >= ceil(chain_latency / distance)``.  ``None`` means the loop is
    fully parallel (II can reach 1).
    """

    name: str
    trip_counts: Tuple[int, ...]
    ops: Dict[OpKind, float] = field(default_factory=dict)
    arrays: Tuple[ArrayArg, ...] = ()
    recurrence: Optional[Tuple[int, int]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.trip_counts or any(t < 1 for t in self.trip_counts):
            raise ValueError(f"trip counts must be positive, got {self.trip_counts}")
        for kind, count in self.ops.items():
            if not isinstance(kind, OpKind):
                raise ValueError(f"ops keys must be OpKind, got {kind!r}")
            if count < 0:
                raise ValueError(f"op count for {kind} must be non-negative")
        if self.recurrence is not None:
            distance, latency = self.recurrence
            if distance < 1 or latency < 1:
                raise ValueError(f"invalid recurrence {self.recurrence}")
        names = [a.name for a in self.arrays]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate array names in {names}")

    def cache_key(self) -> tuple:
        """A hashable identity for memoizing cost-model evaluations.

        Kernels carry a dict field (``ops``) so the dataclass itself is
        unhashable; this canonicalizes every field.  Computed once and
        attached (the dataclass is frozen, hence ``object.__setattr__``).
        """
        try:
            return self._cache_key  # type: ignore[attr-defined]
        except AttributeError:
            key = (
                self.name,
                self.trip_counts,
                tuple(sorted((k.value, v) for k, v in self.ops.items())),
                self.arrays,
                self.recurrence,
            )
            object.__setattr__(self, "_cache_key", key)
            return key

    @property
    def inner_trip(self) -> int:
        return self.trip_counts[-1]

    @property
    def outer_iterations(self) -> int:
        total = 1
        for t in self.trip_counts[:-1]:
            total *= t
        return total

    @property
    def total_iterations(self) -> int:
        return self.outer_iterations * self.inner_trip

    def array(self, name: str) -> ArrayArg:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"kernel {self.name!r} has no array {name!r}")

    def ops_per_iteration(self) -> float:
        return sum(self.ops.values())

    def bytes_per_iteration(self) -> float:
        return sum(a.accesses_per_iter * a.elem_bytes for a in self.arrays)

    def arithmetic_intensity(self) -> float:
        """FLOP-ish per byte -- high intensity kernels are the FPGA wins."""
        b = self.bytes_per_iteration()
        return self.ops_per_iteration() / b if b else float("inf")
