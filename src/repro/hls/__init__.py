"""The ECOSCALE high-level synthesis tool.

Extends the FASTCUDA-style flow the paper describes (Section 4.3): from a
"non-hardware specific OpenCL model" of a kernel, the tool

- estimates timing and FPGA resources (:mod:`repro.hls.estimator`),
- applies "high-performance hardware implementation techniques, such as
  pipelining, loop unrolling, as well as data storage and data-path
  partitioning and duplication" (:mod:`repro.hls.transforms`),
- automatically explores the "huge cost/performance trade-off space"
  under user area/performance constraints (:mod:`repro.hls.dse`),
- and emits placed, bitstream-backed accelerator modules into the
  runtime's module library (:mod:`repro.hls.synthesis`).

The kernel IR (:mod:`repro.hls.ir`) is deliberately coarse: per-iteration
operation mix, loop nest trip counts, array access counts and loop-carried
recurrences -- exactly the features a real HLS scheduler's II/resource
models consume.
"""

from repro.hls.dse import DesignPoint, DesignSpaceExplorer, pareto_front
from repro.hls.estimator import Estimate, HlsEstimator, OP_COSTS
from repro.hls.frontend import ParseError, parse_kernel
from repro.hls.ir import ArrayArg, Kernel, OpKind
from repro.hls.kernels import (
    cart_split_kernel,
    fir_kernel,
    matmul_kernel,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
    vecadd_kernel,
)
from repro.hls.synthesis import HlsTool, SynthesisConstraints
from repro.hls.transforms import HlsConfig
from repro.hls.software import SoftwareCostModel

__all__ = [
    "ArrayArg",
    "DesignPoint",
    "DesignSpaceExplorer",
    "Estimate",
    "HlsConfig",
    "HlsEstimator",
    "HlsTool",
    "Kernel",
    "OP_COSTS",
    "OpKind",
    "ParseError",
    "SoftwareCostModel",
    "SynthesisConstraints",
    "cart_split_kernel",
    "fir_kernel",
    "matmul_kernel",
    "montecarlo_kernel",
    "pareto_front",
    "parse_kernel",
    "saxpy_kernel",
    "stencil_kernel",
    "vecadd_kernel",
]
