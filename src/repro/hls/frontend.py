"""An OpenCL-C frontend for the HLS tool.

The ECOSCALE flow starts "from a non-hardware specific OpenCL model"
(Section 4.3).  This module parses a restricted-but-real OpenCL C kernel
dialect into the :class:`~repro.hls.ir.Kernel` IR the estimator and the
design-space explorer consume.

Supported dialect::

    __kernel void saxpy(const float alpha,
                        __global const float* x,
                        __global float* y) {
        int i = get_global_id(0);
        y[i] = alpha * x[i] + y[i];
    }

- one ``__kernel void`` function per source string;
- scalar parameters (int/float/double) and ``__global`` pointer arrays;
- declarations, assignments (``=``, ``+=``, ``-=``, ``*=``, ``/=``);
- ``for`` loops with compile-time-constant bounds (literal, or supplied
  through the ``constants`` mapping);
- arithmetic (+ - * /), comparisons, logical/bitwise operators, and the
  builtins ``sqrt/exp/log/sin/cos/pow/fabs/max/min``;
- an optional ``// ecoscale: recurrence(distance, latency)`` annotation
  for loop-carried dependences the static analysis cannot prove.

The NDRange work-item dimension becomes the pipelined (innermost) loop
of the IR: per-work-item operation and access counts are what the
paper's II/resource models want.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hls.ir import ArrayArg, Kernel, OpKind


class ParseError(ValueError):
    """Raised when the source leaves the supported dialect."""


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d*f?|\.\d+f?|\d+[uUlL]*)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|[-+*/%<>=!&|^~?:])
  | (?P<punct>[()\[\]{};,])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_RECURRENCE_RE = re.compile(
    r"ecoscale:\s*recurrence\s*\(\s*(\d+)\s*,\s*(\d+)\s*\)"
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: int


def tokenize(source: str) -> Tuple[List[Token], Optional[Tuple[int, int]]]:
    """Tokens plus any recurrence annotation found in comments."""
    tokens: List[Token] = []
    recurrence: Optional[Tuple[int, int]] = None
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r} at offset {pos}")
        kind = m.lastgroup
        text = m.group()
        if kind == "comment":
            ann = _RECURRENCE_RE.search(text)
            if ann:
                recurrence = (int(ann.group(1)), int(ann.group(2)))
        elif kind != "ws":
            tokens.append(Token(kind, text, pos))
        pos = m.end()
    return tokens, recurrence


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
_SCALAR_TYPES = {"int", "uint", "float", "double", "char", "uchar", "long", "size_t"}
_ELEM_BYTES = {
    "char": 1, "uchar": 1, "int": 4, "uint": 4, "float": 4,
    "long": 8, "size_t": 8, "double": 8,
}
_BUILTIN_OPS = {
    "sqrt": OpKind.SQRT,
    "exp": OpKind.EXP,
    "log": OpKind.EXP,
    "sin": OpKind.EXP,
    "cos": OpKind.EXP,
    "pow": OpKind.EXP,
    "fabs": OpKind.LOGIC,
    "max": OpKind.CMP,
    "min": OpKind.CMP,
}
_IGNORED_CALLS = {"get_global_id", "get_local_id", "get_group_id", "get_global_size"}


@dataclass
class _Counts:
    """Operation/access tallies, weighted by enclosing loop trips."""

    ops: Dict[OpKind, float] = field(default_factory=dict)
    reads: Dict[str, float] = field(default_factory=dict)
    writes: Dict[str, float] = field(default_factory=dict)

    def add_op(self, kind: OpKind, weight: float) -> None:
        self.ops[kind] = self.ops.get(kind, 0.0) + weight

    def add_read(self, array: str, weight: float) -> None:
        self.reads[array] = self.reads.get(array, 0.0) + weight

    def add_write(self, array: str, weight: float) -> None:
        self.writes[array] = self.writes.get(array, 0.0) + weight


class _Parser:
    def __init__(self, tokens: List[Token], constants: Dict[str, int]) -> None:
        self.tokens = tokens
        self.constants = constants
        self.i = 0
        self.arrays: Dict[str, int] = {}   # name -> elem bytes
        self.counts = _Counts()
        self.kernel_name = ""
        self.inner_trips: List[int] = []

    # -- token plumbing --------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[Token]:
        idx = self.i + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of source")
        self.i += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok.text!r} at {tok.pos}")
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.text == text:
            self.i += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------
    def parse(self) -> None:
        self.expect("__kernel")
        self.expect("void")
        self.kernel_name = self.next().text
        self.expect("(")
        if not self.accept(")"):
            while True:
                self._parse_param()
                if not self.accept(","):
                    break
            self.expect(")")
        self.expect("{")
        self._parse_block(weight=1.0)

    def _parse_param(self) -> None:
        is_pointer = False
        base_type = None
        while True:
            tok = self.next()
            if tok.text in ("__global", "__local", "__constant", "const", "restrict"):
                continue
            if tok.text in _SCALAR_TYPES:
                base_type = tok.text
                continue
            if tok.text == "*":
                is_pointer = True
                continue
            name = tok.text
            break
        if base_type is None:
            raise ParseError(f"parameter {name!r} has no recognized type")
        if is_pointer:
            self.arrays[name] = _ELEM_BYTES[base_type]

    def _parse_block(self, weight: float) -> None:
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unterminated block")
            if tok.text == "}":
                self.next()
                return
            self._parse_statement(weight)

    def _parse_statement(self, weight: float) -> None:
        tok = self.peek()
        if tok.text == "for":
            self._parse_for(weight)
            return
        if tok.text == "{":
            self.next()
            self._parse_block(weight)
            return
        if tok.text == "if":
            self._parse_if(weight)
            return
        if tok.text in _SCALAR_TYPES or tok.text == "const":
            self._parse_declaration(weight)
            return
        self._parse_assignment(weight)

    def _parse_declaration(self, weight: float) -> None:
        while self.peek().text in _SCALAR_TYPES or self.peek().text == "const":
            self.next()
        self.next()  # variable name
        if self.accept("="):
            self._parse_expression(weight, reads=True)
        self.expect(";")

    def _parse_if(self, weight: float) -> None:
        self.expect("if")
        self.expect("(")
        self._parse_expression_until(")", weight, reads=True)
        # both arms are charged at full weight (hardware evaluates both)
        self._parse_statement(weight)
        if self.accept("else"):
            self._parse_statement(weight)

    def _parse_for(self, weight: float) -> None:
        self.expect("for")
        self.expect("(")
        # init: `int k = 0` or `k = 0`
        while self.peek().text != ";":
            self.next()
        self.expect(";")
        # condition: `k < BOUND` (BOUND literal or named constant)
        self.next()  # loop variable
        cmp_tok = self.next()
        if cmp_tok.text not in ("<", "<=", ">", ">="):
            raise ParseError(f"unsupported loop condition at {cmp_tok.pos}")
        bound_tok = self.next()
        trip = self._resolve_constant(bound_tok)
        if cmp_tok.text == "<=":
            trip += 1
        if self.peek().text != ";":
            raise ParseError(f"loop bound must be a single constant at {bound_tok.pos}")
        self.expect(";")
        # increment: consume until `)`
        depth = 0
        while True:
            tok = self.next()
            if tok.text == "(":
                depth += 1
            elif tok.text == ")":
                if depth == 0:
                    break
                depth -= 1
        if trip < 1:
            raise ParseError(f"loop at {bound_tok.pos} has non-positive trip {trip}")
        self.inner_trips.append(trip)
        self.counts.add_op(OpKind.LOGIC, weight * trip)  # index increment+compare
        self._parse_statement(weight * trip)

    def _resolve_constant(self, tok: Token) -> int:
        if tok.kind == "number":
            return int(re.sub(r"[uUlL]+$", "", tok.text))
        if tok.kind == "ident":
            if tok.text in self.constants:
                return int(self.constants[tok.text])
            raise ParseError(
                f"loop bound {tok.text!r} is not a known constant "
                f"(pass it via constants={{...}})"
            )
        raise ParseError(f"cannot resolve loop bound {tok.text!r}")

    # -- expressions -------------------------------------------------------
    def _parse_assignment(self, weight: float) -> None:
        # lhs: identifier with optional subscript
        name = self.next()
        if name.kind != "ident":
            raise ParseError(f"expected assignment target at {name.pos}")
        is_array_write = False
        if self.accept("["):
            self._parse_expression_until("]", weight, reads=True, indexing=True)
            is_array_write = name.text in self.arrays
        op = self.next()
        if op.text in ("+=", "-="):
            self.counts.add_op(OpKind.ADD, weight)
            if is_array_write:
                self.counts.add_read(name.text, weight)
        elif op.text in ("*=",):
            self.counts.add_op(OpKind.MUL, weight)
            if is_array_write:
                self.counts.add_read(name.text, weight)
        elif op.text in ("/=",):
            self.counts.add_op(OpKind.DIV, weight)
            if is_array_write:
                self.counts.add_read(name.text, weight)
        elif op.text != "=":
            raise ParseError(f"unsupported assignment operator {op.text!r} at {op.pos}")
        if is_array_write:
            self.counts.add_write(name.text, weight)
        self._parse_expression(weight, reads=True)
        self.expect(";")

    def _parse_expression(self, weight: float, reads: bool) -> None:
        self._parse_expression_until(";", weight, reads, consume_end=False)

    def _parse_expression_until(
        self,
        end: str,
        weight: float,
        reads: bool,
        indexing: bool = False,
        consume_end: bool = True,
    ) -> None:
        depth = 0
        subscript_depths: List[int] = []  # depths at which an array subscript opened
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unterminated expression")
            if depth == 0 and tok.text == end:
                if consume_end:
                    self.next()
                return
            self.next()
            if tok.text == "(":
                depth += 1
                continue
            if tok.text == "[":
                depth += 1
                subscript_depths.append(depth)
                continue
            if tok.text == ")":
                depth -= 1
                continue
            if tok.text == "]":
                if subscript_depths and subscript_depths[-1] == depth:
                    subscript_depths.pop()
                depth -= 1
                continue
            in_subscript = indexing or bool(subscript_depths)
            if tok.kind == "ident":
                nxt = self.peek()
                if tok.text in _IGNORED_CALLS:
                    continue
                if tok.text in _BUILTIN_OPS and nxt is not None and nxt.text == "(":
                    self.counts.add_op(_BUILTIN_OPS[tok.text], weight)
                    continue
                if tok.text in self.arrays and nxt is not None and nxt.text == "[":
                    if reads:
                        self.counts.add_read(tok.text, weight)
                continue
            if tok.kind == "op":
                kind = self._op_kind(tok.text, in_subscript)
                if kind is not None:
                    self.counts.add_op(kind, weight)

    @staticmethod
    def _op_kind(op: str, indexing: bool) -> Optional[OpKind]:
        if indexing:
            # address arithmetic is integer datapath
            if op in ("+", "-", "*", "/", "%"):
                return OpKind.LOGIC
            return None
        return {
            "+": OpKind.ADD,
            "-": OpKind.ADD,
            "*": OpKind.MUL,
            "/": OpKind.DIV,
            "%": OpKind.DIV,
            "<": OpKind.CMP,
            ">": OpKind.CMP,
            "<=": OpKind.CMP,
            ">=": OpKind.CMP,
            "==": OpKind.CMP,
            "!=": OpKind.CMP,
            "?": OpKind.CMP,
            "&&": OpKind.LOGIC,
            "||": OpKind.LOGIC,
            "&": OpKind.LOGIC,
            "|": OpKind.LOGIC,
            "^": OpKind.LOGIC,
            "~": OpKind.LOGIC,
            "!": OpKind.LOGIC,
        }.get(op)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def parse_kernel(
    source: str,
    global_size: int,
    constants: Optional[Dict[str, int]] = None,
    footprints: Optional[Dict[str, int]] = None,
) -> Kernel:
    """Parse OpenCL C into the HLS IR.

    ``global_size`` is the NDRange size (the pipelined dimension);
    ``constants`` resolves named loop bounds; ``footprints`` overrides
    per-array on-chip buffer sizes (default: one element per work-item).
    """
    if global_size < 1:
        raise ParseError(f"global_size must be positive, got {global_size}")
    tokens, recurrence = tokenize(source)
    if not tokens:
        raise ParseError("empty source")
    parser = _Parser(tokens, constants or {})
    parser.parse()

    footprints = footprints or {}
    arrays = tuple(
        ArrayArg(
            name=name,
            elem_bytes=elem_bytes,
            reads_per_iter=parser.counts.reads.get(name, 0.0),
            writes_per_iter=parser.counts.writes.get(name, 0.0),
            footprint_elems=footprints.get(name, max(1, global_size)),
        )
        for name, elem_bytes in parser.arrays.items()
    )
    return Kernel(
        name=parser.kernel_name,
        trip_counts=(global_size,),
        ops={k: v for k, v in parser.counts.ops.items() if v > 0},
        arrays=arrays,
        recurrence=recurrence,
        description=f"parsed from OpenCL C ({len(tokens)} tokens)",
    )
