"""A library of characterized HPC kernels.

These are the workload building blocks the paper's application domains
need: dense linear algebra, stencils, signal processing, and the
Monte-Carlo financial kernels cited from the Maxeler deployments [18].
Each factory returns a :class:`~repro.hls.ir.Kernel` whose operation mix
and access pattern match the textbook form of the computation.
"""

from __future__ import annotations

from repro.hls.ir import ArrayArg, Kernel, OpKind


def vecadd_kernel(n: int = 4096) -> Kernel:
    """c[i] = a[i] + b[i] -- the OpenCL hello world; memory bound."""
    return Kernel(
        name="vecadd",
        trip_counts=(n,),
        ops={OpKind.ADD: 1},
        arrays=(
            ArrayArg("a", 4, reads_per_iter=1, footprint_elems=n),
            ArrayArg("b", 4, reads_per_iter=1, footprint_elems=n),
            ArrayArg("c", 4, writes_per_iter=1, footprint_elems=n),
        ),
        description="elementwise vector add",
    )


def saxpy_kernel(n: int = 4096) -> Kernel:
    """y[i] = alpha * x[i] + y[i]."""
    return Kernel(
        name="saxpy",
        trip_counts=(n,),
        ops={OpKind.MUL: 1, OpKind.ADD: 1},
        arrays=(
            ArrayArg("x", 4, reads_per_iter=1, footprint_elems=n),
            ArrayArg("y", 4, reads_per_iter=1, writes_per_iter=1, footprint_elems=n),
        ),
        description="scaled vector addition",
    )


def matmul_kernel(tile: int = 64) -> Kernel:
    """Tiled dense matmul: one tile x tile x tile multiply-accumulate.

    The innermost dot-product carries an accumulation recurrence whose
    multiply-add chain bounds II unless the tool interleaves; we expose
    the conservative (distance 1, FADD latency) bound, which is why
    unrolling + partitioning is where this kernel's speedup comes from.
    """
    return Kernel(
        name="matmul",
        trip_counts=(tile, tile, tile),
        ops={OpKind.MUL: 1, OpKind.ADD: 1},
        arrays=(
            ArrayArg("A", 4, reads_per_iter=1, footprint_elems=tile * tile),
            ArrayArg("B", 4, reads_per_iter=1, footprint_elems=tile * tile),
            ArrayArg("C", 4, writes_per_iter=1.0 / tile, footprint_elems=tile * tile),
        ),
        recurrence=(1, 3),  # accumulator: FADD latency 3, distance 1
        description="tiled dense matrix multiply",
    )


def stencil_kernel(n: int = 4096, points: int = 5) -> Kernel:
    """One row-sweep of a ``points``-point 2D Jacobi stencil."""
    if points < 3:
        raise ValueError("a stencil needs at least 3 points")
    return Kernel(
        name=f"stencil{points}",
        trip_counts=(n,),
        ops={OpKind.ADD: points - 1, OpKind.MUL: points},
        arrays=(
            ArrayArg("grid_in", 4, reads_per_iter=points, footprint_elems=3 * n),
            ArrayArg("grid_out", 4, writes_per_iter=1, footprint_elems=n),
        ),
        description=f"{points}-point Jacobi stencil sweep",
    )


def fir_kernel(n: int = 4096, taps: int = 32) -> Kernel:
    """FIR filter: out[i] = sum_t coeff[t] * in[i - t]."""
    return Kernel(
        name=f"fir{taps}",
        trip_counts=(n, taps),
        ops={OpKind.MUL: 1, OpKind.ADD: 1},
        arrays=(
            ArrayArg("signal", 4, reads_per_iter=1, footprint_elems=n + taps),
            ArrayArg("coeff", 4, reads_per_iter=1, footprint_elems=taps),
            ArrayArg("out", 4, writes_per_iter=1.0 / taps, footprint_elems=n),
        ),
        recurrence=(1, 3),  # accumulation chain
        description="FIR filter",
    )


def montecarlo_kernel(paths: int = 8192, steps: int = 64) -> Kernel:
    """Monte-Carlo option pricing: geometric Brownian motion paths.

    Per step: one Box-Muller-ish transcendental bundle, a few multiplies
    and adds; embarrassingly parallel across paths (no recurrence exposed
    because paths, the pipelined dimension, are independent).
    """
    return Kernel(
        name="montecarlo",
        trip_counts=(steps, paths),
        ops={OpKind.EXP: 1, OpKind.MUL: 3, OpKind.ADD: 2, OpKind.LOGIC: 2},
        arrays=(
            ArrayArg("prices", 4, reads_per_iter=1, writes_per_iter=1, footprint_elems=paths),
            ArrayArg("rng_state", 4, reads_per_iter=1, writes_per_iter=1, footprint_elems=paths),
        ),
        description="Monte-Carlo GBM path simulation",
    )


def cart_split_kernel(samples: int = 4096, features: int = 16) -> Kernel:
    """CART decision-tree split search (the HC-CART workload [17]):
    per (sample, feature) evaluate a candidate split's Gini update."""
    return Kernel(
        name="cart_split",
        trip_counts=(features, samples),
        ops={OpKind.CMP: 2, OpKind.ADD: 2, OpKind.MUL: 1, OpKind.LOGIC: 2},
        arrays=(
            ArrayArg("values", 4, reads_per_iter=1, footprint_elems=samples),
            ArrayArg("labels", 1, reads_per_iter=1, footprint_elems=samples),
            ArrayArg("hist", 4, reads_per_iter=1, writes_per_iter=1, footprint_elems=256),
        ),
        recurrence=(1, 3),  # histogram update
        description="CART split-point evaluation",
    )
