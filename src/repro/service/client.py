"""A small synchronous client for the service daemon's protocol.

``python -m repro client <cmd>`` rides this, as do the tests and the CI
``daemon-smoke`` job -- nobody hand-rolls socket code.  Two transports:

- unix socket (``ServiceClient(socket_path=...)``): NDJSON frames over
  one persistent connection, replies strictly in request order.
- HTTP (``ServiceClient(host=..., port=...)``): each request is a
  ``POST /rpc`` with the frame as the JSON body (one connection per
  request; fine for scripting, the socket is the fast path).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import decode_frame, encode_frame


class ServiceClientError(RuntimeError):
    """Transport-level failure (cannot connect, daemon hung up)."""


class ServiceClient:
    """Speak the daemon protocol from synchronous code."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket_path or an http host/port")
        self.socket_path = socket_path
        self.host = host or "127.0.0.1"
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._fh = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceClientError(
                f"cannot connect to daemon at {self.socket_path!r}: {exc}"
            )
        self._sock = sock
        self._fh = sock.makefile("rb")

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one command frame, wait for its reply frame."""
        decode_frame(json.dumps(frame))  # fail fast on malformed frames
        if self.socket_path is not None:
            return self._request_socket(frame)
        return self._request_http(frame)

    def command(self, cmd: str, **args: Any) -> Dict[str, Any]:
        frame = {"cmd": cmd}
        frame.update(args)
        return self.request(frame)

    def _request_socket(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._connect()
        try:
            self._sock.sendall(encode_frame(frame))
            line = self._fh.readline()
        except OSError as exc:
            raise ServiceClientError(f"daemon connection failed: {exc}")
        if not line:
            raise ServiceClientError("daemon hung up without replying")
        return json.loads(line)

    def _request_http(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        import http.client

        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(frame).encode("utf-8")
            conn.request(
                "POST", "/rpc", body=body, headers={"Content-Type": "application/json"}
            )
            resp = conn.getresponse()
            payload = resp.read()
        except OSError as exc:
            raise ServiceClientError(
                f"cannot reach daemon at http://{self.host}:{self.port}: {exc}"
            )
        finally:
            conn.close()
        try:
            return json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServiceClientError(f"daemon sent a non-JSON reply: {exc}")

    # ------------------------------------------------------------------
    def script(self, frames: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run a fixed command sequence, collecting replies in order.

        Stops early after a ``shutdown`` reply (the daemon is gone) but
        not on error replies -- scripted sessions assert on the replies
        themselves.
        """
        replies: List[Dict[str, Any]] = []
        for frame in frames:
            reply = self.request(frame)
            replies.append(reply)
            if frame.get("cmd") == "shutdown" and reply.get("ok"):
                break
        return replies
