"""The daemon's wire protocol: newline-delimited JSON frames.

One request frame per line, one reply frame per line, always in order.
A request is ``{"cmd": <name>, ...args}`` with an optional client-chosen
``"id"`` echoed verbatim in the reply.  Replies are ``{"ok": true, ...}``
or ``{"ok": false, "error": <code>, "message": <human text>}``.

The protocol is deliberately transport-agnostic: the unix-socket server,
the HTTP ``POST /rpc`` bridge, the in-process test harness and the CLI
client all funnel through :func:`decode_frame` / :func:`encode_frame`,
so malformed input produces the same structured error reply everywhere
instead of a stack trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bumped when a frame field changes meaning; clients may check it via
#: ``ping``.
PROTOCOL_VERSION = 1

#: Every command the session dispatches, with a one-line contract.
COMMANDS: Dict[str, str] = {
    "ping": "liveness + protocol version",
    "status": "session state, active workload, archived reports",
    "submit": "start or feed a workload (kinds: serving, jobs, job, requests)",
    "step": "advance the active workload N windows",
    "run": "advance the active workload until it completes or quiesces",
    "report": "canonical JSON report (active workload or archived by key)",
    "metrics": "Prometheus text from the live telemetry hub",
    "events": "structured telemetry events since a cursor",
    "reconfigure": "swap serving/scheduling knobs at the next window",
    "chaos": "inject a seeded fault plan into the running workload",
    "snapshot": "persist a warm-start snapshot of the session",
    "restore": "rebuild a session from a snapshot (idle sessions only)",
    "drain": "quiesce: finish in-flight work, refuse new work",
    "shutdown": "drain, then close the session",
}


class ProtocolError(Exception):
    """A frame that cannot be dispatched (bad JSON, shape, or command)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def decode_frame(line) -> Dict[str, Any]:
    """Parse one request line into a command frame, strictly.

    Raises :class:`ProtocolError` (never json's) on malformed input so
    transports can turn any bad line into a structured error reply.
    """
    if isinstance(line, (bytes, bytearray)):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-encoding", f"frame is not UTF-8: {exc}")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"frame is not valid JSON: {exc}")
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(frame).__name__}"
        )
    cmd = frame.get("cmd")
    if not isinstance(cmd, str) or not cmd:
        raise ProtocolError("bad-frame", 'frame needs a string "cmd" field')
    if cmd not in COMMANDS:
        known = ", ".join(sorted(COMMANDS))
        raise ProtocolError("unknown-command", f"unknown command {cmd!r}; known: {known}")
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One reply (or request) as a canonical NDJSON line."""
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def ok_reply(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"ok": True}
    reply.update(fields)
    if request_id is not None:
        reply["id"] = request_id
    return reply


def error_reply(
    code: str, message: str, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if request_id is not None:
        reply["id"] = request_id
    return reply
