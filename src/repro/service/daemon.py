"""The asyncio shell around :class:`~repro.service.session.ServiceSession`.

The daemon owns one session and serves it over two transports:

- a unix socket speaking the NDJSON protocol (one reply line per
  request line, strictly ordered per connection);
- a minimal HTTP endpoint: ``GET /metrics`` (Prometheus text, so a
  scraper can watch a live run), ``GET /status`` and ``POST /rpc``
  (one protocol frame as the JSON body).

All command execution is synchronous inside the event loop -- the
simulation itself is single-threaded and deterministic, so there is
exactly one machine mutator and no locking.  Long ``run``/``drain``
commands block other clients briefly; that is the price of determinism
and fine for a control plane.

SIGINT/SIGTERM are treated as ``drain``: in-flight work completes, the
session closes, the server exits 0.  A second signal aborts immediately.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from repro.service.session import ServiceSession


class ServiceDaemon:
    """Serve one session over a unix socket and/or HTTP."""

    def __init__(
        self,
        session: ServiceSession,
        socket_path: Optional[str] = None,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        if socket_path is None and http_port is None:
            raise ValueError("daemon needs a unix socket path or an HTTP port")
        self.session = session
        self.socket_path = socket_path
        self.http_port = http_port
        self.http_host = http_host
        self._shutdown = asyncio.Event()
        self._servers = []
        self.bound_http_port: Optional[int] = None

    # ------------------------------------------------------------------
    # NDJSON over the unix socket
    # ------------------------------------------------------------------
    async def _handle_socket(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = self.session.handle_line(line)
                writer.write(reply)
                await writer.drain()
                if self.session.closed:
                    self._shutdown.set()
        except asyncio.CancelledError:
            pass  # loop shutdown with the connection still open
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # minimal HTTP
    # ------------------------------------------------------------------
    async def _handle_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            method, path = (parts + ["", ""])[:2]
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = await reader.readexactly(content_length) if content_length else b""
            status, ctype, payload = self._route_http(method, path, body)
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
            if self.session.closed:
                self._shutdown.set()
        except asyncio.CancelledError:
            pass  # loop shutdown with the connection still open
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _route_http(self, method: str, path: str, body: bytes):
        import json

        if method == "GET" and path == "/metrics":
            reply = self.session.handle({"cmd": "metrics"})
            if reply.get("ok"):
                return "200 OK", "text/plain; version=0.0.4", reply["text"].encode()
            return "503 Service Unavailable", "text/plain", (
                f"# {reply.get('error')}: {reply.get('message')}\n".encode()
            )
        if method == "GET" and path == "/status":
            reply = self.session.handle({"cmd": "status"})
            return "200 OK", "application/json", (
                json.dumps(reply, sort_keys=True) + "\n"
            ).encode()
        if method == "POST" and path == "/rpc":
            reply_line = self.session.handle_line(body)
            return "200 OK", "application/json", reply_line
        return "404 Not Found", "text/plain", b"unknown endpoint\n"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _install_signal_handlers(self, loop) -> None:
        def drain_and_exit() -> None:
            if self.session.closed:
                self._shutdown.set()
                return
            print("repro daemon: signal received, draining...", file=sys.stderr)
            self.session.handle({"cmd": "shutdown"})
            self._shutdown.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, drain_and_exit)
            except (NotImplementedError, ValueError, RuntimeError):
                # not the main thread (tests) or unsupported platform
                return

    async def serve(self) -> None:
        loop = asyncio.get_running_loop()
        self._install_signal_handlers(loop)
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_socket, path=self.socket_path
            )
            self._servers.append(server)
        if self.http_port is not None:
            server = await asyncio.start_server(
                self._handle_http, host=self.http_host, port=self.http_port
            )
            self.bound_http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        try:
            await self._shutdown.wait()
        finally:
            for server in self._servers:
                server.close()
                await server.wait_closed()
            self._servers = []


def run_daemon(
    socket_path: Optional[str] = None,
    http_port: Optional[int] = None,
    http_host: str = "127.0.0.1",
    preset: str = "steady",
    seed: int = 0,
    window_ns: float = 100_000.0,
    telemetry: bool = True,
    warm: bool = True,
    snapshot_dir: str = "service-snapshots",
    restore: Optional[str] = None,
) -> int:
    """Blocking entry point behind ``python -m repro daemon``."""
    session = ServiceSession(
        preset=preset,
        seed=seed,
        window_ns=window_ns,
        telemetry=telemetry,
        warm=warm,
        snapshot_dir=snapshot_dir,
    )
    if restore is not None:
        reply = session.handle({"cmd": "restore", "path": restore})
        if not reply.get("ok"):
            print(
                f"repro daemon: restore failed: {reply.get('message')}",
                file=sys.stderr,
            )
            return 1
        print(
            f"repro daemon: restored snapshot (replayed "
            f"{reply.get('replayed', 0)} commands, state {reply.get('state')})",
            file=sys.stderr,
        )
    daemon = ServiceDaemon(
        session,
        socket_path=socket_path,
        http_port=http_port,
        http_host=http_host,
    )
    where = []
    if socket_path is not None:
        where.append(f"unix:{socket_path}")
    if http_port is not None:
        where.append(f"http://{http_host}:{http_port}")
    print(f"repro daemon: serving on {' and '.join(where)}", file=sys.stderr)
    asyncio.run(daemon.serve())
    print("repro daemon: drained, bye", file=sys.stderr)
    return 0
