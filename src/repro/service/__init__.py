"""Always-on service mode: the repro daemon and its control plane.

ECOSCALE's runtime is a *persistent* machine -- a PGAS-backed rack whose
reconfiguration daemon and scheduler serve a continuous task stream --
while the rest of this repo exposes batch ``run_*_experiment`` calls
that build, run and discard.  This package closes that gap:

- :mod:`repro.service.protocol` -- the line-delimited-JSON control
  protocol (commands, replies, validation).
- :mod:`repro.service.session` -- :class:`ServiceSession`, the
  synchronous heart: one live machine, windowed execution, a command
  journal, and snapshot/restore by deterministic replay.
- :mod:`repro.service.daemon` -- the asyncio shell: unix-socket NDJSON
  server, minimal HTTP (``GET /metrics`` for Prometheus scrapes),
  SIGINT/SIGTERM as graceful drain.
- :mod:`repro.service.client` -- a small synchronous client the CLI,
  tests and the CI smoke job share.

Determinism contract: a scripted session (fixed command sequence, fixed
seeds) produces canonical reports byte-identical to the equivalent
batch experiment, and ``snapshot`` -> ``restore`` -> continue matches an
uninterrupted session byte for byte (commands replay against the same
seeds at the same window boundaries).

The name ``repro.service`` deliberately avoids colliding with
:class:`repro.core.runtime.daemon.ReconfigurationDaemon`, the on-machine
Fig. 5 reconfiguration loop -- that daemon manages fabric regions; this
one manages the whole machine's lifecycle.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    COMMANDS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
)
from repro.service.session import ServiceError, ServiceSession

__all__ = [
    "COMMANDS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceSession",
    "decode_frame",
    "encode_frame",
    "error_reply",
    "ok_reply",
]
