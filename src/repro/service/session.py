"""The service session: one live machine behind the control protocol.

:class:`ServiceSession` is the synchronous core of the daemon -- the
asyncio shell in :mod:`repro.service.daemon` only moves bytes.  It owns
at most one *workload epoch* at a time (a serving gateway or a job-mix
machine on its own fresh simulator), advances it on a fixed window grid,
and dispatches every protocol command.

Determinism is the whole design:

- **Windowed execution.**  The simulator advances via repeated
  ``sim.run(until=k * window_ns)`` calls.  ``run(until=...)`` fires
  events in exactly the order one uninterrupted ``run()`` would, so
  stepping changes nothing; control commands are only applied *between*
  windows, pinning them to reproducible simulated times.
- **Epochs build batch-identical machines.**  A ``submit`` builds a
  fresh machine through the same construction paths the batch harnesses
  use (:func:`repro.serving.gateway.build_serving_gateway`,
  :func:`repro.experiments.build_jobs_machine`), with the same seeds and
  compile settings -- so a scripted session's canonical report is
  byte-identical to the equivalent ``run_*_experiment`` call.
- **Snapshot = journal.**  Every state-changing command is journaled
  with the boundary time it was applied at.  A snapshot persists the
  current epoch's journal (plus archived reports verbatim) through PR
  7's :class:`~repro.core.runtime.checkpoint.SnapshotStore`; ``restore``
  replays the journal against the same seeds to the same boundary,
  which reconstructs the machine state exactly.  Continuation after a
  restore is therefore byte-identical to never having stopped.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    Snapshot,
    SnapshotStore,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
)

#: the session's snapshot ``workload`` discriminator (PR 7 snapshots use
#: ``chaos-jobs``; restore refuses anything but its own kind)
SESSION_SNAPSHOT_KIND = "service-session"

#: windows a single ``run`` command may pump before reporting no
#: progress -- a backstop against a held-open epoch that cannot drain
MAX_RUN_WINDOWS = 100_000


class ServiceError(Exception):
    """A command that is well-formed but cannot be honoured right now."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _require(condition: bool, code: str, message: str) -> None:
    if not condition:
        raise ServiceError(code, message)


# ----------------------------------------------------------------------
# workload epochs
# ----------------------------------------------------------------------


class _ServingEpoch:
    """One serving gateway on its own simulator (one live preset)."""

    kind = "serving"

    def __init__(self, session: "ServiceSession", args: Dict[str, Any]) -> None:
        from repro.serving.gateway import build_serving_gateway
        from repro.telemetry import Telemetry

        self.preset = str(args.get("preset", session.default_preset))
        self.seed = int(args.get("seed", session.default_seed))
        self.max_variants = int(args.get("max_variants", 2))
        self.arrivals = bool(args.get("arrivals", True))
        hold = bool(args.get("hold_open", False)) or not self.arrivals
        ft = _fault_tolerance(args.get("fault_tolerance"))
        self.fault_tolerance = ft is not None
        brownout = _brownout(args.get("brownout"))
        alerts = _alerts(args.get("alerts"))
        # the hub rides the epoch's simulator (built inside the builder,
        # hence the factory); reports stay byte-identical with telemetry
        # on or off (the PR 5 contract), so metrics never cost determinism
        factory = (lambda sim: Telemetry(sim)) if session.telemetry else None
        self.gateway = build_serving_gateway(
            self.preset,
            seed=self.seed,
            telemetry=factory,
            fault_tolerance=ft,
            max_variants=self.max_variants,
            alerts=alerts,
            brownout=brownout,
            warm_start=session.warm,
            spawn_arrivals=self.arrivals,
        )
        self.sim = self.gateway.sim
        self.hub = self.gateway.telemetry
        self.manager = self.gateway.manager
        self.node_preset = self.gateway.scenario.node
        self.chaos_controller = None
        self.chaos_block: Dict[str, Any] = {}
        self.gateway.start()
        if hold:
            self.gateway.hold_open()

    @property
    def now(self) -> float:
        return self.sim.now

    def pump_to(self, t: float) -> None:
        self.sim.run(until=t)

    def done(self) -> bool:
        return self.gateway._drained and self.sim.pending == 0

    def quiesced(self) -> bool:
        return self.gateway.quiesced()

    def held(self) -> bool:
        return self.gateway._holds > 0

    def initiate_drain(self) -> None:
        while self.gateway._holds > 0:
            self.gateway.release_hold()

    def finalize_report(self):
        report = self.gateway.report()
        report.chaos = self.chaos_block
        return report

    def report_json(self) -> str:
        return self.finalize_report().json(indent=2)

    def status(self) -> Dict[str, Any]:
        load = self.gateway.load_snapshot()
        return {
            "kind": self.kind,
            "preset": self.preset,
            "seed": self.seed,
            "now_ns": self.now,
            "outstanding": load["outstanding"],
            "queued": load["queued"],
            "arrivals_open": load["arrivals_open"],
            "holds": self.gateway._holds,
            "drained": load["drained"],
        }

    def inject(self, args: Dict[str, Any]) -> Dict[str, Any]:
        _require(
            not self.gateway._drained,
            "drained",
            "gateway already drained; submit a new serving epoch",
        )
        tenant = str(args.get("tenant", ""))
        function = str(args.get("function", ""))
        _require(bool(tenant), "bad-args", 'requests submit needs a "tenant"')
        _require(bool(function), "bad-args", 'requests submit needs a "function"')
        items = int(args.get("items", 1))
        count = int(args.get("count", 1))
        _require(count >= 1, "bad-args", "count must be >= 1")
        for _ in range(count):
            self.gateway.inject_request(tenant, function, items)
        return {"injected": count, "at_ns": self.now}

    def reconfigure(self, args: Dict[str, Any]) -> Dict[str, Any]:
        from repro.presets import serving_preset

        applied: Dict[str, Any] = {}
        if "preset" in args:
            name = str(args["preset"])
            scenario = serving_preset(name)
            applied.update(self.gateway.apply_scenario(scenario, scenario_name=name))
        batcher = self.gateway.batcher
        if "max_batch" in args:
            batcher.max_batch = int(args["max_batch"])
            applied["max_batch"] = batcher.max_batch
        if "max_wait_ns" in args:
            batcher.max_wait_ns = float(args["max_wait_ns"])
            applied["max_wait_ns"] = batcher.max_wait_ns
        if "admit" in args:
            for tenant, knobs in sorted(dict(args["admit"]).items()):
                self.gateway.admission.configure_tenant(
                    tenant, float(knobs["rate_rps"]), int(knobs["burst"])
                )
            applied["admit"] = sorted(dict(args["admit"]))
        if "slo_ns" in args:
            for tenant, slo_ns in sorted(dict(args["slo_ns"]).items()):
                state = self.gateway.slo.tenant(tenant)
                state.slo_ns = float(slo_ns)
            applied["slo_ns"] = sorted(dict(args["slo_ns"]))
        auto = self.gateway.autoscaler
        for knob in ("scale_up_hotness", "max_replicas", "cooldown_periods"):
            if knob in args:
                cast = float if knob == "scale_up_hotness" else int
                setattr(auto, knob, cast(args[knob]))
                applied[knob] = getattr(auto, knob)
        if "brownout" in args:
            action = str(args["brownout"])
            _require(
                action in ("enter", "exit"),
                "bad-args",
                'brownout must be "enter" or "exit"',
            )
            _require(
                self.gateway.brownout is not None,
                "no-brownout",
                "epoch was submitted without a brownout policy",
            )
            if action == "enter":
                self.gateway.enter_brownout("reconfigure")
            else:
                self.gateway.exit_brownout()
            applied["brownout"] = action
        _require(bool(applied), "bad-args", "reconfigure had no applicable knobs")
        return applied

    def chaos(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return _apply_chaos(self, args, gateway=self.gateway)


class _JobsEpoch:
    """One job-mix machine on its own simulator (accepts live submits)."""

    kind = "jobs"

    def __init__(self, session: "ServiceSession", args: Dict[str, Any]) -> None:
        from repro.experiments import build_jobs_machine
        from repro.telemetry import Telemetry

        self.preset = str(args.get("preset", "mini"))
        self.seed = int(args.get("seed", session.default_seed))
        self.max_variants = int(args.get("max_variants", 1))
        ft = _fault_tolerance(args.get("fault_tolerance"))
        self.fault_tolerance = ft is not None
        submit_mix = args.get("kind", "jobs") == "jobs"
        factory = (lambda sim: Telemetry(sim)) if session.telemetry else None
        self.manager, self.mix = build_jobs_machine(
            self.preset,
            seed=self.seed,
            telemetry=factory,
            fault_tolerance=ft,
            warm_start=session.warm,
            max_variants=self.max_variants,
            submit_mix=submit_mix,
        )
        self.sim = self.manager.sim
        self.hub = self.manager.engine.telemetry
        self.node_preset = self.mix.node
        self.chaos_controller = None
        self.chaos_block: Dict[str, Any] = {}

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def gateway(self):  # chaos attach point parity with serving epochs
        return None

    def pump_to(self, t: float) -> None:
        self.sim.run(until=t)

    def done(self) -> bool:
        handles = self.manager.handles
        return bool(handles) and all(h.finished for h in handles) and (
            self.sim.pending == 0
        )

    def quiesced(self) -> bool:
        handles = self.manager.handles
        return bool(handles) and all(h.finished for h in handles)

    def held(self) -> bool:
        return False

    def initiate_drain(self) -> None:
        self.manager.drain()

    def report_json(self) -> str:
        return self.manager.collect().json(indent=2)

    def status(self) -> Dict[str, Any]:
        handles = self.manager.handles
        return {
            "kind": self.kind,
            "preset": self.preset,
            "seed": self.seed,
            "now_ns": self.now,
            "jobs": len(handles),
            "jobs_finished": sum(1 for h in handles if h.finished),
            "draining": self.manager.draining,
        }

    def submit_more(self, args: Dict[str, Any]) -> Dict[str, Any]:
        """A ``submit`` onto the live machine: a whole mix or one job."""
        from repro.apps import make_layered_dag
        from repro.experiments import submit_job_mix
        from repro.presets import job_preset

        _require(
            not self.manager.draining,
            "draining",
            "JobManager is draining; no new jobs are admitted",
        )
        kind = args.get("kind", "jobs")
        if kind == "jobs":
            mix = job_preset(str(args.get("preset", self.preset)))
            _require(
                mix.node == self.node_preset,
                "preset-mismatch",
                f"mix runs on node preset {mix.node!r}; this machine is "
                f"{self.node_preset!r}",
            )
            handles = submit_job_mix(
                self.manager, mix, int(args.get("seed", self.seed))
            )
            return {"jobs": [h.job_id for h in handles], "at_ns": self.now}
        graph = make_layered_dag(
            layers=int(args.get("layers", 4)),
            width=int(args.get("width", 8)),
            num_workers=len(self.manager.engine.node),
            functions=("saxpy", "stencil5", "montecarlo"),
            seed=int(args.get("graph_seed", 1)) + int(args.get("seed", self.seed)),
        )
        handle = self.manager.submit_job(
            graph,
            policy=args.get("policy"),
            priority=int(args.get("priority", 1)),
            dataflow=bool(args.get("dataflow", False)),
        )
        return {"job": handle.job_id, "tasks": len(graph), "at_ns": self.now}

    def reconfigure(self, args: Dict[str, Any]) -> Dict[str, Any]:
        from repro.core.runtime.policy import make_policy

        applied: Dict[str, Any] = {}
        if "policy" in args:
            engine = self.manager.engine
            policy = make_policy(str(args["policy"]), engine.policy_config)
            engine.default_policy = policy
            engine.jobs.default_policy = policy
            applied["policy"] = policy.name
        _require(bool(applied), "bad-args", "reconfigure had no applicable knobs")
        return applied

    def chaos(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return _apply_chaos(self, args, gateway=None)


def _fault_tolerance(spec):
    """``None``/``False`` -> off; ``True`` -> defaults; dict -> kwargs."""
    if not spec:
        return None
    from repro.core.runtime import FaultTolerancePolicy

    if spec is True:
        return FaultTolerancePolicy()
    _require(isinstance(spec, dict), "bad-args", "fault_tolerance must be bool or object")
    return FaultTolerancePolicy(**{k: spec[k] for k in spec})


def _brownout(spec):
    if not spec:
        return None
    from repro.serving import BrownoutPolicy

    if spec is True:
        return BrownoutPolicy()
    _require(isinstance(spec, dict), "bad-args", "brownout must be bool or object")
    return BrownoutPolicy(**{k: spec[k] for k in spec})


def _alerts(spec):
    """Burn-rate alerting for a serving epoch (PR 6): bool or kwargs."""
    if not spec:
        return None
    from repro.serving import BurnRatePolicy

    if spec is True:
        return BurnRatePolicy()
    _require(isinstance(spec, dict), "bad-args", "alerts must be bool or object")
    return BurnRatePolicy(**{k: spec[k] for k in spec})


def _apply_chaos(epoch, args: Dict[str, Any], gateway=None) -> Dict[str, Any]:
    """Shared online chaos injection for both epoch kinds."""
    from repro.chaos import ChaosController

    _require(
        epoch.fault_tolerance or bool(args.get("force")),
        "no-fault-tolerance",
        "epoch was submitted without fault_tolerance; injected faults "
        'would lose work (pass "force": true to inject anyway)',
    )
    engine = epoch.manager.engine
    if epoch.chaos_controller is None:
        controller = ChaosController(
            epoch.sim, seed=int(args.get("seed", epoch.seed)), live=True
        )
        if gateway is not None:
            controller.attach_gateway(gateway)
        controller.arm()  # armed empty: every added fault schedules live
        epoch.chaos_controller = controller
    controller = epoch.chaos_controller
    faults = args.get("faults")
    _require(
        isinstance(faults, list) and bool(faults),
        "bad-args",
        'chaos needs a non-empty "faults" list',
    )
    planned = []
    for fault in faults:
        kind = fault.get("kind", "crash")
        at_ns = float(fault.get("at_ns", epoch.now))
        downtime = fault.get("downtime_ns")
        downtime_ns = float(downtime) if downtime is not None else None
        if kind == "crash":
            worker = int(fault["worker"])
            controller.crash_worker(engine, worker, at_ns, downtime_ns=downtime_ns)
            planned.append({"worker": worker, "at_ns": at_ns, "downtime_ns": downtime_ns})
        elif kind == "domain":
            from repro.chaos.domains import build_domain_tree

            name = str(fault["domain"])
            tree = build_domain_tree(len(engine.node.workers))
            controller.fail_domain(
                engine, tree.domain(name), at_ns, downtime_ns=downtime_ns
            )
            planned.append(
                {
                    "domain": name,
                    "workers": list(tree.members(name)),
                    "at_ns": at_ns,
                    "downtime_ns": downtime_ns,
                }
            )
        else:
            raise ServiceError("bad-args", f"unknown fault kind {kind!r}")
    # mirror the batch harness's report chaos block for single faults so
    # scripted sessions stay byte-comparable to run_serving_experiment
    if not epoch.chaos_block and len(planned) == 1:
        epoch.chaos_block = dict(planned[0])
    elif planned:
        existing = epoch.chaos_block.get("faults")
        if existing is None:
            existing = (
                [dict(epoch.chaos_block)] if epoch.chaos_block else []
            )
        existing.extend(dict(p) for p in planned)
        epoch.chaos_block = {"faults": existing}
    return {
        "planned": len(planned),
        "faults": planned,
        "armed_at_ns": epoch.now,
    }


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------


class ServiceSession:
    """One always-on control-plane session over at most one live epoch."""

    def __init__(
        self,
        preset: str = "steady",
        seed: int = 0,
        window_ns: float = 100_000.0,
        telemetry: bool = True,
        warm: bool = True,
        snapshot_dir: str = "service-snapshots",
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.default_preset = preset
        self.default_seed = int(seed)
        self.window_ns = float(window_ns)
        self.telemetry = bool(telemetry)
        self.warm = bool(warm)
        self.snapshot_dir = snapshot_dir
        self.workload = None
        self.archive: List[Dict[str, Any]] = []
        self.draining = False
        self.closed = False
        self._journal: List[Dict[str, Any]] = []
        self._epoch_count = 0
        self._snap_seq = 0
        self._events_cursor = 0
        self._nodes_used: set = set()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_line(self, line) -> bytes:
        """Transport entry point: one request line -> one reply line."""
        request_id = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            return encode_frame(self.handle(frame))
        except ProtocolError as exc:
            return encode_frame(error_reply(exc.code, exc.message, request_id))

    def handle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one already-decoded command frame."""
        cmd = frame.get("cmd")
        request_id = frame.get("id")
        handler = getattr(self, f"_cmd_{cmd}", None)
        if handler is None:
            return error_reply("unknown-command", f"unknown command {cmd!r}", request_id)
        if self.closed and cmd not in ("ping", "status"):
            return error_reply("closed", "session is shut down", request_id)
        try:
            reply = handler(frame)
        except ServiceError as exc:
            return error_reply(exc.code, exc.message, request_id)
        except ProtocolError as exc:
            return error_reply(exc.code, exc.message, request_id)
        except (KeyError, TypeError, ValueError) as exc:
            return error_reply("bad-args", f"{type(exc).__name__}: {exc}", request_id)
        if request_id is not None:
            reply.setdefault("id", request_id)
        return reply

    # ------------------------------------------------------------------
    # the window grid
    # ------------------------------------------------------------------
    def _next_boundary(self, now: float) -> float:
        k = math.floor(now / self.window_ns + 1e-9) + 1
        return k * self.window_ns

    def _pump_windows(self, windows: int) -> Dict[str, Any]:
        w = self.workload
        _require(w is not None, "no-workload", "no active workload to advance")
        for _ in range(windows):
            if w.done():
                break
            w.pump_to(self._next_boundary(w.now))
        return self._settle()

    def _pump_until_done(self) -> Dict[str, Any]:
        w = self.workload
        _require(w is not None, "no-workload", "no active workload to advance")
        for _ in range(MAX_RUN_WINDOWS):
            if w.done():
                break
            if w.held() and w.quiesced():
                break  # only holds keep it open; inject or drain to proceed
            w.pump_to(self._next_boundary(w.now))
        else:
            raise ServiceError(
                "no-progress",
                f"workload did not finish within {MAX_RUN_WINDOWS} windows",
            )
        return self._settle()

    def _settle(self) -> Dict[str, Any]:
        """Archive a finished epoch; report where the clock landed."""
        w = self.workload
        out: Dict[str, Any] = {"now_ns": w.now}
        if w.done():
            key = self._archive_epoch(w)
            out.update({"state": "idle", "report_key": key})
        elif w.held() and w.quiesced():
            out["state"] = "held"
        else:
            out["state"] = "running"
        return out

    def _archive_epoch(self, w) -> str:
        key = f"{w.kind}:{w.preset}:{w.seed}#{self._epoch_count}"
        self.archive.append(
            {
                "key": key,
                "kind": w.kind,
                "report": w.report_json(),
            }
        )
        self._epoch_count += 1
        self.workload = None
        self._journal = []
        self._events_cursor = 0
        return key

    def _journal_apply(self, frame: Dict[str, Any]) -> None:
        at_ns = self.workload.now if self.workload is not None else 0.0
        entry = {"at_ns": at_ns, "frame": {k: frame[k] for k in sorted(frame) if k != "id"}}
        self._journal.append(entry)

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def _cmd_ping(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return ok_reply(frame.get("id"), pong=True, protocol=PROTOCOL_VERSION)

    def _cmd_status(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self.closed:
            state = "closed"
        elif self.draining:
            state = "draining"
        elif self.workload is not None:
            state = "running"
        else:
            state = "idle"
        return ok_reply(
            frame.get("id"),
            state=state,
            protocol=PROTOCOL_VERSION,
            workload=self.workload.status() if self.workload is not None else None,
            reports=[entry["key"] for entry in self.archive],
            journal=len(self._journal),
            window_ns=self.window_ns,
            defaults={
                "preset": self.default_preset,
                "seed": self.default_seed,
                "telemetry": self.telemetry,
                "warm": self.warm,
            },
        )

    def _cmd_submit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        _require(not self.draining, "draining", "session is draining; no new work")
        kind = str(frame.get("kind", "serving"))
        if kind == "requests":
            w = self.workload
            _require(
                w is not None and w.kind == "serving",
                "no-workload",
                "requests need an active serving epoch",
            )
            self._journal_apply(frame)
            result = w.inject(frame)
            return ok_reply(frame.get("id"), **result)
        if kind in ("jobs", "job") and self.workload is not None:
            w = self.workload
            _require(
                w.kind == "jobs",
                "busy",
                "a serving epoch is live; drain it before submitting jobs",
            )
            self._journal_apply(frame)
            result = w.submit_more(frame)
            return ok_reply(frame.get("id"), **result)
        _require(
            self.workload is None,
            "busy",
            "an epoch is already live; drain it first",
        )
        _require(
            kind in ("serving", "jobs", "job"),
            "bad-args",
            f"unknown submit kind {kind!r}",
        )
        self._journal_apply(frame)
        if kind == "serving":
            self.workload = _ServingEpoch(self, frame)
        else:
            self.workload = _JobsEpoch(self, frame)
            if kind == "job":
                # the creating frame both builds the machine and carries
                # the first job; submit it through the same path
                self.workload.submit_more(frame)
        self._nodes_used.add(self.workload.node_preset)
        return ok_reply(
            frame.get("id"),
            kind=self.workload.kind,
            preset=self.workload.preset,
            seed=self.workload.seed,
            key=f"{self.workload.kind}:{self.workload.preset}:"
            f"{self.workload.seed}#{self._epoch_count}",
        )

    def _cmd_step(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        windows = int(frame.get("windows", 1))
        _require(windows >= 1, "bad-args", "windows must be >= 1")
        return ok_reply(frame.get("id"), **self._pump_windows(windows))

    def _cmd_run(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return ok_reply(frame.get("id"), **self._pump_until_done())

    def _cmd_report(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        key = frame.get("key")
        if key is None:
            _require(bool(self.archive), "no-reports", "no archived reports yet")
            entry = self.archive[-1]
        else:
            matches = [e for e in self.archive if e["key"] == key]
            _require(bool(matches), "no-reports", f"no archived report {key!r}")
            entry = matches[-1]
        return ok_reply(
            frame.get("id"), key=entry["key"], kind=entry["kind"], report=entry["report"]
        )

    def _cmd_metrics(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        from repro.telemetry import prometheus_text

        w = self.workload
        _require(w is not None, "no-workload", "no live workload to scrape")
        _require(
            w.hub is not None,
            "telemetry-off",
            "session was started with telemetry disabled",
        )
        return ok_reply(frame.get("id"), text=prometheus_text(w.hub), now_ns=w.now)

    def _cmd_events(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        from repro.telemetry import events_tail

        w = self.workload
        _require(w is not None, "no-workload", "no live workload to scrape")
        _require(
            w.hub is not None,
            "telemetry-off",
            "session was started with telemetry disabled",
        )
        cursor = int(frame.get("cursor", self._events_cursor))
        events, next_cursor = events_tail(w.hub, cursor)
        self._events_cursor = next_cursor
        return ok_reply(frame.get("id"), events=events, cursor=next_cursor)

    def _cmd_reconfigure(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self.workload is None:
            # no live epoch: retarget the session defaults instead
            applied = {}
            if "preset" in frame:
                self.default_preset = str(frame["preset"])
                applied["preset"] = self.default_preset
            if "seed" in frame:
                self.default_seed = int(frame["seed"])
                applied["seed"] = self.default_seed
            _require(
                bool(applied), "no-workload", "no live workload to reconfigure"
            )
            return ok_reply(frame.get("id"), applied=applied, scope="defaults")
        self._journal_apply(frame)
        applied = self.workload.reconfigure(frame)
        return ok_reply(
            frame.get("id"), applied=applied, scope="live", at_ns=self.workload.now
        )

    def _cmd_chaos(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        w = self.workload
        _require(w is not None, "no-workload", "no live workload to perturb")
        self._journal_apply(frame)
        result = w.chaos(frame)
        return ok_reply(frame.get("id"), **result)

    def _cmd_drain(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self.workload is None:
            return ok_reply(frame.get("id"), state="idle", drained=False)
        self.draining = True
        try:
            self.workload.initiate_drain()
            out = self._pump_until_done()
        finally:
            self.draining = False
        return ok_reply(frame.get("id"), drained=True, **out)

    def _cmd_shutdown(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        reply = self._cmd_drain(frame)
        self.closed = True
        reply["closed"] = True
        return reply

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def _store(self, directory: Optional[str] = None) -> SnapshotStore:
        return SnapshotStore(directory or self.snapshot_dir)

    def _cmd_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        w = self.workload
        if w is not None:
            capture = CheckpointManager(
                w.manager, CheckpointPolicy(interval_ns=1.0)
            ).capture()
        else:
            capture = Snapshot(seq=0, taken_at_ns=0.0)
        capture.seq = self._snap_seq
        capture.taken_at_ns = w.now if w is not None else 0.0
        capture.workload = {
            "kind": SESSION_SNAPSHOT_KIND,
            "protocol": PROTOCOL_VERSION,
            "preset": self.default_preset,
            "seed": self.default_seed,
            "window_ns": self.window_ns,
            "telemetry": self.telemetry,
            "warm": self.warm,
            "node": (
                w.node_preset if w is not None else _preset_node(self.default_preset)
            ),
            "nodes": sorted(self._nodes_used or {_preset_node(self.default_preset)}),
            "epoch_count": self._epoch_count,
            "boundary_ns": w.now if w is not None else None,
            "journal": [dict(e) for e in self._journal],
            "archive": [dict(e) for e in self.archive],
        }
        store = self._store(frame.get("dir"))
        path = store.save(capture)
        self._snap_seq += 1
        return ok_reply(
            frame.get("id"),
            seq=capture.seq,
            path=str(path),
            taken_at_ns=capture.taken_at_ns,
            journal=len(self._journal),
        )

    def _cmd_restore(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        _require(
            self.workload is None and not self.archive and not self._journal,
            "not-idle",
            "restore needs a fresh session (no live epoch, no archive)",
        )
        path = frame.get("path")
        if path is None:
            store = self._store(frame.get("dir"))
            snapshot = store.load_latest()
            _require(
                snapshot is not None,
                "no-snapshot",
                f"no snapshots under {store.root}",
            )
        else:
            snapshot = Snapshot.from_json(Path(path).read_text())
        block = snapshot.workload
        _require(
            block.get("kind") == SESSION_SNAPSHOT_KIND,
            "wrong-kind",
            f"snapshot workload kind {block.get('kind')!r} is not a "
            f"{SESSION_SNAPSHOT_KIND} snapshot",
        )
        self.default_preset = str(block["preset"])
        self.default_seed = int(block["seed"])
        self.window_ns = float(block["window_ns"])
        self.telemetry = bool(block["telemetry"])
        self.warm = bool(block["warm"])
        self.archive = [dict(e) for e in block.get("archive", [])]
        self._epoch_count = int(block.get("epoch_count", len(self.archive)))
        for node in block.get("nodes", []):
            self._nodes_used.add(node)
        # replay the journal: rebuild the epoch's machine from the same
        # seeds and re-apply every command at its recorded boundary.
        # Deterministic simulation makes the result byte-identical to the
        # session that never stopped.
        replayed = 0
        for entry in block.get("journal", []):
            at_ns = float(entry["at_ns"])
            if self.workload is not None and at_ns > self.workload.now:
                self.workload.pump_to(at_ns)
            reply = self.handle(dict(entry["frame"]))
            if not reply.get("ok"):
                raise ServiceError(
                    "replay-failed",
                    f"journal entry {entry['frame'].get('cmd')!r} failed on "
                    f"replay: {reply.get('message')}",
                )
            replayed += 1
        boundary = block.get("boundary_ns")
        if self.workload is not None and boundary is not None:
            if boundary > self.workload.now:
                self.workload.pump_to(float(boundary))
            self._settle()
        return ok_reply(
            frame.get("id"),
            restored=True,
            seq=snapshot.seq,
            replayed=replayed,
            state="running" if self.workload is not None else "idle",
            now_ns=self.workload.now if self.workload is not None else None,
        )


def _preset_node(preset: str) -> str:
    """The node preset behind a serving preset name (best effort)."""
    from repro.presets import SERVING_PRESETS

    scenario = SERVING_PRESETS.get(preset)
    return scenario.node if scenario is not None else "mini"
