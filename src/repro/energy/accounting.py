"""A ledger of energy spent, by component category."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class EnergyLedger:
    """Accumulates energy (pJ) under hierarchical category names.

    Categories are dotted paths ("worker0.cpu", "worker0.fabric",
    "interconnect.l1"); queries can aggregate by prefix.
    """

    def __init__(self) -> None:
        self._pj: Dict[str, float] = defaultdict(float)

    def add(self, category: str, picojoules: float) -> None:
        if picojoules < 0:
            raise ValueError(f"negative energy {picojoules} for {category!r}")
        self._pj[category] += picojoules

    def total_pj(self, prefix: str = "") -> float:
        if not prefix:
            return sum(self._pj.values())
        return sum(
            v
            for k, v in self._pj.items()
            if k == prefix or k.startswith(prefix + ".")
        )

    def total_joules(self, prefix: str = "") -> float:
        return self.total_pj(prefix) * 1e-12

    def breakdown(self, depth: int = 1) -> Dict[str, float]:
        """Aggregate to the first ``depth`` path components."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        out: Dict[str, float] = defaultdict(float)
        for k, v in self._pj.items():
            key = ".".join(k.split(".")[:depth])
            out[key] += v
        return dict(out)

    def categories(self) -> Dict[str, float]:
        return dict(self._pj)

    def merge(self, other: "EnergyLedger") -> None:
        for k, v in other._pj.items():
            self._pj[k] += v

    def reset(self) -> None:
        self._pj.clear()

    def mean_power_mw(self, elapsed_ns: float, prefix: str = "") -> float:
        """Average power over an interval: pJ / ns = mW."""
        if elapsed_ns <= 0:
            raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
        return self.total_pj(prefix) / elapsed_ns
