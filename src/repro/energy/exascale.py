"""The paper's exascale power extrapolation (Section 1).

    "Extrapolating from the top HPC systems, such as China's Tianhe-2
    Supercomputer, we estimate that sustaining exaflop performance
    requires an enormous 1 GW power.  Similar, albeit smaller, figures
    are obtained by extrapolating even the best system of the Green 500
    list as an initial reference."

The extrapolation is a naive efficiency hold with a scaling-overhead
exponent: power grows slightly super-linearly in delivered FLOPS because
interconnect, memory and cooling overheads grow with machine scale
(observable across TOP500 generations).  With the paper-era numbers --
Tianhe-2 at 33.86 PFLOP/s Linpack and 17.8 MW (24 MW with cooling) --
the total-facility extrapolation lands at the paper's ~1 GW figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EXAFLOP = 1e18


@dataclass(frozen=True)
class ReferenceSystem:
    """A named (performance, power) reference point."""

    name: str
    rmax_flops: float            # sustained Linpack FLOP/s
    power_mw: float              # system power, MW
    cooling_overhead: float = 1.0  # facility multiplier (PUE-like)

    def __post_init__(self) -> None:
        if self.rmax_flops <= 0 or self.power_mw <= 0:
            raise ValueError("performance and power must be positive")
        if self.cooling_overhead < 1.0:
            raise ValueError("cooling overhead must be >= 1")

    @property
    def gflops_per_watt(self) -> float:
        return (self.rmax_flops / 1e9) / (self.power_mw * 1e6)


#: Tianhe-2 (TOP500 #1 of the paper's era): 33.86 PFLOP/s, 17.8 MW
#: (24 MW including cooling).
TIANHE2 = ReferenceSystem(
    name="Tianhe-2",
    rmax_flops=33.86e15,
    power_mw=17.8,
    cooling_overhead=24.0 / 17.8,
)

#: Shoubu (Green500 #1, June 2015): ~7.03 GFLOPS/W.
GREEN500_2015_LEADER = ReferenceSystem(
    name="Shoubu",
    rmax_flops=0.606e15,
    power_mw=0.0864,  # ~86.4 kW measured segment
    cooling_overhead=1.1,
)


def extrapolate_power_mw(
    reference: ReferenceSystem,
    target_flops: float = EXAFLOP,
    scaling_overhead_exponent: float = 1.08,
    include_cooling: bool = True,
) -> float:
    """Power (MW) to reach ``target_flops`` holding the reference's
    efficiency, with super-linear scaling overhead.

    ``power = ref_power * (target/ref_perf) ** exponent``; the default
    exponent 1.08 reflects the observed efficiency erosion when scaling
    out (interconnect + memory growing faster than compute).
    """
    if target_flops <= 0:
        raise ValueError("target performance must be positive")
    if scaling_overhead_exponent < 1.0:
        raise ValueError("scaling overhead exponent must be >= 1")
    ratio = target_flops / reference.rmax_flops
    power = reference.power_mw * ratio ** scaling_overhead_exponent
    if include_cooling:
        power *= reference.cooling_overhead
    return power


def efficiency_required_for(
    target_flops: float = EXAFLOP, power_budget_mw: float = 20.0
) -> float:
    """GFLOPS/W needed to hit ``target_flops`` inside ``power_budget_mw``
    (the DOE's canonical 20 MW exascale envelope) -- the gap ECOSCALE's
    reconfigurable-accelerator approach is aimed at."""
    if target_flops <= 0 or power_budget_mw <= 0:
        raise ValueError("target and budget must be positive")
    return (target_flops / 1e9) / (power_budget_mw * 1e6)


def speedup_needed(reference: ReferenceSystem, target_flops: float = EXAFLOP) -> float:
    """Concurrency/performance multiplier vs. the reference ("a 1000x
    increase in today's concurrency will be necessary", Section 2)."""
    return target_flops / reference.rmax_flops
