"""Energy accounting and exascale power extrapolation.

Everything in the simulated machine self-reports energy in picojoules;
:class:`EnergyLedger` aggregates those numbers by component category so
experiments can report breakdowns (compute vs. data movement vs.
configuration -- the axis the paper's energy argument lives on).

:mod:`repro.energy.exascale` reproduces the paper's Section 1 estimate
that "sustaining exaflop performance requires an enormous 1 GW power"
when extrapolating from Tianhe-2, "with similar, albeit smaller, figures
... extrapolating even the best system of the Green 500 list".
"""

from repro.energy.accounting import EnergyLedger
from repro.energy.exascale import (
    GREEN500_2015_LEADER,
    TIANHE2,
    ReferenceSystem,
    efficiency_required_for,
    extrapolate_power_mw,
)

__all__ = [
    "EnergyLedger",
    "GREEN500_2015_LEADER",
    "ReferenceSystem",
    "TIANHE2",
    "efficiency_required_for",
    "extrapolate_power_mw",
]
