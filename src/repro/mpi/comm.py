"""Communicators and collectives over the simulated inter-node network.

Collectives use the classic algorithms so their *scaling* is right:

- broadcast / reduce: binomial tree, ``ceil(log2 P)`` rounds,
- allreduce / allgather: recursive doubling, ``ceil(log2 P)`` rounds,
- alltoall: pairwise exchange, ``P - 1`` rounds,
- barrier: zero-byte allreduce.

Costs are computed analytically over the network's routed paths: each
round's latency is the maximum message latency in that round (ranks
progress in lockstep), energies add up.  This matches how ECOSCALE's
"CPU-based routers following the application topology" (Section 4) would
carry MPI traffic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network


@dataclass
class CollectiveResult:
    """Cost report for one collective call."""

    name: str
    latency_ns: float
    energy_pj: float
    bytes_moved: int
    rounds: int


@dataclass
class MessageFaults:
    """Lossy-channel state armed on a :class:`Communicator` by the chaos
    controller (:mod:`repro.chaos`).

    Each lost message is paid as a receiver-timeout (``timeout_ns``)
    plus a full retransmission over the routed path, bounded by
    ``max_retries``; each duplicated message spends the path's energy
    and traffic again but rides concurrently (no latency penalty).  The
    RNG is seeded by the chaos controller, so the loss pattern is a pure
    function of the chaos seed and the deterministic message order.
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    timeout_ns: float = 1_000.0
    max_retries: int = 8
    # counters (read by chaos reports)
    lost: int = 0
    duplicated: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        if self.timeout_ns < 0:
            raise ValueError("timeout must be non-negative")


class Communicator:
    """A set of ranks, each bound to a network endpoint."""

    def __init__(self, network: Network, rank_to_node: Sequence[Hashable], name: str = "world") -> None:
        if not rank_to_node:
            raise ValueError("a communicator needs at least one rank")
        self.network = network
        self.rank_to_node: List[Hashable] = list(rank_to_node)
        self.name = name
        self.collective_log: List[CollectiveResult] = []
        # armed by repro.chaos (None = lossless channel, zero overhead)
        self.faults: Optional[MessageFaults] = None

    @property
    def size(self) -> int:
        return len(self.rank_to_node)

    def node_of(self, rank: int) -> Hashable:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return self.rank_to_node[rank]

    def sub_communicator(self, ranks: Sequence[int], name: str = "") -> "Communicator":
        """MPI_Comm_split-style subset communicator."""
        nodes = [self.node_of(r) for r in ranks]
        return Communicator(self.network, nodes, name or f"{self.name}.sub")

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, size_bytes: int) -> Tuple[float, float]:
        """(latency_ns, energy_pj) for one message; accounts link traffic.

        With :attr:`faults` armed, losses cost a timeout plus a
        retransmission and duplicates re-spend path energy/traffic.
        """
        if src == dst:
            return 0.0, 0.0
        msg = Message(
            self.node_of(src), self.node_of(dst), size_bytes, TransactionType.MPI
        )
        latency, energy = self.network.send_cost(msg)
        f = self.faults
        if f is None:
            return latency, energy
        retries = 0
        while retries < f.max_retries and f.rng.random() < f.drop_rate:
            retries += 1
            resend = Message(
                self.node_of(src), self.node_of(dst), size_bytes, TransactionType.MPI
            )
            lat, e = self.network.send_cost(resend)
            latency += f.timeout_ns + lat
            energy += e
        f.lost += retries
        if f.rng.random() < f.duplicate_rate:
            dup = Message(
                self.node_of(src), self.node_of(dst), size_bytes, TransactionType.MPI
            )
            _, e = self.network.send_cost(dup)
            energy += e
            f.duplicated += 1
        return latency, energy

    def _round_cost(self, pairs: Sequence[Tuple[int, int]], size_bytes: int) -> Tuple[float, float, int]:
        """One lockstep round of concurrent (src, dst) messages."""
        worst = 0.0
        energy = 0.0
        moved = 0
        for src, dst in pairs:
            lat, e = self.send(src, dst, size_bytes)
            worst = max(worst, lat)
            energy += e
            moved += size_bytes
        return worst, energy, moved

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _log(self, result: CollectiveResult) -> CollectiveResult:
        self.collective_log.append(result)
        return result

    def broadcast(self, root: int, size_bytes: int) -> CollectiveResult:
        """Binomial-tree broadcast from ``root``."""
        self.node_of(root)
        p = self.size
        have = {root}
        latency = energy = 0.0
        moved = rounds = 0
        stride = 1
        while len(have) < p:
            pairs = []
            senders = sorted(have)
            for s in senders:
                # sender s covers rank (s_rel + stride) relative to root
                rel = (s - root) % p
                target_rel = rel + stride
                if target_rel < p:
                    t = (root + target_rel) % p
                    if t not in have:
                        pairs.append((s, t))
            if not pairs:
                break
            lat, e, m = self._round_cost(pairs, size_bytes)
            latency += lat
            energy += e
            moved += m
            for _, t in pairs:
                have.add(t)
            stride *= 2
            rounds += 1
        return self._log(
            CollectiveResult("broadcast", latency, energy, moved, rounds)
        )

    def reduce(self, root: int, size_bytes: int) -> CollectiveResult:
        """Binomial-tree reduction to ``root`` (same round structure as
        broadcast, reversed; identical cost model)."""
        r = self.broadcast(root, size_bytes)
        self.collective_log.pop()
        return self._log(
            CollectiveResult("reduce", r.latency_ns, r.energy_pj, r.bytes_moved, r.rounds)
        )

    def allreduce(self, size_bytes: int) -> CollectiveResult:
        """Recursive-doubling allreduce (power-of-two padded)."""
        p = self.size
        if p == 1:
            return self._log(CollectiveResult("allreduce", 0.0, 0.0, 0, 0))
        rounds_needed = math.ceil(math.log2(p))
        latency = energy = 0.0
        moved = 0
        for k in range(rounds_needed):
            stride = 1 << k
            pairs = []
            for rank in range(p):
                partner = rank ^ stride
                if partner < p and rank < partner:
                    pairs.append((rank, partner))
                    pairs.append((partner, rank))
            if not pairs:
                continue
            lat, e, m = self._round_cost(pairs, size_bytes)
            latency += lat
            energy += e
            moved += m
        return self._log(
            CollectiveResult("allreduce", latency, energy, moved, rounds_needed)
        )

    def allgather(self, size_bytes_per_rank: int) -> CollectiveResult:
        """Recursive doubling; message size doubles per round."""
        p = self.size
        if p == 1:
            return self._log(CollectiveResult("allgather", 0.0, 0.0, 0, 0))
        rounds_needed = math.ceil(math.log2(p))
        latency = energy = 0.0
        moved = 0
        chunk = size_bytes_per_rank
        for k in range(rounds_needed):
            stride = 1 << k
            pairs = []
            for rank in range(p):
                partner = rank ^ stride
                if partner < p and rank < partner:
                    pairs.append((rank, partner))
                    pairs.append((partner, rank))
            lat, e, m = self._round_cost(pairs, chunk)
            latency += lat
            energy += e
            moved += m
            chunk *= 2
        return self._log(
            CollectiveResult("allgather", latency, energy, moved, rounds_needed)
        )

    def alltoall(self, size_bytes_per_pair: int) -> CollectiveResult:
        """Pairwise-exchange alltoall: P-1 rounds, XOR pairing when P is a
        power of two, rotation otherwise."""
        p = self.size
        if p == 1:
            return self._log(CollectiveResult("alltoall", 0.0, 0.0, 0, 0))
        latency = energy = 0.0
        moved = 0
        rounds = p - 1
        power_of_two = p & (p - 1) == 0
        for step in range(1, p):
            pairs = []
            for rank in range(p):
                partner = (rank ^ step) if power_of_two else ((rank + step) % p)
                if partner != rank:
                    pairs.append((rank, partner))
            lat, e, m = self._round_cost(pairs, size_bytes_per_pair)
            latency += lat
            energy += e
            moved += m
        return self._log(
            CollectiveResult("alltoall", latency, energy, moved, rounds)
        )

    def barrier(self) -> CollectiveResult:
        """Zero-payload allreduce."""
        r = self.allreduce(0)
        self.collective_log.pop()
        return self._log(
            CollectiveResult("barrier", r.latency_ns, r.energy_pj, 0, r.rounds)
        )

    # ------------------------------------------------------------------
    def halo_exchange(
        self, topology, size_bytes: int
    ) -> CollectiveResult:
        """Neighbour exchange over an MPI topology (Cart or Graph): every
        rank sends one halo to each neighbour, all concurrently."""
        pairs = []
        for rank in range(self.size):
            for n in topology.neighbours(rank):
                pairs.append((rank, n))
        lat, e, m = self._round_cost(pairs, size_bytes)
        return self._log(CollectiveResult("halo_exchange", lat, e, m, 1))
