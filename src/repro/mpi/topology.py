"""MPI-3.0-style process topologies.

The paper's programming model leverages "the new topology abstractions"
of MPI-3.0: applications declare their communication structure (cartesian
grids for stencils, general graphs for irregular problems) and the
runtime uses it for rank placement -- mapping neighbouring ranks onto
nearby Workers in the machine hierarchy (the Fig. 1 partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class CartTopology:
    """A cartesian rank grid (MPI_Cart_create semantics)."""

    def __init__(self, dims: Sequence[int], periodic: Sequence[bool] = ()) -> None:
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"dims must be positive, got {dims}")
        self.dims = tuple(dims)
        if periodic and len(periodic) != len(dims):
            raise ValueError("periodic flags must match dims length")
        self.periodic = tuple(periodic) if periodic else tuple(False for _ in dims)

    @property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords(self, rank: int) -> Tuple[int, ...]:
        """MPI_Cart_coords: row-major rank -> coordinates."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        out = []
        rem = rank
        for d in reversed(self.dims):
            out.append(rem % d)
            rem //= d
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank: coordinates -> rank (with periodic wrap)."""
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity mismatch")
        rank = 0
        for c, d, p in zip(coords, self.dims, self.periodic):
            if p:
                c %= d
            if not 0 <= c < d:
                raise ValueError(f"coordinate {c} out of range [0, {d})")
            rank = rank * d + c
        return rank

    def shift(self, rank: int, dimension: int, displacement: int = 1):
        """MPI_Cart_shift: (source, dest) ranks, ``None`` at open edges."""
        if not 0 <= dimension < len(self.dims):
            raise ValueError(f"dimension {dimension} out of range")
        coords = list(self.coords(rank))

        def neighbour(sign: int):
            c = list(coords)
            c[dimension] += sign * displacement
            if self.periodic[dimension]:
                c[dimension] %= self.dims[dimension]
            elif not 0 <= c[dimension] < self.dims[dimension]:
                return None
            return self.rank(c)

        return neighbour(-1), neighbour(+1)

    def neighbours(self, rank: int) -> List[int]:
        """All face neighbours (the stencil halo-exchange partners)."""
        out = []
        for dim in range(len(self.dims)):
            src, dst = self.shift(rank, dim)
            for n in (src, dst):
                if n is not None and n != rank:
                    out.append(n)
        return sorted(set(out))


class GraphTopology:
    """A general communication graph (MPI_Dist_graph_create semantics)."""

    def __init__(self, adjacency: Dict[int, Sequence[int]]) -> None:
        if not adjacency:
            raise ValueError("adjacency must be non-empty")
        ranks = set(adjacency)
        for r, neighbours in adjacency.items():
            for n in neighbours:
                if n not in ranks:
                    raise ValueError(f"rank {r} lists unknown neighbour {n}")
        self._adj = {r: sorted(set(n)) for r, n in adjacency.items()}

    @property
    def size(self) -> int:
        return len(self._adj)

    def neighbours(self, rank: int) -> List[int]:
        if rank not in self._adj:
            raise ValueError(f"unknown rank {rank}")
        return list(self._adj[rank])

    def degree(self, rank: int) -> int:
        return len(self.neighbours(rank))

    def edges(self) -> List[Tuple[int, int]]:
        out = []
        for r, ns in self._adj.items():
            for n in ns:
                if r < n:
                    out.append((r, n))
        return sorted(out)
