"""MPI-style message passing between Compute Nodes.

The ECOSCALE programming model "will start from the widely used MPI-3.0
standard, leveraging the new topology abstractions" (Section 4.4); MPI is
"used for efficient inter-PGAS communication" (Section 2).  This package
provides communicators over the simulated inter-node network,
point-to-point transfers, the standard collectives (implemented with the
classic algorithms so their cost *scales* correctly), and MPI-3.0-style
cartesian/graph process topologies.
"""

from repro.mpi.comm import CollectiveResult, Communicator
from repro.mpi.placement import (
    improve_by_swaps,
    place_by_blocks,
    place_round_robin,
    placement_cost,
)
from repro.mpi.topology import CartTopology, GraphTopology

__all__ = [
    "CartTopology",
    "CollectiveResult",
    "Communicator",
    "GraphTopology",
    "improve_by_swaps",
    "place_by_blocks",
    "place_round_robin",
    "placement_cost",
]
