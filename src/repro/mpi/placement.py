"""Topology-aware rank placement.

Section 4.4: "The programming model for expressing hierarchical data
partitioning will start from the widely used MPI-3.0 standard,
leveraging the new topology abstractions."  The point of declaring a
cartesian/graph topology is that the runtime can *place* ranks so that
topology neighbours land on machine neighbours.

:func:`place_by_blocks` maps a declared topology onto the machine's leaf
order (tree leaves enumerate depth-first, so consecutive leaves are
topologically close); :func:`placement_cost` scores any mapping by
hop-weighted neighbour traffic, and :func:`improve_by_swaps` is a greedy
pairwise-swap refinement (the RAHTM-class heuristic the paper cites).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from repro.interconnect.network import Network


def place_by_blocks(num_ranks: int, workers: Sequence[Hashable]) -> Dict[int, Hashable]:
    """Consecutive ranks onto consecutive leaves (hierarchy-aligned)."""
    if not workers:
        raise ValueError("need at least one worker")
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    return {r: workers[r * len(workers) // num_ranks] for r in range(num_ranks)}


def place_round_robin(num_ranks: int, workers: Sequence[Hashable]) -> Dict[int, Hashable]:
    """The topology-oblivious baseline."""
    if not workers:
        raise ValueError("need at least one worker")
    return {r: workers[r % len(workers)] for r in range(num_ranks)}


def placement_cost(
    topology,
    mapping: Dict[int, Hashable],
    network: Network,
    bytes_per_edge: int = 1,
) -> float:
    """Sum over topology edges of hops(placement) * bytes."""
    cost = 0.0
    ranks = sorted(mapping)
    for rank in ranks:
        for nb in topology.neighbours(rank):
            if nb <= rank:
                continue  # each undirected edge once
            cost += network.hop_distance(mapping[rank], mapping[nb]) * bytes_per_edge
    return cost


def improve_by_swaps(
    topology,
    mapping: Dict[int, Hashable],
    network: Network,
    max_passes: int = 3,
) -> Dict[int, Hashable]:
    """Greedy pairwise-swap refinement of a placement.

    Repeatedly swaps the two ranks whose exchange lowers the total
    hop-weighted cost the most, until no swap helps or ``max_passes``
    sweeps complete.  O(passes * ranks^2 * degree) -- fine at the scales
    the experiments use; the paper's cited RAHTM solves the same problem
    with LP rounding.
    """
    if max_passes < 1:
        raise ValueError("max_passes must be >= 1")
    current = dict(mapping)
    ranks = sorted(current)

    def edge_cost(rank: int) -> float:
        return sum(
            network.hop_distance(current[rank], current[nb])
            for nb in topology.neighbours(rank)
        )

    for _ in range(max_passes):
        improved = False
        for i, a in enumerate(ranks):
            for b in ranks[i + 1:]:
                if current[a] == current[b]:
                    continue
                before = edge_cost(a) + edge_cost(b)
                current[a], current[b] = current[b], current[a]
                after = edge_cost(a) + edge_cost(b)
                if after < before:
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        if not improved:
            break
    return current
