"""Shared batch-experiment harnesses and machine warm-start plumbing.

Historically each CLI command hand-built its machine inline; the service
daemon (``repro.service``) needs to build the *same* machines from the
same seeds so a scripted daemon session stays byte-identical to the
batch run.  This module is the single home for that construction:

- :func:`build_jobs_machine` / :func:`run_jobs_experiment` -- the
  multi-job batch harness (``python -m repro jobs``) as a library call.
- :func:`resolve_warm_start` -- turns a ``warm_start`` argument (bool or
  path to a saved machine snapshot) into a primed template cache, so
  repeated experiments on one topology skip the expensive bring-up.

Warm starts ride the shard layer's :class:`~repro.shard.bringup.NodeTemplate`
machinery: templated builds are bit-identical to cold ones, so a warm
experiment's canonical report matches the cold report byte for byte.
A snapshot path additionally pins *which* topology was prebuilt; passing
a snapshot taken on a different node preset is an error, not a silent
cold build.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from repro.core.runtime.report import MachineReport

WarmStart = Union[bool, str]


def resolve_warm_start(warm_start: WarmStart, node: str) -> bool:
    """Normalize a ``warm_start`` argument against node preset ``node``.

    ``False``/``True`` pass through.  A string is a path to a snapshot
    saved by the service daemon (or the checkpoint subsystem); its
    ``workload`` block must name the same node preset, and resolving it
    primes the process-wide template cache for that shape so the caller's
    build is warm.  Returns whether the build should use templates.
    """
    if isinstance(warm_start, bool):
        if warm_start:
            _prime_template(node)
        return warm_start
    with open(warm_start, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    workload = payload.get("workload") or {}
    nodes = set(workload.get("nodes") or [])
    if workload.get("node"):
        nodes.add(workload["node"])
    if not nodes:
        raise ValueError(
            f"snapshot {warm_start!r} records no node preset; "
            "cannot use it as a warm-start token"
        )
    if node not in nodes:
        known = ", ".join(sorted(nodes))
        raise ValueError(
            f"snapshot {warm_start!r} was taken on node preset(s) {known}; "
            f"refusing to warm-start a {node!r} build from it"
        )
    _prime_template(node)
    return True


def _prime_template(node: str) -> None:
    """Warm the shared template cache for one node preset's shape."""
    from repro.presets import node_preset
    from repro.shard.bringup import shared_template_cache

    shared_template_cache().get(node_preset(node))


def build_jobs_machine(
    preset: str,
    seed: int = 0,
    telemetry=None,
    fault_tolerance=None,
    warm_start: WarmStart = False,
    max_variants: int = 1,
    submit_mix: bool = True,
):
    """Build the ``python -m repro jobs`` machine for one preset.

    Returns the :class:`~repro.core.runtime.jobs.JobManager` owning a
    fresh machine with the preset's job mix submitted (unless
    ``submit_mix=False``, which leaves the manager empty for a service
    session to feed).  Construction order matches the historical CLI
    inline build exactly, so reports stay byte-identical.
    """
    from repro.core.runtime import ExecutionEngine, JobManager
    from repro.presets import build_preset_node, compiled_suite, job_preset
    from repro.sim import Simulator

    mix = job_preset(preset)
    warm = resolve_warm_start(warm_start, mix.node)
    registry, library = compiled_suite(max_variants=max_variants)
    sim = Simulator()
    if callable(telemetry):
        # factory (sim -> hub): the service daemon attaches one per epoch
        telemetry = telemetry(sim)
    node = build_preset_node(sim, mix.node, warm=warm)
    engine = ExecutionEngine(
        node,
        registry,
        library,
        use_daemon=True,
        daemon_period_ns=100_000.0,
        telemetry=telemetry,
        fault_tolerance=fault_tolerance,
    )
    manager = JobManager(engine)
    if submit_mix:
        submit_job_mix(manager, mix, seed)
    return manager, mix


def submit_job_mix(manager, mix, seed: int) -> list:
    """Submit every job of ``mix`` onto ``manager`` (CLI-identical)."""
    from repro.apps import make_layered_dag

    handles = []
    node = manager.engine.node
    for spec in mix.jobs:
        graph = make_layered_dag(
            layers=spec.layers,
            width=spec.width,
            num_workers=len(node),
            functions=("saxpy", "stencil5", "montecarlo"),
            seed=spec.graph_seed + seed,
        )
        handles.append(
            manager.submit_job(
                graph,
                policy=spec.policy,
                priority=spec.priority,
                dataflow=spec.dataflow,
            )
        )
    return handles


def run_jobs_experiment(
    preset: str,
    seed: int = 0,
    telemetry=None,
    fault_tolerance=None,
    warm_start: WarmStart = False,
) -> MachineReport:
    """Run one job-mix preset end to end and return its MachineReport."""
    manager, _ = build_jobs_machine(
        preset,
        seed=seed,
        telemetry=telemetry,
        fault_tolerance=fault_tolerance,
        warm_start=warm_start,
    )
    return manager.run()


def experiment_summary(report: MachineReport) -> Dict[str, Any]:
    """The handful of headline numbers shared by CLI and daemon status."""
    return {
        "makespan_ns": report.makespan_ns,
        "tasks": report.tasks,
        "jobs": len(report.jobs),
        "energy_pj": report.energy_pj,
        "tasks_unrecovered": report.tasks_unrecovered,
    }
