"""The ECOSCALE middleware (Fig. 2, middle layer).

"The middleware will play two main roles, namely providing the
partial-reconfiguration toolset and the SW-HW communication library"
(Section 4.3):

- :class:`PartialReconfigDriver` -- the low-level driver backend with the
  virtualization features the paper lists: "defragmenting the
  reconfigurable resources, accelerator migration, and pre-emptive
  hardware execution".
- :class:`HardwareCallLibrary` -- "a communication library and API in
  order to call any function that is implemented in hardware", with the
  user-level (SMMU-mediated) and OS-mediated paths of Fig. 4.
- :class:`AcceleratorChain` -- "chaining together different accelerator
  modules for building longer complex processing pipelines", the
  energy-saving composition of Section 4.3.
"""

from repro.core.middleware.chaining import AcceleratorChain, ChainCost
from repro.core.middleware.comm import CallPath, HardwareCallLibrary
from repro.core.middleware.driver import DefragReport, PartialReconfigDriver

__all__ = [
    "AcceleratorChain",
    "CallPath",
    "ChainCost",
    "DefragReport",
    "HardwareCallLibrary",
    "PartialReconfigDriver",
]
