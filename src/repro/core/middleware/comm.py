"""The SW-HW communication library.

"it provides a communication library and API in order to call any
function that is implemented in hardware" (Section 4.3).

The library models the two call paths of Fig. 4:

- **USER_LEVEL**: the dual-stage SMMU translates the accelerator's
  virtual addresses in hardware, so a user process pokes the
  accelerator's doorbell registers directly -- per-call cost is a few
  uncached register writes plus any SMMU walk latency.
- **OS_MEDIATED**: without the SMMU the accelerator needs physical
  addresses, so every call traps into the OS (syscall + buffer pinning +
  address set-up), the legacy path whose overhead the SMMU removes.

The FIG4 experiment sweeps call granularity over both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Generator, Optional, Tuple

from repro.core.worker import Worker
from repro.fabric.region import Region
from repro.memory.address import PAGE_SIZE
from repro.memory.smmu import PageTable, TranslationRegime
from repro.sim import Timeout


class CallPath(Enum):
    USER_LEVEL = "user"        # SMMU-translated, direct doorbell
    OS_MEDIATED = "os"         # trap into the kernel per call


@dataclass(frozen=True)
class CallCosts:
    """Fixed per-call overheads (ns)."""

    doorbell_write_ns: float = 40.0     # uncached MMIO register write
    completion_poll_ns: float = 60.0    # read-back of the status register
    syscall_ns: float = 1500.0          # trap + driver entry/exit
    pin_buffer_ns_per_page: float = 300.0   # get_user_pages-style pinning
    os_setup_ns: float = 800.0          # physical address programming


class HardwareCallLibrary:
    """Per-Worker call library in front of the virtualization block."""

    def __init__(self, worker: Worker, costs: CallCosts = CallCosts()) -> None:
        self.worker = worker
        self.costs = costs
        self.user_calls = 0
        self.os_calls = 0
        self._next_context = 1

    # ------------------------------------------------------------------
    def bind_user_context(self, buffer_bytes: int) -> int:
        """Set up an SMMU context for a user process once (maps its
        buffer for the accelerator); amortized over every later call."""
        context = self._next_context
        self._next_context += 1
        pages = max(1, (buffer_bytes + PAGE_SIZE - 1) // PAGE_SIZE)
        stage1, stage2 = PageTable(f"ctx{context}.s1"), PageTable(f"ctx{context}.s2")
        for vpn in range(pages):
            stage1.map(vpn, vpn + 0x1000)
            stage2.map(vpn + 0x1000, vpn + 0x2000)
        self.worker.smmu.attach_context(
            context, TranslationRegime.NESTED, stage1=stage1, stage2=stage2
        )
        return context

    # ------------------------------------------------------------------
    def call_overhead_ns(
        self, path: CallPath, buffer_bytes: int, context: Optional[int] = None
    ) -> float:
        """Analytic per-call overhead, excluding the kernel execution."""
        if path is CallPath.USER_LEVEL:
            overhead = self.costs.doorbell_write_ns + self.costs.completion_poll_ns
            if context is not None:
                # first-touch SMMU walks for the buffer's pages
                _, walk = self.worker.smmu.translate(context, 0)
                overhead += walk
            return overhead
        pages = max(1, (buffer_bytes + PAGE_SIZE - 1) // PAGE_SIZE)
        return (
            self.costs.syscall_ns
            + self.costs.os_setup_ns
            + pages * self.costs.pin_buffer_ns_per_page
            + self.costs.doorbell_write_ns
            + self.costs.completion_poll_ns
        )

    def call(
        self,
        function: str,
        items: int,
        buffer_bytes: int,
        path: CallPath = CallPath.USER_LEVEL,
        context: Optional[int] = None,
    ) -> Generator:
        """Simulation process: one complete hardware function call through
        the chosen path.  Returns total latency_ns."""
        start = self.worker.sim.now
        if path is CallPath.USER_LEVEL:
            self.user_calls += 1
            yield Timeout(self.costs.doorbell_write_ns)
            if context is not None:
                for vpn in range(max(1, (buffer_bytes + PAGE_SIZE - 1) // PAGE_SIZE)):
                    _, walk = self.worker.smmu.translate(context, vpn * PAGE_SIZE)
                    if walk:
                        yield Timeout(walk)
        else:
            self.os_calls += 1
            pages = max(1, (buffer_bytes + PAGE_SIZE - 1) // PAGE_SIZE)
            yield Timeout(
                self.costs.syscall_ns
                + self.costs.os_setup_ns
                + pages * self.costs.pin_buffer_ns_per_page
                + self.costs.doorbell_write_ns
            )
        yield from self.worker.run_hardware(function, items)
        yield Timeout(self.costs.completion_poll_ns)
        return self.worker.sim.now - start
