"""The partial-reconfiguration driver backend.

Wraps a Worker's :class:`~repro.fabric.reconfiguration.ReconfigurationController`
with the virtualization features of Section 4.3: ensure-loaded semantics,
fabric defragmentation, accelerator migration between regions/Workers,
and pre-emptive hardware execution (checkpoint the pipeline state, yield
the region, restore later).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.worker import Worker
from repro.fabric.module_library import AcceleratorModule, ModuleLibrary
from repro.fabric.region import Region, RegionState
from repro.sim import Timeout


@dataclass
class DefragReport:
    moves: int
    freed_regions: int
    largest_free_area_before: float
    largest_free_area_after: float


@dataclass
class _PreemptedContext:
    module: AcceleratorModule
    checkpoint_bytes: int


class PartialReconfigDriver:
    """Driver for one Worker's fabric."""

    #: accelerator architectural state captured on pre-emption
    CHECKPOINT_BYTES = 4096
    #: DRAM-side save/restore throughput (GB/s)
    CHECKPOINT_BW_GBPS = 2.0

    def __init__(self, worker: Worker) -> None:
        self.worker = worker
        self.migrations = 0
        self.preemptions = 0
        self._preempted: Dict[str, _PreemptedContext] = {}

    # ------------------------------------------------------------------
    def ensure_loaded(self, module: AcceleratorModule) -> Generator:
        """Load unless an identical module is already resident.

        Returns the hosting region (or ``None`` if nothing fits).
        """
        region = self.worker.fabric.region_with_function(module.function)
        if region is not None and region.module is not None and region.module.name == module.name:
            return region
        region = yield from self.worker.load_module(module)
        return region

    # ------------------------------------------------------------------
    def fragmentation(self) -> float:
        """1 - (largest free contiguous area / total free area).

        0 means all free capacity is in one usable hole; near 1 means the
        free capacity is scattered in unusably small regions.
        """
        free = [r.capacity.area_units() for r in self.worker.fabric.free_regions()]
        total = sum(free)
        if total == 0:
            return 0.0
        return 1.0 - max(free) / total

    def defragment(self) -> Generator:
        """Consolidate loaded modules into the smallest regions that fit,
        freeing the largest regions for future big modules.

        Each move is a real partial reconfiguration (it streams the
        module's bitstream into the new region).
        """
        fabric = self.worker.fabric
        before = max(
            (r.capacity.area_units() for r in fabric.free_regions()), default=0.0
        )
        moves = 0
        # consider loaded modules smallest-region-first
        loaded = [
            r for r in fabric.regions if r.state is RegionState.READY and r.module
        ]
        for region in sorted(loaded, key=lambda r: r.capacity.area_units(), reverse=True):
            module = region.module
            # the smallest *free* region that still fits the module
            candidates = [
                r
                for r in fabric.free_regions()
                if r.can_host(module)
                and r.capacity.area_units() < region.capacity.area_units()
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda r: r.capacity.area_units())
            loaded_region = yield from self.worker.load_module(module, target)
            if loaded_region is not None:
                self.worker.reconfig.unload(region)
                moves += 1
        after = max(
            (r.capacity.area_units() for r in fabric.free_regions()), default=0.0
        )
        return DefragReport(
            moves=moves,
            freed_regions=len(fabric.free_regions()),
            largest_free_area_before=before,
            largest_free_area_after=after,
        )

    # ------------------------------------------------------------------
    def migrate(self, region: Region, target_driver: "PartialReconfigDriver") -> Generator:
        """Move a loaded accelerator to another Worker's fabric.

        Returns the destination region, or ``None`` if the target cannot
        host it.  Source is blanked only after the destination is READY
        (make-before-break, so the function stays callable domain-wide).
        """
        if region.module is None:
            raise ValueError("cannot migrate an empty region")
        module = region.module
        dest = yield from target_driver.worker.load_module(module)
        if dest is None:
            return None
        self.worker.reconfig.unload(region)
        self.migrations += 1
        target_driver.migrations += 1
        return dest

    # ------------------------------------------------------------------
    def _checkpoint_ns(self) -> float:
        return self.CHECKPOINT_BYTES / self.CHECKPOINT_BW_GBPS

    def preempt(self, region: Region) -> Generator:
        """Pre-emptive hardware execution: save the accelerator context
        and free the region for a higher-priority module."""
        if region.module is None:
            raise ValueError("cannot preempt an empty region")
        module = region.module
        yield Timeout(self._checkpoint_ns())
        self._preempted[module.name] = _PreemptedContext(
            module=module, checkpoint_bytes=self.CHECKPOINT_BYTES
        )
        self.worker.reconfig.unload(region)
        self.preemptions += 1
        return module.name

    def resume(self, module_name: str) -> Generator:
        """Reload a pre-empted module and restore its context.

        Returns the region (or ``None`` if nothing fits right now).
        """
        ctx = self._preempted.get(module_name)
        if ctx is None:
            raise KeyError(f"no pre-empted context for {module_name!r}")
        region = yield from self.worker.load_module(ctx.module)
        if region is None:
            return None
        yield Timeout(self._checkpoint_ns())
        del self._preempted[module_name]
        return region

    @property
    def preempted_modules(self) -> List[str]:
        return sorted(self._preempted)
