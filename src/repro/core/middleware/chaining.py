"""Accelerator chaining.

"we consider chaining together different accelerator modules for building
longer complex processing pipelines, when needed.  This will
substantially increase the amount of processing that is carried out per
unit of transferred data and will consequently result in substantial
energy savings." (Section 4.3)

:class:`AcceleratorChain` composes loaded modules.  Unchained, every
stage round-trips its data through DRAM (write result, read it back for
the next stage).  Chained, intermediate results stream module-to-module
over the fabric's local interconnect, so DRAM sees exactly one read and
one write regardless of chain length -- the per-byte processing gain the
paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.core.worker import Worker
from repro.fabric.module_library import AcceleratorModule
from repro.sim import Timeout


@dataclass(frozen=True)
class ChainCost:
    """Analytic cost report for one pass over ``items`` items."""

    latency_ns: float
    dram_bytes: int
    energy_pj: float
    stages: int

    @property
    def ops_per_dram_byte(self) -> float:
        """Processing per unit of transferred data -- the paper's metric."""
        return self.stages / max(1, self.dram_bytes // 1)


class AcceleratorChain:
    """A pipeline of modules resident on one Worker's fabric."""

    #: fabric-local streaming energy (module-to-module, no DRAM)
    ON_FABRIC_PJ_PER_BYTE = 0.2

    def __init__(self, worker: Worker, modules: Sequence[AcceleratorModule]) -> None:
        if not modules:
            raise ValueError("a chain needs at least one module")
        self.worker = worker
        self.modules: List[AcceleratorModule] = list(modules)

    def __len__(self) -> int:
        return len(self.modules)

    # ------------------------------------------------------------------
    def _stage_latency_ns(self, items: int) -> float:
        return sum(m.latency_ns(items) for m in self.modules)

    def cost_chained(self, items: int, bytes_per_item: int) -> ChainCost:
        """One DRAM read in, one DRAM write out; stages stream on-fabric."""
        if items <= 0 or bytes_per_item <= 0:
            raise ValueError("items and bytes_per_item must be positive")
        data = items * bytes_per_item
        dram_bytes = 2 * data  # in + out, once
        dram_ns = self.worker.dram.timing.row_miss_ns + dram_bytes / self.worker.dram.timing.bandwidth_gbps
        fabric_bytes = (len(self.modules) - 1) * data
        compute_ns = self._stage_latency_ns(items)
        energy = (
            dram_bytes * self.worker.dram.timing.energy_per_byte_pj
            + fabric_bytes * self.ON_FABRIC_PJ_PER_BYTE
            + sum(m.energy_pj(items) for m in self.modules)
        )
        return ChainCost(
            latency_ns=dram_ns + compute_ns,
            dram_bytes=dram_bytes,
            energy_pj=energy,
            stages=len(self.modules),
        )

    def cost_unchained(self, items: int, bytes_per_item: int) -> ChainCost:
        """Every stage round-trips through DRAM (the unchained baseline)."""
        if items <= 0 or bytes_per_item <= 0:
            raise ValueError("items and bytes_per_item must be positive")
        data = items * bytes_per_item
        dram_bytes = 2 * data * len(self.modules)
        dram_ns = len(self.modules) * (
            self.worker.dram.timing.row_miss_ns
            + 2 * data / self.worker.dram.timing.bandwidth_gbps
        )
        compute_ns = self._stage_latency_ns(items)
        energy = dram_bytes * self.worker.dram.timing.energy_per_byte_pj + sum(
            m.energy_pj(items) for m in self.modules
        )
        return ChainCost(
            latency_ns=dram_ns + compute_ns,
            dram_bytes=dram_bytes,
            energy_pj=energy,
            stages=len(self.modules),
        )

    # ------------------------------------------------------------------
    def run_chained(self, items: int, bytes_per_item: int) -> Generator:
        """Simulation process for one chained pass (charges the ledger)."""
        cost = self.cost_chained(items, bytes_per_item)
        yield from self.worker.local_stream(0, 2 * items * bytes_per_item)
        yield Timeout(self._stage_latency_ns(items))
        self.worker.ledger.add(f"{self.worker.name}.fabric", cost.energy_pj)
        return cost
