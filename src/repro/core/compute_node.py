"""The ECOSCALE Compute Node (Fig. 3): a PGAS sub-system of Workers.

"One or more Compute Nodes create an entire and independent PGAS
sub-system including several Worker nodes and offer: (1) UNIMEM: a shared
partitioned global address space that allows Worker nodes to communicate
via regular loads and stores without global cache coherence and
(2) UNILOGIC: shared partitioned reconfigurable resources that share the
UNIMEM space with software tasks."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, List, Optional

from repro.core.worker import Worker, WorkerParams
from repro.energy.accounting import EnergyLedger
from repro.interconnect.link import LinkParams
from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network
from repro.interconnect.topology import build_tree, level_params
from repro.memory.address import AddressRange
from repro.memory.unimem import UnimemSpace
from repro.pgas.allocator import GlobalAllocator
from repro.pgas.numa import NumaDomain, NumaMap
from repro.sim import Simulator


@dataclass(frozen=True)
class ComputeNodeParams:
    """Shape of one Compute Node."""

    num_workers: int = 4
    worker: WorkerParams = WorkerParams()
    dram_window: int = 1 << 30        # each worker's slice of the PGAS space
    intra_fanout: Optional[int] = None  # workers per L0 switch (None = single level)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.dram_window <= 0:
            raise ValueError("dram window must be positive")


class ComputeNode:
    """Workers + multi-layer interconnect + UNIMEM + NUMA allocator."""

    def __init__(
        self,
        sim: Simulator,
        params: ComputeNodeParams = ComputeNodeParams(),
        node_id: int = 0,
        ledger: Optional[EnergyLedger] = None,
        template=None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.name = f"node{node_id}"
        self.ledger = ledger if ledger is not None else EnergyLedger()

        # multi-layer intra-node interconnect: a tree of workers
        n = params.num_workers
        if params.intra_fanout and params.intra_fanout < n:
            fanout = params.intra_fanout
            groups = (n + fanout - 1) // fanout
            self.network, endpoints = build_tree(sim, [groups, fanout])
            endpoints = endpoints[:n]
        else:
            self.network, endpoints = build_tree(sim, [n])
        self.endpoints: List[Hashable] = endpoints

        # ``template`` (see repro.shard.bringup.NodeTemplate) shares the
        # structures that are pure functions of ``params`` -- tile grid,
        # region budget, NUMA distance matrix, intra-tree route paths --
        # across identical nodes; every mutable object stays per-node.
        grid = template.grid if template is not None else None
        budget = template.budget if template is not None else None
        self.workers: List[Worker] = [
            Worker(
                sim, i, params.worker, ledger=self.ledger,
                name=f"{self.name}.w{i}", grid=grid, budget=budget,
            )
            for i in range(n)
        ]
        if template is not None and template.route_paths:
            self.network.seed_routes(template.route_paths)

        # UNIMEM space + NUMA-aware allocator over it
        self.unimem = UnimemSpace(n, params.dram_window)
        domains = [
            NumaDomain(i, endpoints[i], self.unimem.map.window(i)) for i in range(n)
        ]
        if template is not None and template.numa_distances is not None:
            self.numa = NumaMap(domains, distances=template.numa_distances)
        else:
            self.numa = NumaMap(domains, self.network)
        self.allocator = GlobalAllocator(self.numa)

    def __len__(self) -> int:
        return len(self.workers)

    def attach_telemetry(self, hub) -> None:
        """Route this node's Workers and NoC into a telemetry hub."""
        from repro.telemetry.wiring import attach_node

        if hub is not None and hub.enabled:
            attach_node(hub, self)

    def worker(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def endpoint(self, worker_id: int) -> Hashable:
        return self.endpoints[worker_id]

    # ------------------------------------------------------------------
    # UNIMEM transactions
    # ------------------------------------------------------------------
    def hop_distance(self, a: int, b: int) -> int:
        return self.network.hop_distance(self.endpoints[a], self.endpoints[b])

    def transfer_cost(
        self,
        src_worker: int,
        dst_worker: int,
        size: int,
        kind: TransactionType = TransactionType.DMA,
    ) -> tuple:
        """Analytic (latency_ns, energy_pj) of moving ``size`` bytes."""
        if src_worker == dst_worker:
            return 0.0, 0.0
        msg = Message(self.endpoints[src_worker], self.endpoints[dst_worker], size, kind)
        lat, energy = self.network.send_cost(msg)
        self.ledger.add(f"{self.name}.noc", energy)
        return lat, energy

    def transfer(
        self,
        src_worker: int,
        dst_worker: int,
        size: int,
        kind: TransactionType = TransactionType.DMA,
    ) -> Generator:
        """Simulation process: move ``size`` bytes across the interconnect."""
        if src_worker == dst_worker:
            return None
        msg = Message(self.endpoints[src_worker], self.endpoints[dst_worker], size, kind)
        energy_before = self.network.total_energy_pj()
        delivered = yield from self.network.send(msg)
        self.ledger.add(f"{self.name}.noc", self.network.total_energy_pj() - energy_before)
        return delivered

    def remote_access(
        self, node: int, rng: AddressRange, is_write: bool
    ) -> Generator:
        """Simulation process: one UNIMEM load/store burst by Worker
        ``node`` against the global address range ``rng``.

        Local chunks stream from local DRAM (cacheable at home); remote
        chunks travel as load/store transactions (uncached unless the
        page home was moved here).  Returns total latency.
        """
        plan = self.unimem.plan_access(node, rng, is_write)
        start = self.sim.now
        accessor = self.workers[node]
        for backing_worker, sub, cacheable in plan.chunks:
            offset = self.unimem.map.local_offset(sub.base)
            if backing_worker == node and cacheable:
                # ACE path: coherent local access through the real cache.
                # Tag with the *global* address: local offsets would alias
                # other workers' windows in the same tag array.
                yield from accessor.cached_access(sub.base, sub.size, is_write)
            elif backing_worker == node:
                # local DRAM but home moved away: uncached direct access
                yield from accessor.local_stream(offset, sub.size, is_write)
            elif cacheable:
                # remote DRAM whose home was moved *here*: the accessor
                # may cache -- only misses cross the interconnect.
                hits, misses = accessor.cache.touch_range(sub.base, sub.size, is_write)
                if misses:
                    line = accessor.cache.geometry.line_bytes
                    kind = TransactionType.STORE if is_write else TransactionType.LOAD
                    yield from self.transfer(node, backing_worker, misses * line, kind)
                    yield from self.workers[backing_worker].local_stream(
                        offset, misses * line, is_write
                    )
            else:
                # plain remote access: uncached load/store over the NoC
                kind = TransactionType.STORE if is_write else TransactionType.LOAD
                yield from self.transfer(node, backing_worker, sub.size, kind)
                yield from self.workers[backing_worker].local_stream(
                    offset, sub.size, is_write
                )
        return self.sim.now - start

    # ------------------------------------------------------------------
    def fabric_summary(self) -> Dict[str, object]:
        return {
            "workers": len(self.workers),
            "regions": sum(len(w.fabric) for w in self.workers),
            "loaded": {
                w.name: w.fabric.loaded_functions() for w in self.workers
            },
            "reconfigurations": sum(w.reconfig.reconfigurations for w in self.workers),
        }
