"""The full ECOSCALE machine: Compute Nodes joined by an MPI network.

"The Compute Nodes are interconnected through an MPI-based multi-layer
interconnection" matching the application topology of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.compute_node import ComputeNode, ComputeNodeParams
from repro.energy.accounting import EnergyLedger
from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network
from repro.interconnect.topology import build_tree, level_params
from repro.memory.translation import ProgressiveTranslator, build_hierarchy_translator
from repro.mpi.comm import Communicator
from repro.sim import Simulator


@dataclass(frozen=True)
class MachineParams:
    """Shape of the whole machine.

    ``inter_node_fanouts`` describes the tree above the Compute Nodes
    (chassis / cabinet levels); its product must equal ``num_nodes``.
    """

    num_nodes: int = 2
    node: ComputeNodeParams = ComputeNodeParams()
    inter_node_fanouts: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("need at least one compute node")
        if self.inter_node_fanouts is not None:
            product = 1
            for f in self.inter_node_fanouts:
                product *= f
            if product != self.num_nodes:
                raise ValueError(
                    f"fanouts {self.inter_node_fanouts} do not produce "
                    f"{self.num_nodes} nodes"
                )


class Machine:
    """Compute Nodes + the inter-node (MPI) network + world communicator."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams = MachineParams(),
        ledger: Optional[EnergyLedger] = None,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None

        self.nodes: List[ComputeNode] = [
            ComputeNode(sim, params.node, node_id=i, ledger=self.ledger)
            for i in range(params.num_nodes)
        ]

        fanouts = params.inter_node_fanouts or [params.num_nodes]
        # inter-node links are the upper hierarchy levels: shift level
        # params up by the intra-node depth so costs keep climbing.
        depth = len(fanouts)
        level_shift = 1
        params_per_level = [
            level_params(depth - 1 - d + level_shift) for d in range(depth)
        ]
        self.inter_network, endpoints = build_tree(sim, list(fanouts), params_per_level)
        self.node_endpoints = endpoints
        self.world = Communicator(self.inter_network, endpoints, name="world")

        if self.telemetry is not None:
            from repro.telemetry.wiring import attach_machine

            attach_machine(self.telemetry, self)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_workers(self) -> int:
        return sum(len(n) for n in self.nodes)

    def node(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    def worker(self, node_id: int, worker_id: int):
        return self.nodes[node_id].worker(worker_id)

    # ------------------------------------------------------------------
    def max_hop_distance(self) -> int:
        """Worst-case Worker-to-Worker hops: through both intra trees and
        the inter-node tree (the Section 2 'five hops at petascale, six
        or seven at exascale' metric)."""
        intra = max(
            n.network.diameter_hops(n.endpoints) for n in self.nodes
        )
        if len(self.nodes) == 1:
            return intra
        inter = self.inter_network.diameter_hops(self.node_endpoints)
        # leaf -> node root (intra/2 up) + inter + node root -> leaf
        return intra + inter

    def total_energy_pj(self) -> float:
        return self.ledger.total_pj()

    def energy_breakdown(self) -> dict:
        return self.ledger.breakdown(depth=2)

    # ------------------------------------------------------------------
    # cross-node interprocessor communication (progressive translation)
    # ------------------------------------------------------------------
    def cluster_translator(self) -> ProgressiveTranslator:
        """A progressive-address-translation chain matching this
        machine's hierarchy depth (Katevenis [12] on top of UNIMEM:
        cross-node addresses are rewritten once per level crossed, so
        no node holds a global map)."""
        fanouts = self.params.inter_node_fanouts or [self.params.num_nodes]
        # one level per inter-node tier plus one for the node boundary
        return build_hierarchy_translator(levels=len(fanouts) + 1)

    def cross_node_access_cost(
        self,
        src_node: int,
        src_worker: int,
        dst_node: int,
        dst_worker: int,
        size: int,
    ) -> Tuple[float, float]:
        """(latency_ns, energy_pj) of one worker-to-worker load/store
        across Compute Nodes: progressive translation at each level, the
        inter-node tree, and the intra-node fabrics at both ends."""
        if src_node == dst_node:
            return self.nodes[src_node].transfer_cost(
                src_worker, dst_worker, size, TransactionType.LOAD
            )
        translator = self.cluster_translator()
        window = 1 << 30
        # an address aliased at the top of the hierarchy: full-depth rewrite
        _, translate_ns, _ = translator.translate(len(translator.steps) * window)
        msg = Message(
            self.node_endpoints[src_node],
            self.node_endpoints[dst_node],
            size,
            TransactionType.LOAD,
        )
        inter_lat, inter_energy = self.inter_network.send_cost(msg)
        # source worker -> node router, node router -> destination worker
        src_lat, src_energy = self.nodes[src_node].transfer_cost(
            src_worker, 0, size, TransactionType.LOAD
        )
        dst_lat, dst_energy = self.nodes[dst_node].transfer_cost(
            0, dst_worker, size, TransactionType.LOAD
        )
        self.ledger.add("cluster.unimem", inter_energy)
        return (
            translate_ns + inter_lat + src_lat + dst_lat,
            inter_energy + src_energy + dst_energy,
        )
