"""The ECOSCALE Worker node (Fig. 4).

A Worker is "an independent computing unit that can execute, fork, and
join tasks or threads of an HPC application in parallel with the other
Workers.  It includes a CPU, a reconfigurable block and an off-chip DRAM
memory" (Section 4.1).  The block diagram adds the cache-coherent
interconnect with ACE (snooped, for cache-carrying masters) and ACE-lite
(non-snooped) ports, the dual-stage SMMU, and the Virtualization block in
front of the reconfigurable fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.fabric.floorplan import Floorplanner, TileGrid
from repro.fabric.module_library import AcceleratorModule, ModuleLibrary
from repro.fabric.region import Fabric, Region
from repro.fabric.reconfiguration import ConfigPort, ReconfigurationController
from repro.fabric.virtualization import VirtualizedAccelerator
from repro.hls.ir import Kernel
from repro.hls.software import SoftwareCostModel
from repro.memory.cache import Cache, CacheGeometry
from repro.memory.dram import Dram, DramTiming
from repro.memory.smmu import Smmu
from repro.energy.accounting import EnergyLedger
from repro.sim import Resource, Simulator, Timeout


class FunctionRegistry:
    """Maps accelerable function names to their kernel IR.

    Both the software path (CPU cost model) and the HLS flow key off the
    same :class:`~repro.hls.ir.Kernel`, so HW/SW estimates stay
    comparable -- the property the runtime's device selection relies on.
    """

    def __init__(self) -> None:
        self._kernels: Dict[str, Kernel] = {}

    def register(self, kernel: Kernel) -> None:
        if kernel.name in self._kernels:
            raise ValueError(f"function {kernel.name!r} already registered")
        self._kernels[kernel.name] = kernel

    def kernel(self, function: str) -> Kernel:
        if function not in self._kernels:
            raise KeyError(f"unknown function {function!r}")
        return self._kernels[function]

    def __contains__(self, function: str) -> bool:
        return function in self._kernels

    def functions(self):
        return sorted(self._kernels)


@dataclass(frozen=True)
class WorkerParams:
    """Per-Worker hardware configuration (Zynq-Ultrascale-class defaults)."""

    cpu_cores: int = 4
    software: SoftwareCostModel = SoftwareCostModel()
    cache: CacheGeometry = CacheGeometry(size_bytes=1 << 20, line_bytes=64, associativity=16)
    dram: DramTiming = DramTiming()
    fabric_columns: int = 60
    fabric_rows: int = 50
    fabric_regions: int = 2
    config_port: ConfigPort = ConfigPort()
    use_config_compression: bool = True
    smmu_tlb_entries: int = 64

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError("a Worker needs at least one CPU core")
        if self.fabric_regions < 1:
            raise ValueError("a Worker needs at least one reconfigurable region")


class Worker:
    """One Worker: CPU cluster, cache, DRAM, SMMU and reconfigurable block."""

    def __init__(
        self,
        sim: Simulator,
        worker_id: int,
        params: WorkerParams = WorkerParams(),
        ledger: Optional[EnergyLedger] = None,
        name: str = "",
        grid: Optional[TileGrid] = None,
        budget: Optional[list] = None,
    ) -> None:
        self.sim = sim
        self.worker_id = worker_id
        self.params = params
        self.name = name or f"worker{worker_id}"
        self.ledger = ledger if ledger is not None else EnergyLedger()

        self.cpu = Resource(sim, capacity=params.cpu_cores, name=f"{self.name}.cpu")
        self.cache = Cache(params.cache, name=f"{self.name}.cache")
        self.dram = Dram(sim, params.dram, name=f"{self.name}.dram")
        self.smmu = Smmu(tlb_entries=params.smmu_tlb_entries, name=f"{self.name}.smmu")

        # ``grid``/``budget`` let shard bring-up share one immutable
        # TileGrid (and its prefix sums) plus the frozen region budget
        # across identical Workers; building them fresh is the default.
        if grid is None:
            grid = TileGrid.standard(params.fabric_columns, params.fabric_rows)
        self.floorplanner = Floorplanner(grid)
        if budget is None:
            budget = self.floorplanner.budget_regions(params.fabric_regions)
        self.fabric = Fabric(sim, budget, name=f"{self.name}.fabric")
        self.reconfig = ReconfigurationController(
            sim,
            self.fabric,
            params.config_port,
            use_compression=params.use_config_compression,
            name=self.name,
        )
        # virtualization block front-ends, one per READY region
        self._accelerators: Dict[int, VirtualizedAccelerator] = {}

        self.sw_calls = 0
        self.hw_calls = 0
        # calls served per tenant job (multi-tenant runtime accounting)
        self.calls_by_job: Dict[int, int] = {}

    def note_job_call(self, job_id: int) -> None:
        """One runtime call served on this Worker for tenant ``job_id``."""
        self.calls_by_job[job_id] = self.calls_by_job.get(job_id, 0) + 1

    # ------------------------------------------------------------------
    # software execution path
    # ------------------------------------------------------------------
    def software_latency_ns(self, kernel: Kernel, items: int) -> float:
        return self.params.software.latency_ns(kernel, items)

    def run_software(self, kernel: Kernel, items: int) -> Generator:
        """Simulation process: run ``items`` iterations on one CPU core.

        ``yield from worker.run_software(kernel, n)``; returns latency_ns.
        """
        start = self.sim.now
        latency = self.software_latency_ns(kernel, items)
        yield from self.cpu.use(latency)
        self.sw_calls += 1
        self.ledger.add(
            f"{self.name}.cpu", self.params.software.energy_pj(kernel, items)
        )
        return self.sim.now - start

    def run_software_batch(self, kernel: Kernel, chunks) -> Generator:
        """Simulation process: run independent work-group chunks concurrently.

        ``chunks`` is a sequence of per-chunk item counts; each chunk
        occupies one CPU core for its own latency, bounded by the core
        count exactly like per-chunk :meth:`run_software` processes --
        but the whole batch costs a couple of simulation events per chunk
        instead of a full process each.  Returns elapsed ns.
        """
        chunks = [items for items in chunks if items > 0]
        if not chunks:
            return 0.0
        start = self.sim.now
        software = self.params.software
        yield from self.cpu.use_batch(
            [software.latency_ns(kernel, items) for items in chunks]
        )
        self.sw_calls += len(chunks)
        for items in chunks:
            self.ledger.add(f"{self.name}.cpu", software.energy_pj(kernel, items))
        return self.sim.now - start

    # ------------------------------------------------------------------
    # reconfigurable block
    # ------------------------------------------------------------------
    def accelerator_for_region(self, region: Region) -> VirtualizedAccelerator:
        """The virtualization-block front-end of a READY region."""
        if region.module is None:
            raise ValueError(f"region {region.region_id} has no module loaded")
        accel = self._accelerators.get(region.region_id)
        if accel is None or accel.module is not region.module:
            accel = VirtualizedAccelerator(
                self.sim, region.module, pipelined=True,
                name=f"{self.name}.r{region.region_id}",
            )
            self._accelerators[region.region_id] = accel
        return accel

    def load_module(self, module: AcceleratorModule, region: Optional[Region] = None) -> Generator:
        """Simulation process: partial-reconfigure ``module`` in.

        Returns the region, or ``None`` when nothing fits.  Charges
        configuration energy to this Worker's ledger.
        """
        before = self.reconfig.config_energy_pj
        target = yield from self.reconfig.load(module, region)
        self.ledger.add(f"{self.name}.config", self.reconfig.config_energy_pj - before)
        if target is not None:
            self._accelerators.pop(target.region_id, None)
        return target

    def hosted_region(self, function: str) -> Optional[Region]:
        return self.fabric.region_with_function(function)

    def run_hardware(self, function: str, items: int) -> Generator:
        """Simulation process: invoke a locally loaded hardware function.

        Returns latency_ns.  Raises ``LookupError`` if not loaded -- the
        runtime decides loads, the Worker only executes.
        """
        region = self.hosted_region(function)
        if region is None:
            raise LookupError(f"function {function!r} is not loaded on {self.name}")
        accel = self.accelerator_for_region(region)
        start = self.sim.now
        before = accel.energy_pj
        yield from accel.call(self.name, items)
        region.last_used_at = self.sim.now
        self.hw_calls += 1
        self.ledger.add(f"{self.name}.fabric", accel.energy_pj - before)
        return self.sim.now - start

    # ------------------------------------------------------------------
    # local memory path
    # ------------------------------------------------------------------
    def local_stream(self, offset: int, size: int, is_write: bool = False, reuse: float = 0.0) -> Generator:
        """Simulation process: stream ``size`` bytes to/from local DRAM.

        ``reuse`` in [0, 1) is the fraction of traffic served by the local
        cache (ACE path); only the remainder touches DRAM.
        """
        if not 0.0 <= reuse < 1.0:
            raise ValueError(f"reuse must be in [0, 1), got {reuse}")
        dram_bytes = max(1, int(size * (1.0 - reuse)))
        energy_before = self.dram.energy_pj
        latency = self.dram.access(offset % self.params.dram.capacity_bytes, dram_bytes, is_write)
        yield Timeout(latency)
        self.ledger.add(f"{self.name}.dram", self.dram.energy_pj - energy_before)
        return latency

    #: per-line hit service time of the coherent (ACE-side) cache
    CACHE_HIT_NS = 2.0
    #: energy of one cache lookup/fill
    CACHE_ACCESS_PJ = 0.5

    def cached_access(self, offset: int, size: int, is_write: bool = False) -> Generator:
        """Simulation process: a CPU-side coherent access through this
        Worker's cache (the ACE path of Fig. 4).

        Unlike :meth:`local_stream` (whose ``reuse`` is an *assumed*
        locality figure for accelerator streaming), this drives the real
        tag array: hits are served at cache speed, only misses (plus
        dirty evictions) touch DRAM.  Returns the latency.
        """
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        hits, misses = self.cache.touch_range(offset, size, is_write)
        line = self.cache.geometry.line_bytes
        latency = hits * self.CACHE_HIT_NS
        energy_before = self.dram.energy_pj
        if misses:
            latency += self.dram.access(
                offset % self.params.dram.capacity_bytes, misses * line, is_write
            )
        self.ledger.add(f"{self.name}.dram", self.dram.energy_pj - energy_before)
        self.ledger.add(
            f"{self.name}.cache", (hits + misses) * self.CACHE_ACCESS_PJ
        )
        yield Timeout(latency)
        return latency

    def drop_cache_range(self, offset: int, size: int) -> int:
        """Invalidate the lines of one range (page re-homing support);
        returns the number of dirty lines written back."""
        return self.cache.flush_page(offset, size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Worker {self.name} regions={len(self.fabric)}>"
