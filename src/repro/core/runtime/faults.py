"""Failure detection and task retry: resilience above the fabric.

The fabric layer already survives broken *regions*
(:mod:`repro.core.resilience`); this module extends the story to broken
*Workers* -- the dominant failure domain at exascale (Ammendola et al.
2018).  A :class:`TaskSupervisor` armed on an
:class:`~repro.core.runtime.engine.ExecutionEngine` provides:

- **heartbeat failure detection**: a periodic monitor pings every
  Worker's scheduler; ``miss_threshold`` consecutive missed beats
  declare the Worker failed, so detection latency is bounded by
  ``miss_threshold * heartbeat_period_ns``,
- **re-dispatch**: queued and in-flight tasks of a failed Worker are
  reclaimed and resubmitted to survivors through the work distributor
  (which drops the failed Worker from the placement pool),
- **bounded exponential backoff retry**: each re-dispatch waits
  ``min(base * 2**(attempt-1), cap)``, optionally scaled by a
  seed-deterministic per-(task, attempt) jitter factor so correlated
  failures do not retry in lockstep; tasks that exhaust
  ``max_attempts`` -- or arrive while the machine-wide sliding-window
  retry budget is spent -- are recorded unrecovered and their
  completion signal fired with ``failed=True`` so a run always
  terminates,
- **speculative timeout retry** (optional): an in-flight task older than
  ``task_timeout_ns`` on a *live* Worker (e.g. stalled behind a dead
  link) is duplicated onto another Worker; the first completion wins.

With no supervisor armed the runtime's behaviour is bit-identical to
the pre-fault-tolerance code path (the telemetry NULL-hub pattern).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional

from repro.core.runtime.scheduler import WorkItem
from repro.sim import Timeout, spawn


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """Knobs of the self-healing runtime."""

    heartbeat_period_ns: float = 20_000.0
    miss_threshold: int = 2
    max_attempts: int = 4
    backoff_base_ns: float = 10_000.0
    backoff_cap_ns: float = 200_000.0
    task_timeout_ns: Optional[float] = None   # None = no speculative retry
    recover_fabric: bool = True  # reload a dead Worker's modules elsewhere
    # seed-deterministic backoff jitter: each retry waits the exponential
    # base scaled by a factor drawn uniformly from [1-j, 1+j] out of a
    # per-(task, attempt) RNG stream.  0.0 = the exact legacy schedule,
    # so mass failures retry in lockstep (the storm this knob breaks up).
    backoff_jitter: float = 0.0
    # machine-wide retry budget: at most ``retry_budget`` re-dispatches
    # per sliding ``retry_budget_window_ns`` across *all* tasks.  Over
    # budget, a reclaimed task is recorded unrecovered instead of
    # retried, so a correlated-failure storm degrades to bounded loss
    # rather than livelocking the event loop.  None = unlimited.
    retry_budget: Optional[int] = None
    retry_budget_window_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.heartbeat_period_ns <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff must be non-negative")
        if self.task_timeout_ns is not None and self.task_timeout_ns <= 0:
            raise ValueError("task timeout must be positive")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff jitter must be in [0, 1)")
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ValueError("retry budget must be >= 1 (or None)")
        if self.retry_budget_window_ns <= 0:
            raise ValueError("retry budget window must be positive")

    def backoff_ns(self, attempt: int, key: Optional[object] = None) -> float:
        """Bounded exponential backoff for retry number ``attempt`` (1-based).

        ``key`` (typically the task id) selects the jitter stream; string
        seeding hashes via sha512, so the factor is stable across
        processes -- same task, same attempt, same wait, every run.
        """
        base = min(self.backoff_base_ns * (2 ** (attempt - 1)), self.backoff_cap_ns)
        if self.backoff_jitter <= 0.0 or key is None:
            return base
        u = random.Random(f"backoff:{key}:{attempt}").random()
        return base * (1.0 + self.backoff_jitter * (2.0 * u - 1.0))


@dataclass
class WorkerFailureRecord:
    """One Worker failure: crash, detection, re-dispatch, recovery."""

    worker_id: int
    crashed_at: float
    permanent: bool = True
    detected_at: Optional[float] = None
    tasks_redispatched: int = 0
    outstanding: int = 0            # re-dispatched tasks not yet finished
    recovered_at: Optional[float] = None   # last re-dispatched task done
    rejoined_at: Optional[float] = None    # transient Worker back in pool

    @property
    def detection_ns(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.crashed_at

    @property
    def time_to_recover_ns(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.crashed_at

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "crashed_at": self.crashed_at,
            "permanent": self.permanent,
            "detected_at": self.detected_at,
            "tasks_redispatched": self.tasks_redispatched,
            "recovered_at": self.recovered_at,
            "rejoined_at": self.rejoined_at,
        }


class TaskSupervisor:
    """Heartbeat monitor + retry machinery for one Execution Engine."""

    def __init__(self, engine, policy: FaultTolerancePolicy, telemetry=None) -> None:
        self.engine = engine
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.failures: List[WorkerFailureRecord] = []
        self.speculative: List[WorkerFailureRecord] = []   # timeout retries
        self.unrecovered: List[WorkItem] = []
        self.tasks_retried = 0
        self.retries_denied = 0        # budget-exhausted give-ups
        self.work_lost_ns = 0.0
        self._retry_times: Deque[float] = deque()   # retry budget window
        self._misses: Dict[int, int] = {}
        self._open: Dict[int, WorkerFailureRecord] = {}   # detected, not rejoined
        self._running = True

    # ------------------------------------------------------------------
    # lifecycle (the engine spawns run() and calls stop())
    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._running = False

    def run(self) -> Generator:
        """The heartbeat loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.policy.heartbeat_period_ns)
            if not self._running:
                return
            for scheduler in self.engine.schedulers:
                w = scheduler.worker_id
                if scheduler.crashed:
                    if w in self._open:
                        continue        # already declared, awaiting rejoin
                    self._misses[w] = self._misses.get(w, 0) + 1
                    if self._misses[w] >= self.policy.miss_threshold:
                        self._declare_failed(w)
                else:
                    self._misses[w] = 0
            if self.policy.task_timeout_ns is not None:
                self._check_timeouts()

    # ------------------------------------------------------------------
    # crash notifications (called synchronously by the engine)
    # ------------------------------------------------------------------
    def notify_crash(self, worker_id: int, permanent: bool) -> WorkerFailureRecord:
        record = WorkerFailureRecord(
            worker_id=worker_id,
            crashed_at=self.engine.node.sim.now,
            permanent=permanent,
        )
        self.failures.append(record)
        return record

    def notify_recover(self, worker_id: int) -> None:
        self._misses[worker_id] = 0
        record = self._open.pop(worker_id, None)
        now = self.engine.node.sim.now
        for failure in reversed(self.failures):
            if failure.worker_id == worker_id and failure.rejoined_at is None:
                failure.rejoined_at = now
                break
        if record is not None and record.outstanding == 0 and record.recovered_at is None:
            record.recovered_at = now

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _failure_record(self, worker_id: int) -> WorkerFailureRecord:
        for failure in reversed(self.failures):
            if failure.worker_id == worker_id and failure.detected_at is None:
                return failure
        # crash the engine was never told about (e.g. direct scheduler.fail())
        record = WorkerFailureRecord(
            worker_id=worker_id, crashed_at=self.engine.node.sim.now
        )
        self.failures.append(record)
        return record

    def _declare_failed(self, worker_id: int) -> None:
        sim = self.engine.node.sim
        record = self._failure_record(worker_id)
        record.detected_at = sim.now
        self._open[worker_id] = record
        # leave the placement pool first, then reclaim the backlog: events
        # are atomic callbacks, so no submission can slip in between
        self.engine.distributor.mark_down(worker_id)
        scheduler = self.engine.schedulers[worker_id]
        orphans = scheduler.drain_pending()
        inflight = scheduler.current_item
        if (
            inflight is not None
            and not inflight.done.triggered
            and not inflight.redispatched
        ):
            scheduler.queue.enqueued -= 1   # its pop will never complete here
            orphans.append(inflight)
        if self.telemetry is not None:
            self.telemetry.event(
                "runtime.worker_failed",
                f"{self.engine.node.name}.runtime",
                worker=worker_id,
                detection_ns=record.detection_ns,
                orphans=len(orphans),
            )
        for item in orphans:
            item.redispatched = True
            record.tasks_redispatched += 1
            record.outstanding += 1
            spawn(sim, self._retry(item, record), name=f"retry.{item.task.task_id}")
        if record.outstanding == 0:
            record.recovered_at = sim.now

    def _budget_exhausted(self) -> bool:
        """Sliding-window check of the machine-wide retry budget."""
        budget = self.policy.retry_budget
        if budget is None:
            return False
        now = self.engine.node.sim.now
        cutoff = now - self.policy.retry_budget_window_ns
        times = self._retry_times
        while times and times[0] <= cutoff:
            times.popleft()
        return len(times) >= budget

    def _retry(self, item: WorkItem, record: WorkerFailureRecord) -> Generator:
        item.attempts += 1
        if item.attempts > self.policy.max_attempts - 1:
            self._give_up(item, record)
            return
        yield Timeout(self.policy.backoff_ns(item.attempts, key=item.task.task_id))
        alive = [
            w for w in range(len(self.engine.schedulers))
            if w not in self.engine.distributor.down_workers
        ]
        if not alive:
            self._give_up(item, record)
            return
        if self._budget_exhausted():
            self.retries_denied += 1
            if self.telemetry is not None:
                self.telemetry.event(
                    "runtime.retry_budget_exhausted",
                    f"{self.engine.node.name}.runtime",
                    task=item.task.task_id,
                    job=item.job_id,
                    budget=self.policy.retry_budget,
                    window_ns=self.policy.retry_budget_window_ns,
                )
            self._give_up(item, record)
            return
        self._retry_times.append(self.engine.node.sim.now)
        # re-place through the owning job's policy: retries preserve
        # tenant isolation (same job id, same decision rules)
        worker = self.engine.distributor.choose_worker(
            item.task, observer=0, job=item.job_id
        )
        item.redispatched = False       # back in a live queue, claimable again
        self.engine.schedulers[worker].resubmit(item)
        self.tasks_retried += 1
        self.engine.jobs.record(item.job_id).tasks_retried += 1
        if self.telemetry is not None:
            attrs = dict(
                task=item.task.task_id,
                function=item.task.function,
                attempt=item.attempts,
                worker=worker,
                job=item.job_id,
            )
            if item.task.tags:
                # retry-onto-survivor stays attributable to its requests
                attrs["requests"] = item.task.tags.get("requests")
            self.telemetry.event(
                "runtime.task_retry",
                f"{self.engine.node.name}.runtime",
                **attrs,
            )
        yield item.done
        record.outstanding -= 1
        if record.outstanding == 0 and record.recovered_at is None:
            record.recovered_at = self.engine.node.sim.now
            if self.telemetry is not None:
                self.telemetry.event(
                    "runtime.worker_recovered",
                    f"{self.engine.node.name}.runtime",
                    worker=record.worker_id,
                    time_to_recover_ns=record.time_to_recover_ns,
                )

    def _give_up(self, item: WorkItem, record: WorkerFailureRecord) -> None:
        item.failed = True
        self.unrecovered.append(item)
        self.engine.jobs.record(item.job_id).tasks_unrecovered += 1
        record.outstanding -= 1
        if record.outstanding == 0 and record.recovered_at is None:
            record.recovered_at = self.engine.node.sim.now
        if self.telemetry is not None:
            attrs = dict(
                task=item.task.task_id,
                function=item.task.function,
                attempts=item.attempts,
                job=item.job_id,
            )
            if item.task.tags:
                attrs["requests"] = item.task.tags.get("requests")
            self.telemetry.event(
                "runtime.task_unrecovered",
                f"{self.engine.node.name}.runtime",
                **attrs,
            )
        if not item.done.triggered:
            item.done.succeed(item)     # unblock the driver: the run ends

    # ------------------------------------------------------------------
    # speculative timeout retries (live Worker, stuck task)
    # ------------------------------------------------------------------
    def _check_timeouts(self) -> None:
        sim = self.engine.node.sim
        timeout = self.policy.task_timeout_ns
        for scheduler in self.engine.schedulers:
            if scheduler.crashed:
                continue        # crash path handles these
            item = scheduler.current_item
            if (
                item is None
                or item.done.triggered
                or item.redispatched
                or item.started_at is None
                or sim.now - item.started_at < timeout
                or item.attempts >= self.policy.max_attempts - 1
            ):
                continue
            # a stuck task is not a dead Worker: track it on a standalone
            # record so worker-failure metrics stay crash-only
            record = WorkerFailureRecord(
                worker_id=scheduler.worker_id,
                crashed_at=item.started_at,
                permanent=False,
            )
            record.detected_at = sim.now
            self.speculative.append(record)
            item.redispatched = True
            record.tasks_redispatched += 1
            record.outstanding += 1
            if self.telemetry is not None:
                attrs = dict(
                    task=item.task.task_id,
                    worker=scheduler.worker_id,
                    age_ns=sim.now - item.started_at,
                )
                if item.task.tags:
                    attrs["requests"] = item.task.tags.get("requests")
                self.telemetry.event(
                    "runtime.task_timeout",
                    f"{self.engine.node.name}.runtime",
                    **attrs,
                )
            spawn(
                sim,
                self._retry(item, record),
                name=f"spec-retry.{item.task.task_id}",
            )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def mean_detection_ns(self) -> float:
        from repro.telemetry.quantiles import mean

        return mean(
            [f.detection_ns for f in self.failures if f.detection_ns is not None]
        )

    def mean_recovery_ns(self) -> float:
        from repro.telemetry.quantiles import mean

        return mean(
            [
                f.time_to_recover_ns
                for f in self.failures
                if f.time_to_recover_ns is not None
            ]
        )
