"""Performance monitors and the model actuation loop.

Section 4.2's three-part plan for the prediction models:

1. a **training** part records "the target applications with different
   realistic inputs ... and record[s] the corresponding execution time
   and power outputs" -- the Execution History plus
   :class:`FunctionInstrumentation` below (per-call input features);
2. a **model building** part fits regression/PCA models --
   :mod:`repro.core.runtime.models`;
3. an **actuation** part deploys them "with actual running applications,
   using hardware performance monitors and function instrumentation to
   capture the static and dynamic properties of the unseen input, and
   project execution time and power using the trained models" --
   :class:`PerformanceMonitor` (HW counters) and :class:`ModelActuator`
   (periodic retraining + projection) here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.runtime.history import ExecutionHistory
from repro.core.runtime.models import DeviceSelector
from repro.core.worker import Worker
from repro.sim import Timeout


@dataclass(frozen=True)
class CounterSnapshot:
    """One reading of a Worker's hardware performance monitors."""

    timestamp: float
    sw_calls: int
    hw_calls: int
    cache_hits: int
    cache_misses: int
    dram_bytes: int
    dram_row_hit_rate: float
    reconfigurations: int
    smmu_tlb_hit_rate: float

    def delta(self, earlier: "CounterSnapshot") -> Dict[str, float]:
        """Counter increments between two readings (rates stay absolute)."""
        return {
            "interval_ns": self.timestamp - earlier.timestamp,
            "sw_calls": self.sw_calls - earlier.sw_calls,
            "hw_calls": self.hw_calls - earlier.hw_calls,
            "cache_hits": self.cache_hits - earlier.cache_hits,
            "cache_misses": self.cache_misses - earlier.cache_misses,
            "dram_bytes": self.dram_bytes - earlier.dram_bytes,
            "reconfigurations": self.reconfigurations - earlier.reconfigurations,
        }


class PerformanceMonitor:
    """Reads one Worker's counters (cache, DRAM, SMMU, fabric).

    With a telemetry hub the readings come from the machine-wide
    metrics registry (the Worker is attached on construction if it is
    not already), so the monitor observes exactly what every other
    consumer of the hub sees.  Without a hub it falls back to reading
    the component counters directly -- the pre-telemetry behaviour.
    """

    def __init__(self, worker: Worker, telemetry=None) -> None:
        self.worker = worker
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        if self.telemetry is not None and not self.telemetry.has_collector(worker.name):
            from repro.telemetry.wiring import attach_worker

            attach_worker(self.telemetry, worker)
        self.snapshots: List[CounterSnapshot] = []

    def _read_direct(self) -> CounterSnapshot:
        w = self.worker
        return CounterSnapshot(
            timestamp=w.sim.now,
            sw_calls=w.sw_calls,
            hw_calls=w.hw_calls,
            cache_hits=w.cache.stats.hits,
            cache_misses=w.cache.stats.misses,
            dram_bytes=w.dram.bytes_transferred,
            dram_row_hit_rate=w.dram.row_hit_rate,
            reconfigurations=w.reconfig.reconfigurations,
            smmu_tlb_hit_rate=w.smmu.stats.tlb_hit_rate,
        )

    def _read_from_hub(self) -> CounterSnapshot:
        hub = self.telemetry
        hub.collect()

        def c(suffix: str) -> float:
            return hub.registry.counter(f"{self.worker.name}.{suffix}").value

        row_accesses = c("dram.row_hits") + c("dram.row_misses")
        tlb_lookups = c("smmu.tlb_hits") + c("smmu.tlb_misses")
        return CounterSnapshot(
            timestamp=self.worker.sim.now,
            sw_calls=int(c("sw_calls")),
            hw_calls=int(c("hw_calls")),
            cache_hits=int(c("cache.hits")),
            cache_misses=int(c("cache.misses")),
            dram_bytes=int(c("dram.bytes")),
            dram_row_hit_rate=c("dram.row_hits") / row_accesses if row_accesses else 0.0,
            reconfigurations=int(c("fabric.reconfigurations")),
            smmu_tlb_hit_rate=c("smmu.tlb_hits") / tlb_lookups if tlb_lookups else 0.0,
        )

    def read(self) -> CounterSnapshot:
        snap = (
            self._read_from_hub() if self.telemetry is not None else self._read_direct()
        )
        self.snapshots.append(snap)
        return snap

    def sample_loop(self, period_ns: float, samples: Optional[int] = None) -> Generator:
        """Simulation process: read the counters every ``period_ns``."""
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        taken = 0
        while samples is None or taken < samples:
            yield Timeout(period_ns)
            self.read()
            taken += 1
        return taken


@dataclass(frozen=True)
class CallProfile:
    """Static+dynamic input properties captured by instrumentation."""

    function: str
    items: int
    input_bytes: int = 0
    output_bytes: int = 0
    data_local: bool = True


class FunctionInstrumentation:
    """Per-call feature capture (the 'function instrumentation' hooks)."""

    def __init__(self) -> None:
        self.profiles: List[CallProfile] = []

    def observe(self, profile: CallProfile) -> CallProfile:
        if profile.items < 1:
            raise ValueError("profile must cover at least one item")
        self.profiles.append(profile)
        return profile

    def typical_items(self, function: str) -> Optional[int]:
        items = [p.items for p in self.profiles if p.function == function]
        if not items:
            return None
        return int(sum(items) / len(items))


@dataclass
class Projection:
    """The actuator's answer for one prospective call."""

    function: str
    items: int
    sw_latency_ns: Optional[float]
    hw_latency_ns: Optional[float]
    sw_energy_pj: Optional[float]
    hw_energy_pj: Optional[float]

    @property
    def recommended_device(self) -> Optional[str]:
        if self.sw_latency_ns is None or self.hw_latency_ns is None:
            return None
        return "hw" if self.hw_latency_ns < self.sw_latency_ns else "sw"


class ModelActuator:
    """Deploys trained models against live traffic.

    Retrains from the (growing) Execution History whenever ``observe``
    has seen ``retrain_every`` new completions, and answers projection
    queries from the freshest models.
    """

    def __init__(
        self,
        history: ExecutionHistory,
        selector: Optional[DeviceSelector] = None,
        retrain_every: int = 16,
    ) -> None:
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        self.history = history
        self.selector = selector or DeviceSelector(min_samples=5)
        self.retrain_every = retrain_every
        self.instrumentation = FunctionInstrumentation()
        self._seen = 0
        self.retrains = 0

    def observe(self, profile: CallProfile) -> None:
        """Feed one completed, history-recorded call's profile."""
        self.instrumentation.observe(profile)
        self._seen += 1
        if self._seen % self.retrain_every == 0:
            self.selector.train(self.history)
            self.retrains += 1

    def project(self, function: str, items: int) -> Projection:
        """Project execution time and energy for an unseen input size."""
        return Projection(
            function=function,
            items=items,
            sw_latency_ns=self.selector.predict_latency(function, "sw", items),
            hw_latency_ns=self.selector.predict_latency(function, "hw", items),
            sw_energy_pj=self.selector.predict_energy(function, "sw", items),
            hw_energy_pj=self.selector.predict_energy(function, "hw", items),
        )
