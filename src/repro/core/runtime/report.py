"""Run reports: per-job, per-node, and machine-wide roll-ups.

:class:`RunReport` describes one task-graph run (or one tenant job of a
multi-job run).  :class:`MachineReport` is the multi-tenant roll-up the
:class:`~repro.core.runtime.jobs.JobManager` returns: per-job
:class:`RunReport` s plus the machine-shared counters (reconfigurations,
status traffic, total energy) that no single tenant owns, and the
fairness view across tenants.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.quantiles import latency_summary


@dataclass
class RunReport:
    """What one task-graph run (or one job of a multi-job run) did.

    The availability block (``worker_failures`` onward) stays at zero on
    every run without fault tolerance armed -- disabled parity.
    """

    makespan_ns: float
    tasks: int
    sw_calls: int
    hw_calls: int
    energy_pj: float
    energy_breakdown: Dict[str, float]
    reconfigurations: int
    status_messages: int
    placement_locality: float
    device_mix: Dict[str, int] = field(default_factory=dict)
    # availability / recovery metrics (populated when FT is armed)
    faults_injected: int = 0
    worker_failures: int = 0
    tasks_retried: int = 0
    tasks_unrecovered: int = 0
    mean_detection_ns: float = 0.0
    mean_recovery_ns: float = 0.0
    work_lost_ns: float = 0.0
    fabric_recoveries: int = 0
    fabric_recovery_failures: int = 0

    @property
    def hw_fraction(self) -> float:
        total = self.sw_calls + self.hw_calls
        return self.hw_calls / total if total else 0.0

    @property
    def availability_ok(self) -> bool:
        """Every task completed despite whatever faults were injected."""
        return self.tasks_unrecovered == 0


@dataclass
class JobOutcome:
    """One tenant job's identity plus its :class:`RunReport`."""

    job_id: int
    policy: str
    priority: int
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    report: RunReport

    @property
    def latency_ns(self) -> float:
        """Submit-to-finish latency (the tenant-visible makespan)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    @property
    def throughput_tasks_per_ms(self) -> float:
        if self.latency_ns <= 0:
            return 0.0
        return self.report.tasks / (self.latency_ns / 1e6)

    def to_dict(self) -> Dict[str, Any]:
        r = self.report
        return {
            "job_id": self.job_id,
            "policy": self.policy,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "latency_ns": self.latency_ns,
            "tasks": r.tasks,
            "sw_calls": r.sw_calls,
            "hw_calls": r.hw_calls,
            "energy_pj": r.energy_pj,
            "placement_locality": r.placement_locality,
            "tasks_retried": r.tasks_retried,
            "tasks_unrecovered": r.tasks_unrecovered,
        }


@dataclass
class MachineReport:
    """Aggregate of one multi-tenant run on a shared machine."""

    makespan_ns: float
    jobs: List[JobOutcome] = field(default_factory=list)
    # machine-shared counters no single tenant owns
    energy_pj: float = 0.0
    reconfigurations: int = 0
    status_messages: int = 0
    worker_failures: int = 0
    mean_detection_ns: float = 0.0
    mean_recovery_ns: float = 0.0

    @property
    def tasks(self) -> int:
        return sum(j.report.tasks for j in self.jobs)

    @property
    def sw_calls(self) -> int:
        return sum(j.report.sw_calls for j in self.jobs)

    @property
    def hw_calls(self) -> int:
        return sum(j.report.hw_calls for j in self.jobs)

    @property
    def tasks_retried(self) -> int:
        return sum(j.report.tasks_retried for j in self.jobs)

    @property
    def tasks_unrecovered(self) -> int:
        return sum(j.report.tasks_unrecovered for j in self.jobs)

    @property
    def availability_ok(self) -> bool:
        return all(j.report.availability_ok for j in self.jobs)

    @property
    def aggregate_throughput_tasks_per_ms(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.tasks / (self.makespan_ns / 1e6)

    def fairness_index(self) -> float:
        """Jain's fairness index over per-job priority-normalized
        throughput (1.0 = perfectly fair share of the machine)."""
        rates = [
            j.throughput_tasks_per_ms / max(1, j.priority) for j in self.jobs
        ]
        rates = [r for r in rates if r > 0]
        if not rates:
            return 1.0
        return (sum(rates) ** 2) / (len(rates) * sum(r * r for r in rates))

    def job_latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 of per-job submit-to-finish latency (shared math)."""
        return latency_summary(
            [j.latency_ns for j in self.jobs if j.finished_at is not None]
        )

    def job(self, job_id: int) -> JobOutcome:
        for outcome in self.jobs:
            if outcome.job_id == job_id:
                return outcome
        raise KeyError(f"no job {job_id} in this report")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan_ns": self.makespan_ns,
            "tasks": self.tasks,
            "sw_calls": self.sw_calls,
            "hw_calls": self.hw_calls,
            "energy_pj": self.energy_pj,
            "reconfigurations": self.reconfigurations,
            "status_messages": self.status_messages,
            "worker_failures": self.worker_failures,
            "tasks_retried": self.tasks_retried,
            "tasks_unrecovered": self.tasks_unrecovered,
            "fairness_index": self.fairness_index(),
            "job_latency": self.job_latency_summary(),
            "jobs": [j.to_dict() for j in self.jobs],
        }

    def json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
